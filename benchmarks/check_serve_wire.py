"""CI gate: the negotiated v2 wire must actually pay for itself.

Reads two ``BENCH_serve.json`` perf records written by ``python -m
repro loadgen`` on the *same host* — a v1 baseline and a v2 candidate
(``--wire-version v2 --pipeline-depth 2``) — and exits non-zero unless
the binary framing delivers::

    python benchmarks/check_serve_wire.py BENCH_serve_v1.json BENCH_serve_v2.json
    python benchmarks/check_serve_wire.py --min-bytes-ratio 4 --min-throughput-ratio 2 v1.json v2.json

Two gates, with different epistemics:

* **bytes_per_round** is deterministic — the frames for a given
  ``(seed, groups, rounds, protocol)`` shape are byte-identical across
  runs — so the v1/v2 ratio (default floor 4x) is enforced on every
  host, unconditionally. Packed bitstrings alone shrink the dominant
  BITSTRING body 8x at large ``n``; 4x on the whole round leaves
  headroom for the fixed-size frames.
* **throughput** is hardware-weather. The target ratio (default 2x at
  ``n`` = 10k with the null reader) is demanded only on hosts with at
  least 2 cores *at bench time* (the ``cpu_count`` recorded in the
  candidate's campaign entry, not the checker host's); a 1-core
  container is held to the no-regression floor instead (default 0.9x:
  the binary codec must never cost measurable throughput, with a
  little slack for timing noise).

The gate also fails on any protocol error in either campaign, on a
candidate that silently negotiated down (recorded ``wire_version`` != 2),
and on mismatched campaign shapes — a 1k-round baseline "beaten" by a
10k-round candidate proves nothing.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Campaign-shape keys that must match between baseline and candidate
#: for the comparison to mean anything.
SHAPE_KEYS = ("sessions", "rounds_per_session", "protocol")


def load_entries(path: str) -> dict:
    """The record's round + campaign timing entries, keyed by name."""
    with open(path) as fh:
        record = json.load(fh)
    entries = {
        t.get("name"): t
        for t in record.get("timings", [])
        if t.get("kind") == "serve-loadgen"
    }
    missing = {"serve.loadgen.round", "serve.loadgen.campaign"} - set(entries)
    if missing:
        raise SystemExit(f"{path}: missing timing entries {sorted(missing)}")
    return entries


def effective_throughput_floor(
    min_ratio: float, min_floor: float, cpu_count: int
) -> float:
    """What this host can honestly be held to.

    The v2 win is CPU work saved (binary codec, no JSON) plus overlap
    (pipelining); with a single core the overlap buys nothing and the
    loadgen, server and checker all contend for it, so only the
    no-regression bar is a meaningful demand there.
    """
    if cpu_count >= 2:
        return min_ratio
    return min(min_ratio, min_floor)


def check(
    baseline: dict,
    candidate: dict,
    min_bytes_ratio: float,
    min_throughput_ratio: float,
    min_throughput_floor: float,
) -> int:
    """Print the verdict table; return the number of failures."""
    failures = 0

    def verdict(ok: bool, line: str) -> None:
        nonlocal failures
        print(f"{'ok' if ok else 'FAIL':<8} {line}")
        if not ok:
            failures += 1

    base_round = baseline["serve.loadgen.round"]
    base_camp = baseline["serve.loadgen.campaign"]
    cand_round = candidate["serve.loadgen.round"]
    cand_camp = candidate["serve.loadgen.campaign"]

    verdict(
        int(base_camp.get("wire_version", 1)) == 1,
        f"baseline ran wire v{base_camp.get('wire_version', 1)} (need v1)",
    )
    verdict(
        int(cand_camp.get("wire_version", 1)) == 2,
        f"candidate ran wire v{cand_camp.get('wire_version', 1)} (need v2 — "
        "a v1 value means the HELLO silently fell back)",
    )
    for key in SHAPE_KEYS:
        verdict(
            base_camp.get(key) == cand_camp.get(key),
            f"campaign shape {key}: baseline {base_camp.get(key)!r} vs "
            f"candidate {cand_camp.get(key)!r}",
        )
    for label, camp in (("baseline", base_camp), ("candidate", cand_camp)):
        errors = int(camp.get("protocol_errors", 0))
        verdict(errors == 0, f"{label}: {errors} protocol error(s)")

    base_bytes = float(base_round["bytes_per_round"])
    cand_bytes = float(cand_round["bytes_per_round"])
    bytes_ratio = base_bytes / cand_bytes if cand_bytes > 0 else float("inf")
    verdict(
        bytes_ratio >= min_bytes_ratio,
        f"bytes_per_round: {base_bytes:.1f} -> {cand_bytes:.1f} "
        f"({bytes_ratio:.2f}x smaller; need >= {min_bytes_ratio:.2f}x)",
    )
    for direction in ("bytes_sent_per_round", "bytes_received_per_round"):
        b, c = float(base_round[direction]), float(cand_round[direction])
        ratio = b / c if c > 0 else float("inf")
        print(f"         {direction}: {b:.1f} -> {c:.1f} ({ratio:.2f}x)")

    cpu_count = int(cand_camp.get("cpu_count", 1))
    floor = effective_throughput_floor(
        min_throughput_ratio, min_throughput_floor, cpu_count
    )
    base_rps = float(base_camp["throughput_rps"])
    cand_rps = float(cand_camp["throughput_rps"])
    ratio = cand_rps / base_rps if base_rps > 0 else float("inf")
    verdict(
        ratio >= floor,
        f"throughput: {base_rps:.1f} -> {cand_rps:.1f} rounds/s on "
        f"{cpu_count} core(s) -> {ratio:.2f}x (need >= {floor:.2f}x; "
        f"target {min_throughput_ratio:.2f}x at >= 2 cores)",
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="path to the v1 BENCH_serve.json")
    parser.add_argument("candidate", help="path to the v2 BENCH_serve.json")
    parser.add_argument(
        "--min-bytes-ratio", type=float, default=4.0, metavar="X",
        help="required v1/v2 bytes_per_round ratio, enforced on every "
        "host — frame sizes are deterministic (default 4.0)",
    )
    parser.add_argument(
        "--min-throughput-ratio", type=float, default=2.0, metavar="X",
        help="required v2/v1 throughput ratio on a host with >= 2 "
        "cores at bench time (default 2.0)",
    )
    parser.add_argument(
        "--min-throughput-floor", type=float, default=0.9, metavar="X",
        help="no-regression throughput floor on 1-core hosts "
        "(default 0.9)",
    )
    args = parser.parse_args(argv)
    failures = check(
        load_entries(args.baseline),
        load_entries(args.candidate),
        args.min_bytes_ratio,
        args.min_throughput_ratio,
        args.min_throughput_floor,
    )
    if failures:
        print("serve wire gate FAILED")
        return 1
    print("serve wire gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
