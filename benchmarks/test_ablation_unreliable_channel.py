"""Bench (Abl. G): intact set over a lossy channel — false-alarm rates.

Makes the introduction's tolerance argument quantitative: a fraction of
a percent of lost replies makes the strict rule page on nearly every
scan of an intact set, while the threshold rule absorbs losses whose
estimated magnitude stays within ``m``.
"""

from repro.experiments import ablations


def test_unreliable_channel_study(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_unreliable_channel_study,
        kwargs={"n": 1000, "tolerance": 10, "trials": 200},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_g_unreliable_channel",
        ablations.format_unreliable_channel_study(rows),
    )

    by_eps = {r.miss_rate: r for r in rows}
    # A perfect channel: no false pages under either policy.
    assert by_eps[0.0].strict_false_page_rate == 0.0
    assert by_eps[0.0].threshold_false_page_rate == 0.0
    # At 1% loss the strict rule is unusable.
    assert by_eps[0.01].strict_false_page_rate > 0.9
    # The threshold rule helps at every loss rate, and is near-silent
    # while expected benign loss (eps * n) stays well under m. At
    # eps * n ~ m (1% of 1000 vs m = 10) it pages about half the time —
    # the operational lesson: provision m above the expected loss.
    for eps, row in by_eps.items():
        if eps > 0:
            assert row.threshold_false_page_rate < row.strict_false_page_rate
    assert by_eps[0.001].threshold_false_page_rate < 0.05
    assert by_eps[0.005].threshold_false_page_rate < 0.4
    # Mean mismatches must grow with the loss rate.
    means = [r.mean_mismatches for r in rows]
    assert means == sorted(means)
