"""Bench (Abl. A): wall-clock air time — collect-all vs TRP.

Quantifies the paper's Sec. 6 remark that collect-all's real cost is
worse than its slot count because tags return 96-bit IDs while TRP tags
return a short random burst: under the Gen2-flavoured link model the
TRP advantage must exceed the pure slot-count advantage of Fig. 4.
"""

from repro.core.analysis import optimal_trp_frame_size
from repro.experiments import ablations
from repro.experiments.grid import grid_from_env


def test_wallclock_ablation(benchmark, save_result):
    grid = grid_from_env()
    rows = benchmark.pedantic(
        ablations.run_wallclock, args=(grid,), rounds=1, iterations=1
    )
    save_result("ablation_a_wallclock", ablations.format_wallclock(rows))

    for row in rows:
        assert row.speedup > 1.0
    # ID transmission must hurt collect-all beyond the slot-count gap at
    # the largest set size.
    biggest = max(grid.populations)
    for row in rows:
        if row.population != biggest:
            continue
        f_trp = optimal_trp_frame_size(row.population, row.tolerance, grid.alpha)
        # Recover Fig. 4's slot advantage for the same cell from theory:
        # collect-all ~ e * n slots.
        slots_advantage = (2.72 * row.population) / f_trp
        assert row.speedup > slots_advantage, (
            f"wall-clock advantage {row.speedup:.2f}x should exceed the "
            f"slot advantage {slots_advantage:.2f}x at n={row.population}"
        )
