"""Bench (Abl. K): naming the missing tags after an alarm.

The detection protocols say *that* tags are missing; the
identification extension replays TRP rounds to say *which*. Checks:
coverage grows with rounds roughly as the analysis plans, and
soundness is absolute — zero false positives across every trial.
"""

from repro.experiments import ablations


def test_identification_study(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_identification_study,
        kwargs={"trials": 50},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_k_identification",
        ablations.format_identification_study(rows),
    )

    coverages = [r.measured_coverage for r in rows]
    assert coverages == sorted(coverages), "coverage must grow with rounds"
    assert coverages[-1] > 0.75
    for r in rows:
        assert r.false_positives == 0, "identification must never accuse a present tag"
        # Analytic plan within Monte Carlo + approximation slack.
        assert abs(r.planned_coverage - r.measured_coverage) < 0.12
