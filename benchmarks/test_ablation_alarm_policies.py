"""Bench (Abl. F): alarm-policy operating characteristics.

Contrasts the paper's strict any-mismatch rule with the estimate-based
threshold extension across true losses from 1 to well beyond ``m``.
"""

from repro.experiments import ablations


def test_alarm_policy_study(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_alarm_policy_study,
        kwargs={"n": 1000, "tolerance": 10, "trials": 300},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_f_alarm_policies",
        ablations.format_alarm_policy_study(rows, tolerance=10),
    )

    by_x = {r.missing: r for r in rows}
    # Sub-threshold losses: strict pages often, threshold rarely.
    assert by_x[1].strict_page_rate > 0.2
    assert by_x[1].threshold_page_rate < 0.05
    assert by_x[10].threshold_page_rate < 0.4
    # Far beyond threshold: both must page nearly always.
    deep = max(by_x)
    assert by_x[deep].strict_page_rate > 0.99
    assert by_x[deep].threshold_page_rate > 0.9
    # The strict rule preserves the paper's guarantee at x = m + 1.
    assert by_x[11].strict_page_rate > 0.9
