"""Bench (Abl. C): UTRP frame size vs the collusion budget c."""

from repro.experiments import ablations


def test_comm_budget_sweep(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_comm_budget_sweep, rounds=1, iterations=1
    )
    save_result(
        "ablation_c_comm_budget", ablations.format_comm_budget_sweep(rows)
    )

    by_n = {}
    for r in rows:
        by_n.setdefault(r.population, []).append(r)
    for n, series in by_n.items():
        frames = [r.utrp_frame for r in sorted(series, key=lambda r: r.budget)]
        assert frames == sorted(frames), f"frame must grow with c at n={n}"
        for r in series:
            assert r.utrp_frame > r.trp_frame
