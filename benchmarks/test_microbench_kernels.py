"""Micro-benchmarks of the computational kernels.

Unlike the figure benches (one-shot macro runs), these exercise the
hot inner loops repeatedly so pytest-benchmark's statistics are
meaningful — useful when optimising the hash, the frame tally or the
cascade replay.

Every run also emits ``BENCH_microbench.json`` (repo root, obs perf-
record schema — see :mod:`repro.obs.bench`) so the bench trajectory
accumulates a machine-readable record per PR alongside the human
tables.
"""

import os

import numpy as np
import pytest

from repro.aloha.frame import hash_frame
from repro.obs.bench import make_bench_record, write_bench_record
from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.utrp_analysis import optimal_utrp_frame_size, utrp_detection_probability
from repro.rfid.hashing import slots_for_tags
from repro.rfid.ids import random_tag_ids
from repro.server.verifier import expected_utrp_bitstring
from repro.simulation.batched import (
    trp_detection_trials_batched,
    trp_false_alarm_trials_batched,
    trp_mismatch_count_trials_batched,
)
from repro.simulation.fastpath import (
    trp_detection_trials,
    trp_false_alarm_trials,
    trp_mismatch_count_trials,
    trp_trial_detected,
    utrp_collusion_detected,
)


_TIMINGS = []
_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

#: REPRO_BENCH_QUICK=1 (the CI gate) trims the trials-kernel benches to
#: the fewest rounds that still yield a stable scalar/batched ratio.
_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
_TRIALS_ROUNDS = 2 if _QUICK else 5

# The paper's 1k-trial configuration (n=1000, m=10 -> steal 11, Eq. 2
# frame): the scalar/batched pairs below are what the CI speedup gate
# (benchmarks/check_batched_speedup.py) compares.
_N_1K, _MISS_1K, _FRAME_1K, _TRIALS_1K = 1000, 11, 694, 1000


@pytest.fixture(autouse=True)
def _collect_kernel_timing(benchmark, request):
    """Harvest each benchmark's stats into the obs perf-record shape."""
    yield
    meta = getattr(benchmark, "stats", None)
    if meta is None:  # benchmarking disabled for this run
        return
    stats = getattr(meta, "stats", meta)
    data = [float(v) for v in (getattr(stats, "data", None) or [])]
    if not data:
        return
    _TIMINGS.append(
        {
            "name": f"microbench.{request.node.name}",
            "kind": "microbench-kernel",
            "reps": len(data),
            "wall_s_total": sum(data),
            "wall_s_mean": sum(data) / len(data),
            "wall_s_min": min(data),
            "wall_s_max": max(data),
            "sim_air_us_total": 0.0,
        }
    )


@pytest.fixture(scope="module", autouse=True)
def _write_microbench_record():
    """After the module, write the harvested timings as one record."""
    yield
    if not _TIMINGS:
        return
    record = make_bench_record(list(_TIMINGS), label="microbench")
    write_bench_record(
        record, os.path.join(_REPO_ROOT, "BENCH_microbench.json")
    )


@pytest.fixture(scope="module")
def ids_10k():
    return random_tag_ids(10_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def ids_1k():
    return random_tag_ids(1_000, np.random.default_rng(1))


def test_bench_slot_hash_10k_tags(benchmark, ids_10k):
    benchmark(slots_for_tags, ids_10k, 12345, 16384)


def test_bench_frame_tally_10k_tags(benchmark, ids_10k):
    benchmark(hash_frame, ids_10k, 16384, 777)


def test_bench_theorem1_evaluation(benchmark):
    benchmark(detection_probability.__wrapped__
              if hasattr(detection_probability, "__wrapped__")
              else detection_probability, 2000, 11, 1391)


def test_bench_eq2_frame_sizing(benchmark):
    def sized():
        optimal_trp_frame_size.cache_clear()
        return optimal_trp_frame_size(2000, 10, 0.95)

    benchmark(sized)


def test_bench_eq3_detection(benchmark):
    benchmark(utrp_detection_probability, 1000, 10, 757, 20)


def test_bench_utrp_cascade_replay_1k(benchmark, ids_1k):
    counters = np.zeros(1000, dtype=np.int64)
    seeds = np.random.default_rng(2).integers(0, 1 << 62, size=1100).tolist()
    benchmark(expected_utrp_bitstring, ids_1k, counters, 1100, seeds)


def test_bench_trp_trial_1k(benchmark, ids_1k):
    mask = np.zeros(1000, dtype=bool)
    mask[:11] = True
    benchmark(trp_trial_detected, ids_1k, mask, 694, 424242)


def test_bench_collusion_trial_1k(benchmark, ids_1k):
    counters = np.zeros(1000, dtype=np.int64)
    mask = np.zeros(1000, dtype=bool)
    mask[:11] = True
    seeds = np.random.default_rng(3).integers(0, 1 << 62, size=760).tolist()
    benchmark(utrp_collusion_detected, ids_1k, counters, mask, 757, seeds, 20)


# ---------------------------------------------------------------------------
# scalar vs batched trials kernels (the CI speedup gate's inputs)
# ---------------------------------------------------------------------------


def _pedantic(benchmark, fn):
    benchmark.pedantic(fn, rounds=_TRIALS_ROUNDS, iterations=1, warmup_rounds=1)


def test_bench_trp_detection_trials_1k_scalar(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_detection_trials(
            _N_1K, _MISS_1K, _FRAME_1K, _TRIALS_1K, np.random.default_rng(7)
        ),
    )


def test_bench_trp_detection_trials_1k_batched(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_detection_trials_batched(
            _N_1K, _MISS_1K, _FRAME_1K, _TRIALS_1K, 7
        ),
    )


def test_bench_trp_mismatch_trials_1k_scalar(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_mismatch_count_trials(
            _N_1K, _MISS_1K, _FRAME_1K, _TRIALS_1K, np.random.default_rng(7)
        ),
    )


def test_bench_trp_mismatch_trials_1k_batched(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_mismatch_count_trials_batched(
            _N_1K, _MISS_1K, _FRAME_1K, _TRIALS_1K, 7
        ),
    )


def test_bench_trp_false_alarm_trials_1k_scalar(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_false_alarm_trials(
            _N_1K, _FRAME_1K, 0.02, _TRIALS_1K, np.random.default_rng(7)
        ),
    )


def test_bench_trp_false_alarm_trials_1k_batched(benchmark):
    _pedantic(
        benchmark,
        lambda: trp_false_alarm_trials_batched(
            _N_1K, _FRAME_1K, 0.02, _TRIALS_1K, 7
        ),
    )


# ---------------------------------------------------------------------------
# wire codecs: the v1 ASCII bitstring path vs the v2 packed-byte path
# (the serve wire gate's CPU side — benchmarks/check_serve_wire.py
# gates the resulting bytes/throughput at the loadgen level)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bitstring_10k():
    arr = (np.random.default_rng(4).random(10_000) < 0.5).astype(np.uint8)
    return (arr + np.uint8(ord("0"))).tobytes().decode("ascii")


def test_bench_wire_v1_bits_to_array_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import bits_to_array

    benchmark(bits_to_array, bitstring_10k)


def test_bench_wire_v1_array_to_bits_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import array_to_bits, bits_to_array

    arr = bits_to_array(bitstring_10k)
    benchmark(array_to_bits, arr)


def test_bench_wire_v2_pack_bits_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import pack_bits

    benchmark(pack_bits, bitstring_10k)


def test_bench_wire_v2_unpack_bits_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import pack_bits, unpack_bits

    packed = pack_bits(bitstring_10k)
    benchmark(unpack_bits, packed, len(bitstring_10k))


def test_bench_wire_v1_encode_bitstring_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import Frame
    from repro.serve.wire import WireV1

    frame = Frame(
        "BITSTRING",
        {
            "group": "bench",
            "round": 0,
            "bits": bitstring_10k,
            "elapsed_us": 1234.5,
            "seeds_used": 1,
        },
    )
    benchmark(WireV1.encode, frame)


def test_bench_wire_v2_encode_bitstring_10k(benchmark, bitstring_10k):
    from repro.serve.protocol import Frame
    from repro.serve.wire import WireV2

    frame = Frame(
        "BITSTRING",
        {
            "group": "bench",
            "round": 0,
            "bits": bitstring_10k,
            "elapsed_us": 1234.5,
            "seeds_used": 1,
            "seq": 7,
        },
    )
    benchmark(WireV2.encode, frame)


# ---------------------------------------------------------------------------
# plan-cache warm lookups (cold solves are test_bench_eq2_frame_sizing
# and the multi-second Eq. 3 search)
# ---------------------------------------------------------------------------


def test_bench_plan_cache_warm_trp(benchmark):
    optimal_trp_frame_size(2000, 10, 0.95)  # prime
    benchmark(optimal_trp_frame_size, 2000, 10, 0.95)


def test_bench_plan_cache_warm_utrp(benchmark):
    optimal_utrp_frame_size(400, 10, 0.95, 20)  # prime
    benchmark(optimal_utrp_frame_size, 400, 10, 0.95, 20)
