"""Bench: regenerate Fig. 5 — TRP detection accuracy, worst-case theft.

Paper claim: with the Eq. 2 frame size, stealing ``m + 1`` tags is
detected with probability above ``alpha = 0.95`` at every ``(n, m)``.

Because ``f*`` is the *minimal* frame clearing alpha, the true rate sits
just above 0.95 and finite-trial estimates scatter around it; the
assertion therefore allows three binomial standard errors of slack
(the shape claim — detection hugging alpha from above — is what
reproduces; see EXPERIMENTS.md).
"""

import math

from repro.experiments import fig5
from repro.experiments.grid import grid_from_env


def test_fig5_regeneration(benchmark, save_result):
    grid = grid_from_env()
    result = benchmark.pedantic(fig5.run, args=(grid,), rounds=1, iterations=1)
    save_result("fig5_trp_accuracy", fig5.format_result(result))

    noise = 3 * math.sqrt(grid.alpha * (1 - grid.alpha) / grid.trials)
    for row in result.rows:
        assert row.detection.rate > grid.alpha - noise, (
            f"detection collapsed at n={row.population}, m={row.tolerance}: "
            f"{row.detection.rate:.3f}"
        )
    # In aggregate, at least half the cells must clear alpha outright.
    assert result.cells_clearing_alpha() >= len(result.rows) // 2
