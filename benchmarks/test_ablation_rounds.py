"""Bench (Abl. J): multi-round TRP plans at equal confidence.

One Eq. 2 frame versus ``r`` smaller independent rounds reaching the
same worst-case detection probability: the single frame always wins on
total slots because ``g`` saturates in ``f`` — repeated-trial
confidence compounding cannot beat the frame's own concavity.
"""

from repro.experiments import ablations


def test_rounds_tradeoff(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_rounds_tradeoff, rounds=1, iterations=1
    )
    save_result("ablation_j_rounds", ablations.format_rounds_tradeoff(rows))

    by_n = {}
    for r in rows:
        by_n.setdefault(r.population, []).append(r)
    for n, plans in by_n.items():
        plans = sorted(plans, key=lambda r: r.rounds)
        totals = [r.total_slots for r in plans]
        # More rounds must never be cheaper, and the penalty must grow.
        assert totals == sorted(totals), f"rounds got cheaper at n={n}"
        assert plans[0].vs_single == 1.0
        assert plans[-1].vs_single > 1.5
        # Per-round frames shrink as rounds grow.
        frames = [r.frame_size for r in plans]
        assert frames == sorted(frames, reverse=True)
