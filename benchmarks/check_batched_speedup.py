"""CI gate: the batched kernels must not regress below their scalar twins.

Reads a ``BENCH_microbench.json`` perf record (written by
``pytest benchmarks/test_microbench_kernels.py``), pairs every
``*_scalar`` timing with its ``*_batched`` counterpart at the 1k-trial
configuration, and exits non-zero if any batched kernel fails the
minimum speedup::

    python benchmarks/check_batched_speedup.py BENCH_microbench.json
    python benchmarks/check_batched_speedup.py --min-speedup 2.0 BENCH_microbench.json

The default threshold is 1.0 — "batched is never slower than scalar" —
which holds with a wide margin on any hardware; locally the detection
kernel runs ~5-7x faster (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import sys

#: (scalar timing name, batched timing name) pairs the gate enforces.
KERNEL_PAIRS = [
    (
        "microbench.test_bench_trp_detection_trials_1k_scalar",
        "microbench.test_bench_trp_detection_trials_1k_batched",
    ),
    (
        "microbench.test_bench_trp_mismatch_trials_1k_scalar",
        "microbench.test_bench_trp_mismatch_trials_1k_batched",
    ),
    (
        "microbench.test_bench_trp_false_alarm_trials_1k_scalar",
        "microbench.test_bench_trp_false_alarm_trials_1k_batched",
    ),
]


def check(record: dict, min_speedup: float) -> int:
    """Print the pairing table; return the number of failing pairs."""
    timings = {t["name"]: t for t in record.get("timings", [])}
    failures = 0
    for scalar_name, batched_name in KERNEL_PAIRS:
        scalar = timings.get(scalar_name)
        batched = timings.get(batched_name)
        if scalar is None or batched is None:
            print(f"MISSING  {scalar_name} / {batched_name}")
            failures += 1
            continue
        # Compare best-of-reps: robust to CI noise, which only ever
        # slows a rep down.
        speedup = scalar["wall_s_min"] / batched["wall_s_min"]
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"{verdict:<8} {batched_name.split('.')[-1]}: "
            f"scalar {scalar['wall_s_min'] * 1e3:.1f} ms, "
            f"batched {batched['wall_s_min'] * 1e3:.1f} ms "
            f"-> {speedup:.2f}x (need >= {min_speedup:.2f}x)"
        )
        if speedup < min_speedup:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="path to BENCH_microbench.json")
    parser.add_argument(
        "--min-speedup", type=float, default=1.0, metavar="X",
        help="fail any batched kernel slower than scalar/X (default 1.0)",
    )
    args = parser.parse_args(argv)
    with open(args.record) as fh:
        record = json.load(fh)
    failures = check(record, args.min_speedup)
    if failures:
        print(f"{failures} batched kernel(s) below the speedup floor")
        return 1
    print("all batched kernels clear the speedup floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
