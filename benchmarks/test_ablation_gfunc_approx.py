"""Bench (Abl. E): occupancy-model error in Theorem 1."""

from repro.experiments import ablations


def test_gfunc_approximation(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_gfunc_approximation, rounds=1, iterations=1
    )
    save_result(
        "ablation_e_gfunc_approx", ablations.format_gfunc_approximation(rows)
    )

    for r in rows:
        # The paper's e^{-(n-x)/f} is tight at the Eq. 2 operating point.
        assert r.paper_error < 0.01
        assert r.poisson_error < 0.05
    # The exponential approximation error should shrink as n grows.
    errors = [r.paper_error for r in rows]
    assert errors[-1] <= errors[0] + 1e-6
