"""CI gate: sharded serving must scale with the cores it is given.

Reads a ``BENCH_shard.json`` perf record (written by ``python -m repro
shard --bench``), finds the ``shard.scaling`` entry, and exits non-zero
when the N-worker/1-worker throughput ratio falls below the floor::

    python benchmarks/check_shard_scaling.py BENCH_shard.json
    python benchmarks/check_shard_scaling.py --min-ratio 2.5 BENCH_shard.json

The floor is **core-aware** (the ``check_batched_speedup`` philosophy:
the gate must hold on any hardware): ``--min-ratio`` states the target
on a host with at least ``workers`` cores, and the effective floor
scales down with ``min(workers, cpu_count)``. On a 1-core container a
4-worker cluster cannot beat 1 worker — there the gate only demands the
sharded path is not a regression (ratio >= ``--min-floor``, default
0.5, i.e. the gateway + multi-process overhead never *halves* throughput). The
``cpu_count`` recorded *at bench time* is used, not the checker host's.
The gate also fails on any protocol error recorded during either
campaign — throughput bought with dropped rounds does not count.
"""

from __future__ import annotations

import argparse
import json
import sys


def effective_floor(
    min_ratio: float, min_floor: float, workers: int, cpu_count: int
) -> float:
    """The floor this host can honestly be held to.

    Linear-scaling share: with ``k = min(workers, cpu_count)`` usable
    cores, ideal throughput is ``k/workers`` of the ``min_ratio``
    target. Never below ``min_floor`` (the no-regression bar), never
    above ``min_ratio`` (extra cores don't raise the target).
    """
    usable = max(1, min(workers, cpu_count))
    if usable == 1:
        # No parallelism available at all: only the no-regression bar
        # is a meaningful demand.
        return min(min_ratio, min_floor)
    scaled = min_ratio * usable / max(1, workers)
    return max(min_floor, min(min_ratio, scaled))


def check(record: dict, min_ratio: float, min_floor: float) -> int:
    """Print the verdict table; return the number of failures."""
    scaling = next(
        (
            t
            for t in record.get("timings", [])
            if t.get("kind") == "shard-scaling"
        ),
        None,
    )
    if scaling is None:
        print("MISSING  no shard-scaling entry in the record")
        return 1

    workers = int(scaling["workers"])
    cpu_count = int(scaling["cpu_count"])
    speedup = float(scaling["speedup"])
    errors = int(scaling.get("protocol_errors", 0))
    floor = effective_floor(min_ratio, min_floor, workers, cpu_count)

    failures = 0
    verdict = "ok" if speedup >= floor else "FAIL"
    print(
        f"{verdict:<8} scaling: {scaling['throughput_baseline_rps']:.1f} -> "
        f"{scaling['throughput_sharded_rps']:.1f} rounds/s with "
        f"{workers} workers on {cpu_count} core(s) "
        f"-> {speedup:.2f}x (need >= {floor:.2f}x; "
        f"target {min_ratio:.2f}x at >= {workers} cores)"
    )
    if speedup < floor:
        failures += 1
    if errors:
        print(f"FAIL     {errors} protocol error(s) during the bench")
        failures += 1
    else:
        print("ok       zero protocol errors")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="path to BENCH_shard.json")
    parser.add_argument(
        "--min-ratio", type=float, default=2.5, metavar="X",
        help="required N-worker/1-worker ratio on a host with >= N "
        "cores (default 2.5)",
    )
    parser.add_argument(
        "--min-floor", type=float, default=0.5, metavar="X",
        help="absolute floor on core-starved hosts (default 0.5: the "
        "sharded path never halves throughput)",
    )
    args = parser.parse_args(argv)
    with open(args.record) as fh:
        record = json.load(fh)
    failures = check(record, args.min_ratio, args.min_floor)
    if failures:
        print("shard scaling gate FAILED")
        return 1
    print("shard scaling gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
