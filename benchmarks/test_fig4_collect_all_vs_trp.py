"""Bench: regenerate Fig. 4 — *collect all* vs TRP slot counts.

Paper claims checked here:
* both curves are (near-)linear in ``n``;
* TRP uses fewer slots at every grid cell;
* the gap widens as the set grows.

Set ``REPRO_FULL=1`` for the paper's full grid (n = 100..2000 step 100).
"""

from repro.experiments import fig4
from repro.experiments.grid import grid_from_env


def test_fig4_regeneration(benchmark, save_result):
    grid = grid_from_env()
    result = benchmark.pedantic(fig4.run, args=(grid,), rounds=1, iterations=1)
    save_result("fig4_collect_all_vs_trp", fig4.format_result(result))

    assert len(result.rows) == len(grid.populations) * len(grid.tolerances)
    for row in result.rows:
        assert row.trp_slots < row.collect_all_slots, (
            f"TRP must beat collect-all at n={row.population}, m={row.tolerance}"
        )
    for m in grid.tolerances:
        panel = result.panel(m)
        gaps = [r.collect_all_slots - r.trp_slots for r in panel]
        assert gaps[-1] > gaps[0], "the TRP advantage must grow with n"
        # near-linearity of TRP: frame sizes grow monotonically in n
        sizes = [r.trp_slots for r in panel]
        assert sizes == sorted(sizes)
