"""Bench: analytic-vs-simulated fidelity of the paper's theorems.

Executable version of EXPERIMENTS.md's fidelity checklist: Theorem 1
and Eq. 3 are compared against protocol-level Monte Carlo at
representative grid points. If the implementation of either the math
or the simulation drifts, this bench is what breaks.
"""

import numpy as np

from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.utrp_analysis import (
    optimal_utrp_frame_size,
    utrp_detection_probability,
)
from repro.experiments.report import render_table
from repro.simulation.fastpath import (
    trp_detection_trials,
    utrp_collusion_detection_trials,
)
from repro.simulation.rng import derive_seed

SEED = 20080617


def _theorem1_check():
    rows = []
    for n, m in [(100, 5), (500, 10), (1000, 20), (2000, 30)]:
        f = optimal_trp_frame_size(n, m, 0.95)
        analytic = detection_probability(n, m + 1, f)
        rng = np.random.default_rng(derive_seed(SEED, 700, n, m))
        mc = float(trp_detection_trials(n, m + 1, f, 4000, rng).mean())
        rows.append((n, m, f, analytic, mc, abs(analytic - mc)))
    return rows


def _eq3_check():
    rows = []
    for n, m in [(200, 5), (500, 10)]:
        f = optimal_utrp_frame_size(n, m, 0.95, 20)
        analytic = utrp_detection_probability(n, m, f, 20)
        rng = np.random.default_rng(derive_seed(SEED, 701, n, m))
        mc = float(
            utrp_collusion_detection_trials(n, m + 1, f, 20, 600, rng).mean()
        )
        rows.append((n, m, f, analytic, mc, abs(analytic - mc)))
    return rows


def test_theorem1_fidelity(benchmark, save_result):
    rows = benchmark.pedantic(_theorem1_check, rounds=1, iterations=1)
    save_result(
        "validation_theorem1",
        render_table(
            ["n", "m", "f", "g (Theorem 1)", "Monte Carlo", "abs error"],
            rows,
            title="Theorem 1 vs 4000-trial protocol simulation",
        ),
    )
    for n, m, f, analytic, mc, err in rows:
        assert err < 0.015, f"Theorem 1 drifted at n={n}, m={m}: {err:.4f}"


def test_eq3_fidelity(benchmark, save_result):
    rows = benchmark.pedantic(_eq3_check, rounds=1, iterations=1)
    save_result(
        "validation_eq3",
        render_table(
            ["n", "m", "f", "Eq. 3 analytic", "Monte Carlo", "abs error"],
            rows,
            title="Eq. 3 vs 600-trial collusion simulation",
        ),
    )
    # Eq. 3 leans on the expected-value c' (Theorem 3), so the paper
    # itself pads the frame; allow a correspondingly looser band.
    for n, m, f, analytic, mc, err in rows:
        assert err < 0.04, f"Eq. 3 drifted at n={n}, m={m}: {err:.4f}"
