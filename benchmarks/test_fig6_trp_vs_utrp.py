"""Bench: regenerate Fig. 6 — TRP vs UTRP frame sizes at c = 20.

Paper claims checked: UTRP always needs more slots than TRP (the price
of defending against collusion) but "the overhead of UTRP over TRP is
small" — for the paper's larger sets the relative overhead shrinks to
a few percent.
"""

from repro.experiments import fig6
from repro.experiments.grid import grid_from_env


def test_fig6_regeneration(benchmark, save_result):
    grid = grid_from_env()
    result = benchmark.pedantic(fig6.run, args=(grid,), rounds=1, iterations=1)
    save_result("fig6_trp_vs_utrp", fig6.format_result(result))

    for row in result.rows:
        assert row.utrp_slots > row.trp_slots
        assert row.overhead_slots < 200, (
            f"UTRP overhead blew up at n={row.population}, m={row.tolerance}"
        )
    # At the largest set the overhead must be small in relative terms.
    biggest = max(grid.populations)
    for m in grid.tolerances:
        row = [r for r in result.panel(m) if r.population == biggest][0]
        assert row.overhead_fraction < 0.15
