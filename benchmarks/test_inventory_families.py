"""Bench: the two anti-collision inventory families vs TRP monitoring.

The paper's related work spans framed slotted ALOHA and tree-based
splitting; Fig. 4 compares TRP against the former. This bench adds the
latter, confirming that *any* full-inventory approach — not just the
chosen baseline — pays per-tag costs that monitoring avoids.
"""

import numpy as np

from repro.aloha.adaptive import simulate_adaptive_collect_all
from repro.aloha.tree_splitting import simulate_tree_splitting
from repro.core.analysis import optimal_trp_frame_size
from repro.experiments.grid import grid_from_env
from repro.experiments.report import render_table
from repro.rfid.ids import random_tag_ids
from repro.simulation.fastpath import collect_all_slots_trials
from repro.simulation.rng import derive_seed


def _tree_slots(n, trials, rng):
    return float(
        np.mean(
            [
                simulate_tree_splitting(random_tag_ids(n, rng), rng).total_slots
                for _ in range(trials)
            ]
        )
    )


def _adaptive_slots(n, trials, rng):
    return float(
        np.mean(
            [
                simulate_adaptive_collect_all(
                    random_tag_ids(n, rng), rng
                ).total_slots
                for _ in range(trials)
            ]
        )
    )


def test_inventory_family_comparison(benchmark, save_result):
    grid = grid_from_env()
    m = 10

    def run():
        rows = []
        for n in grid.populations:
            rng = np.random.default_rng(derive_seed(grid.master_seed, 500, n))
            aloha = float(
                collect_all_slots_trials(n, m, grid.cost_trials, rng).mean()
            )
            tree = _tree_slots(n, grid.cost_trials, rng)
            adaptive = _adaptive_slots(n, grid.cost_trials, rng)
            trp = optimal_trp_frame_size(n, m, grid.alpha)
            rows.append((n, aloha, tree, adaptive, trp))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "inventory_families",
        render_table(
            ["n", "framed ALOHA slots", "tree splitting slots",
             "adaptive (n unknown)", "TRP slots"],
            rows,
            title=f"Inventory families vs TRP monitoring (m={m}, "
            f"alpha={grid.alpha})",
        ),
    )

    for n, aloha, tree, adaptive, trp in rows:
        # Every inventory family costs a multiple of n...
        assert aloha > 2.0 * n
        assert tree > 2.0 * n
        assert adaptive > 2.0 * n
        # ...while the monitoring frame stays below all of them.
        assert trp < aloha and trp < tree and trp < adaptive
        # Not knowing n costs the adaptive reader only a constant factor.
        assert adaptive < 2.5 * aloha
    # Tree splitting's per-tag cost is roughly flat in n (~2.9).
    per_tag = [tree / n for n, _a, tree, _ad, _t in rows]
    assert max(per_tag) - min(per_tag) < 0.8
