"""Benchmark-suite plumbing.

Every figure bench renders its table to ``results/<name>.txt`` (and
stdout) so ``pytest benchmarks/ --benchmark-only`` leaves the paper's
regenerated figures on disk regardless of output capture.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture
def save_result(results_dir):
    """Write a rendered experiment table under results/ and echo it."""

    def _save(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")
        return path

    return _save
