"""Bench (Abl. I): collusion sync strategies vs the paper's claim.

Sec. 5.4 asserts the adversary's best play is spending the whole
budget on the first empty slots. We play four strategies against the
same challenges; the paper's claim holds if the eager strategy suffers
the (weakly) lowest detection rate. A secondary observation this bench
records: the strategies cluster within a few points of each other —
one un-synchronised stolen-tag reply dooms the forgery no matter how
the budget was scheduled, so the *budget* (the timer), not the
schedule, is what matters.
"""

from repro.experiments import ablations


def test_strategy_comparison(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_strategy_comparison,
        kwargs={"n": 300, "tolerance": 5, "budget": 80, "trials": 300},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_i_strategies", ablations.format_strategy_comparison(rows)
    )

    by_name = {r.strategy: r for r in rows}
    eager = by_name["eager (paper)"]
    others = [r for r in rows if r is not eager]
    # The paper's strategy must be (weakly) the adversary's best,
    # modulo Monte Carlo noise.
    assert eager.detection_rate <= min(r.detection_rate for r in others) + 0.03
    # Every strategy is still caught at better-than-chance rates.
    for r in rows:
        assert r.detection_rate > 0.85
    # No strategy can spend more than the budget.
    for r in rows:
        assert r.mean_comms_used <= 80.0
