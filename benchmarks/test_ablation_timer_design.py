"""Bench (Abl. H): timer design — collusion budget vs link latency.

The honest take on UTRP's timer: the budget ``c`` is not a free
parameter but ``(STmax - STmin)/tcomm``. This bench sweeps the
adversary's link latency and shows the regime where the defence is
cheap (slow links: tens of overhead slots) versus where it blows up
(LAN-fast links: the frame grows by multiples).
"""

from repro.experiments import ablations


def test_timer_design(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_timer_design, rounds=1, iterations=1
    )
    save_result("ablation_h_timer_design", ablations.format_timer_design(rows))

    # Faster adversary links must never shrink the budget or the frame.
    budgets = [r.budget for r in rows]
    frames = [r.utrp_frame for r in rows]
    assert budgets == sorted(budgets, reverse=True)
    assert frames == sorted(frames, reverse=True)
    # Slow links: overhead is a few dozen slots (the Fig. 6 regime).
    assert rows[-1].overhead_slots < 100
    # Fast links: the defence gets expensive — the budget explodes.
    assert rows[0].budget > 100 * rows[-1].budget
