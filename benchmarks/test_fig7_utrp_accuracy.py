"""Bench: regenerate Fig. 7 — UTRP accuracy against optimal collusion.

Paper claim: with the Eq. 3 (+ slack) frame size and ``c = 20``, the
colluding pair's forged bitstring is caught with probability above
``alpha = 0.95`` at every ``(n, m)``.

This is the heaviest figure (a full re-seed cascade per trial); the
default grid keeps it to tens of seconds. ``REPRO_FULL=1`` runs the
paper's 20x4 grid at 1000 trials.
"""

import math

from repro.experiments import fig7
from repro.experiments.grid import grid_from_env


def test_fig7_regeneration(benchmark, save_result):
    grid = grid_from_env()
    result = benchmark.pedantic(fig7.run, args=(grid,), rounds=1, iterations=1)
    save_result("fig7_utrp_accuracy", fig7.format_result(result))

    noise = 3 * math.sqrt(grid.alpha * (1 - grid.alpha) / grid.trials)
    for row in result.rows:
        assert row.detection.rate > grid.alpha - noise, (
            f"collusion detection collapsed at n={row.population}, "
            f"m={row.tolerance}: {row.detection.rate:.3f}"
        )
    assert result.cells_clearing_alpha() >= len(result.rows) // 2
