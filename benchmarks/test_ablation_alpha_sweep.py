"""Bench (Abl. B): Eq. 2 frame size vs required confidence."""

from repro.experiments import ablations


def test_alpha_sweep(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.run_alpha_sweep, rounds=1, iterations=1
    )
    save_result("ablation_b_alpha_sweep", ablations.format_alpha_sweep(rows))

    by_cell = {}
    for r in rows:
        by_cell.setdefault((r.population, r.tolerance), []).append(r)
    for cell, series in by_cell.items():
        sizes = [r.frame_size for r in sorted(series, key=lambda r: r.alpha)]
        assert sizes == sorted(sizes), f"frame must grow with alpha at {cell}"
        # Tightening from 0.90 to 0.999 stays within a small constant
        # factor — confidence is cheap for this protocol.
        assert sizes[-1] < 4.0 * sizes[0]
