"""Bench (Abl. D): the attack matrix — who catches what.

The ordering this must reproduce:
* plain theft vs TRP: caught (> alpha-ish);
* Alg. 4 collusion vs TRP: never caught (the motivating hole);
* collusion vs UTRP with the timer's budget: caught;
* collusion vs UTRP without a timer: never caught (the timer matters).
"""

from repro.experiments import ablations
from repro.experiments.grid import grid_from_env


def test_attack_matrix(benchmark, save_result):
    grid = grid_from_env()
    rows = benchmark.pedantic(
        ablations.run_attack_matrix,
        kwargs={"trials": min(grid.trials, 300), "master_seed": grid.master_seed},
        rounds=1,
        iterations=1,
    )
    save_result("ablation_d_attacks", ablations.format_attack_matrix(rows))

    theft, trp_collusion, utrp_collusion, no_timer = rows
    assert theft.detection_rate > 0.85
    assert trp_collusion.detection_rate == 0.0
    assert utrp_collusion.detection_rate > 0.85
    assert no_timer.detection_rate < 0.1
