"""Tests for repro.experiments.grid."""

import pytest

from repro.experiments.grid import ExperimentGrid, grid_from_env, paper_grid, quick_grid


class TestGrids:
    def test_paper_grid_matches_sec6(self):
        g = paper_grid()
        assert g.populations == tuple(range(100, 2001, 100))
        assert g.tolerances == (5, 10, 20, 30)
        assert g.alpha == 0.95
        assert g.trials == 1000
        assert g.comm_budget == 20

    def test_quick_grid_same_shape(self):
        g = quick_grid()
        assert g.tolerances == paper_grid().tolerances
        assert g.alpha == paper_grid().alpha
        assert max(g.populations) == 2000

    def test_cells_enumeration(self):
        g = ExperimentGrid(populations=(100, 200), tolerances=(5, 10))
        assert g.cells == [(100, 5), (200, 5), (100, 10), (200, 10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentGrid(populations=())
        with pytest.raises(ValueError):
            ExperimentGrid(populations=(100,), tolerances=())
        with pytest.raises(ValueError):
            ExperimentGrid(populations=(100,), alpha=1.5)
        with pytest.raises(ValueError):
            ExperimentGrid(populations=(100,), trials=0)
        with pytest.raises(ValueError):
            ExperimentGrid(populations=(10,), tolerances=(30,))  # degenerate
        with pytest.raises(ValueError):
            ExperimentGrid(populations=(100,), comm_budget=-1)


class TestEnv:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert grid_from_env().trials == quick_grid().trials

    def test_full_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert grid_from_env().populations == paper_grid().populations

    def test_trials_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_TRIALS", "37")
        assert grid_from_env().trials == 37
