"""Tests for repro.core.identification — which tags are missing."""

import numpy as np
import pytest

from repro.core.identification import (
    MissingTagIdentifier,
    confirmed_missing_in_round,
    identification_probability,
    rounds_to_identify,
)
from repro.rfid.hashing import slots_for_tags
from repro.rfid.ids import random_tag_ids


def _round(ids, present_mask, f, seed):
    """Simulate one TRP round's observed bitstring."""
    slots = slots_for_tags(ids, seed, f)
    observed = np.zeros(f, dtype=np.uint8)
    observed[np.unique(slots[present_mask])] = 1
    return observed


class TestSingleRound:
    def test_no_theft_no_confirmations(self):
        ids = random_tag_ids(50, np.random.default_rng(0))
        present = np.ones(50, dtype=bool)
        observed = _round(ids, present, 80, 7)
        ev = confirmed_missing_in_round(ids, 80, 7, observed)
        assert ev.confirmed_missing == set()
        assert ev.suspicious_slots == []

    def test_confirmations_are_actually_missing(self):
        """Soundness: no present tag is ever condemned."""
        rng = np.random.default_rng(1)
        for seed in range(30):
            ids = random_tag_ids(60, rng)
            present = np.ones(60, dtype=bool)
            present[rng.choice(60, 10, replace=False)] = False
            observed = _round(ids, present, 90, seed)
            ev = confirmed_missing_in_round(ids, 90, seed, observed)
            missing_ids = set(int(i) for i in ids[~present])
            assert ev.confirmed_missing <= missing_ids

    def test_lone_missing_tag_in_empty_slot_is_confirmed(self):
        """Completeness within a round: a missing tag alone in its slot
        is condemned."""
        rng = np.random.default_rng(2)
        ids = random_tag_ids(40, rng)
        present = np.ones(40, dtype=bool)
        present[0] = False
        f, seed = 400, 9  # huge frame: almost surely alone
        slots = slots_for_tags(ids, seed, f)
        if np.sum(slots == slots[0]) == 1:
            observed = _round(ids, present, f, seed)
            ev = confirmed_missing_in_round(ids, f, seed, observed)
            assert int(ids[0]) in ev.confirmed_missing

    def test_bitstring_length_checked(self):
        ids = random_tag_ids(5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            confirmed_missing_in_round(ids, 10, 1, np.zeros(9, dtype=np.uint8))


class TestIdentifier:
    def test_accumulates_to_full_identification(self):
        rng = np.random.default_rng(3)
        n, x, f = 100, 8, 150
        ids = random_tag_ids(n, rng)
        present = np.ones(n, dtype=bool)
        present[rng.choice(n, x, replace=False)] = False
        missing_ids = set(int(i) for i in ids[~present])

        identifier = MissingTagIdentifier(ids.tolist())
        rounds = rounds_to_identify(n, x, f, beta=0.99)
        for seed in range(rounds):
            identifier.ingest(f, seed, _round(ids, present, f, seed))
        # Soundness always; completeness with the planned confidence
        # (the seed here is fixed, so this is deterministic-green).
        assert identifier.confirmed_missing <= missing_ids
        assert identifier.confirmed_missing == missing_ids

    def test_rounds_counted(self):
        ids = random_tag_ids(10, np.random.default_rng(4))
        identifier = MissingTagIdentifier(ids.tolist())
        identifier.ingest(20, 1, _round(ids, np.ones(10, dtype=bool), 20, 1))
        assert identifier.rounds_observed == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            MissingTagIdentifier([1, 1, 2])

    def test_coverage_increases_with_rounds(self):
        ids = random_tag_ids(50, np.random.default_rng(5))
        identifier = MissingTagIdentifier(ids.tolist())
        present = np.ones(50, dtype=bool)
        cov = [identifier.coverage(5, 80)]
        for seed in range(3):
            identifier.ingest(80, seed, _round(ids, present, 80, seed))
            cov.append(identifier.coverage(5, 80))
        assert cov == sorted(cov)


class TestAnalysis:
    def test_probability_bounds(self):
        assert identification_probability(100, 5, 150, 0) == 0.0
        assert 0.0 < identification_probability(100, 5, 150, 1) < 1.0
        assert identification_probability(100, 5, 150, 50) > 0.99

    def test_matches_monte_carlo(self):
        """Per-round confirmation probability against simulation."""
        rng = np.random.default_rng(6)
        n, x, f = 80, 6, 120
        confirmed = 0
        trials = 4000
        for t in range(trials):
            ids = random_tag_ids(n, rng)
            present = np.ones(n, dtype=bool)
            present[:x] = False
            slots = slots_for_tags(ids, t, f)
            # is missing tag 0 alone among *present* tags in its slot?
            confirmed += not np.any(slots[present] == slots[0])
        mc = confirmed / trials
        analytic = identification_probability(n, x, f, 1)
        assert abs(mc - analytic) < 0.03

    def test_rounds_to_identify_monotone_in_beta(self):
        r_low = rounds_to_identify(100, 5, 150, beta=0.9)
        r_high = rounds_to_identify(100, 5, 150, beta=0.999)
        assert r_high >= r_low

    def test_rounds_to_identify_fewer_with_bigger_frames(self):
        r_small = rounds_to_identify(100, 5, 120, beta=0.99)
        r_big = rounds_to_identify(100, 5, 600, beta=0.99)
        assert r_big <= r_small

    def test_validation(self):
        with pytest.raises(ValueError):
            identification_probability(10, 11, 5, 1)
        with pytest.raises(ValueError):
            rounds_to_identify(10, 0, 5)
        with pytest.raises(ValueError):
            rounds_to_identify(10, 5, 5, beta=1.0)
