"""Regression baselines: figure outputs pinned against committed CSVs.

Every experiment is seeded, so its output is a pure function of the
code. These tests regenerate each figure on a small fixed grid and
compare against baselines committed under ``tests/baselines/``:

* Fig. 6 is analytic — it must match **exactly**;
* Fig. 4 is seeded Monte Carlo — exact match too (same seeds, same
  kernels), which is precisely what makes unintended kernel changes
  visible;
* Figs. 5 and 7 likewise (seeded), compared exactly on their rates.

To *intentionally* change behaviour, regenerate with
``python tests/test_regression_baselines.py --regenerate`` and review
the CSV diff like any other code change.
"""

import io
import os
import sys

import pytest

from repro.experiments import fig4, fig5, fig6, fig7
from repro.experiments.export import figure_rows, rows_to_csv
from repro.experiments.grid import ExperimentGrid

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: Small but non-trivial fixed grid; changing it invalidates baselines.
GRID = ExperimentGrid(
    populations=(100, 400),
    tolerances=(5, 20),
    alpha=0.95,
    trials=40,
    cost_trials=3,
    comm_budget=20,
    master_seed=424242,
)

FIGS = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
}


def _current_csv(name: str) -> str:
    module = FIGS[name]
    headers, rows = figure_rows(module.run(GRID))
    return rows_to_csv(headers, rows)


def _baseline_path(name: str) -> str:
    return os.path.join(BASELINE_DIR, f"{name}.csv")


@pytest.mark.parametrize("name", sorted(FIGS))
def test_figure_matches_baseline(name):
    path = _baseline_path(name)
    assert os.path.isfile(path), (
        f"missing baseline {path}; generate with "
        f"`python {__file__} --regenerate`"
    )
    expected = open(path).read()
    actual = _current_csv(name)
    assert actual == expected, (
        f"{name} output drifted from its baseline — if intentional, "
        f"regenerate baselines and review the diff"
    )


def _regenerate():
    os.makedirs(BASELINE_DIR, exist_ok=True)
    for name in sorted(FIGS):
        path = _baseline_path(name)
        with open(path, "w") as fh:
            fh.write(_current_csv(name))
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
