"""Tests for repro.fleet.resilience — retries, backoff and escalation."""

import pytest

from repro.fleet.resilience import (
    EscalationLevel,
    EscalationPolicy,
    RetryExhausted,
    RetryPolicy,
    run_with_retry,
)
from repro.fleet.rounds import RoundTimeout
from repro.rfid.channel import ChannelOutage


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        p = RetryPolicy(
            max_attempts=5,
            base_backoff_us=100.0,
            multiplier=2.0,
            max_backoff_us=350.0,
        )
        assert [p.backoff_us(i) for i in range(4)] == [
            100.0,
            200.0,
            350.0,
            350.0,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_us=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_us(-1)


class TestRunWithRetry:
    def test_clean_first_attempt(self):
        result, attempts, backoff = run_with_retry(
            lambda i: "ok", RetryPolicy()
        )
        assert (result, attempts, backoff) == ("ok", 1, 0.0)

    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky(i):
            calls.append(i)
            if i < 2:
                raise ChannelOutage("link down")
            return "recovered"

        policy = RetryPolicy(max_attempts=4, base_backoff_us=10.0)
        result, attempts, backoff = run_with_retry(flaky, policy)
        assert result == "recovered"
        assert attempts == 3
        assert calls == [0, 1, 2]
        assert backoff == policy.backoff_us(0) + policy.backoff_us(1)

    def test_timeout_is_transient_too(self):
        attempts_seen = []

        def slow(i):
            attempts_seen.append(i)
            raise RoundTimeout("frame overran")

        with pytest.raises(RetryExhausted) as exc:
            run_with_retry(slow, RetryPolicy(max_attempts=3))
        assert exc.value.attempts == 3
        assert isinstance(exc.value.last_error, RoundTimeout)
        assert attempts_seen == [0, 1, 2]

    def test_non_transient_propagates_immediately(self):
        def broken(i):
            raise KeyError("not a link problem")

        with pytest.raises(KeyError):
            run_with_retry(broken, RetryPolicy(max_attempts=5))


class TestEscalation:
    def test_ladder_with_counter_tags(self):
        p = EscalationPolicy()
        lvl = EscalationLevel.TRP
        lvl = p.next_level(lvl, counter_tags=True)
        assert lvl is EscalationLevel.UTRP
        lvl = p.next_level(lvl, counter_tags=True)
        assert lvl is EscalationLevel.IDENTIFY

    def test_plain_tags_skip_utrp(self):
        p = EscalationPolicy()
        assert (
            p.next_level(EscalationLevel.TRP, counter_tags=False)
            is EscalationLevel.IDENTIFY
        )

    def test_identify_is_terminal_rank(self):
        assert (
            EscalationLevel.TRP.rank
            < EscalationLevel.UTRP.rank
            < EscalationLevel.IDENTIFY.rank
        )

    def test_streak_threshold(self):
        p = EscalationPolicy(alarm_streak=2)
        assert not p.should_escalate(1)
        assert p.should_escalate(2)
        assert p.should_escalate(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            EscalationPolicy(alarm_streak=0)
