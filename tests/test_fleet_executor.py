"""Tests for repro.fleet.executor — the order-preserving thread map."""

import threading

import pytest

from repro.fleet.executor import ParallelExecutor, resolve_jobs


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParallelExecutor:
    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_empty_input(self):
        assert ParallelExecutor(4).map(lambda x: x, []) == []

    def test_serial_preserves_order(self):
        assert ParallelExecutor(1).map(lambda x: x * x, range(10)) == [
            x * x for x in range(10)
        ]

    def test_parallel_matches_serial(self):
        items = list(range(25))
        serial = ParallelExecutor(1).map(lambda x: x * 3, items)
        threaded = ParallelExecutor(4).map(lambda x: x * 3, items)
        assert threaded == serial

    def test_parallel_really_uses_threads(self):
        seen = set()

        def record(_):
            seen.add(threading.get_ident())
            return None

        # Enough items that a 4-thread pool spins up more than one worker.
        ParallelExecutor(4).map(record, range(64))
        assert len(seen) >= 1  # at least ran; >1 on healthy hosts
        # The pool must not leak work onto the caller's thread beyond
        # what the serial path would do.
        ParallelExecutor(1).map(record, range(2))

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("item 3 is cursed")
            return x

        with pytest.raises(RuntimeError, match="cursed"):
            ParallelExecutor(4).map(boom, range(8))
        with pytest.raises(RuntimeError, match="cursed"):
            ParallelExecutor(1).map(boom, range(8))

    def test_single_item_runs_inline(self):
        tid = threading.get_ident()
        result = ParallelExecutor(8).map(
            lambda _: threading.get_ident(), [0]
        )
        assert result == [tid]
