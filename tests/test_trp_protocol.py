"""Protocol-level tests for TRP (Algs. 1-3 end to end)."""

import numpy as np
import pytest

from repro.core.analysis import frame_size_for
from repro.core.parameters import MonitorRequirement
from repro.core.trp import run_trp_round
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.server.database import TagDatabase
from repro.server.seeds import SeedIssuer


def _setup(n=60, m=3, counter_tags=False, seed=1):
    rng = np.random.default_rng(seed)
    req = MonitorRequirement(population=n, tolerance=m, confidence=0.95)
    pop = TagPopulation.create(n, uses_counter=counter_tags, rng=rng)
    db = TagDatabase()
    db.register_set(pop.ids.tolist())
    issuer = SeedIssuer(rng)
    return req, pop, db, issuer


class TestIntactRounds:
    def test_intact_set_verifies(self):
        req, pop, db, issuer = _setup()
        report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert report.intact

    def test_intact_set_verifies_repeatedly(self):
        req, pop, db, issuer = _setup()
        channel = SlottedChannel(pop.tags)
        for _ in range(5):
            assert run_trp_round(db, issuer, req, channel).intact

    def test_frame_size_defaults_to_eq2(self):
        req, pop, db, issuer = _setup()
        report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert report.challenge.frame_size == frame_size_for(req)
        assert report.slots_used == frame_size_for(req)

    def test_frame_size_override(self):
        req, pop, db, issuer = _setup()
        report = run_trp_round(
            db, issuer, req, SlottedChannel(pop.tags), frame_size=200
        )
        assert report.challenge.frame_size == 200

    def test_fresh_seed_every_round(self):
        req, pop, db, issuer = _setup()
        channel = SlottedChannel(pop.tags)
        seeds = {run_trp_round(db, issuer, req, channel).challenge.seed
                 for _ in range(10)}
        assert len(seeds) == 10

    def test_counter_tags_with_counter_aware_round(self):
        req, pop, db, issuer = _setup(counter_tags=True)
        channel = SlottedChannel(pop.tags)
        for _ in range(3):
            report = run_trp_round(
                db, issuer, req, channel, counter_aware=True
            )
            assert report.intact
        assert db.counters.tolist() == [3] * 60

    def test_counter_tags_without_counter_awareness_false_alarm(self):
        """The misconfiguration guard: counter tags under a plain TRP
        prediction desynchronise immediately."""
        req, pop, db, issuer = _setup(counter_tags=True)
        report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert not report.intact


class TestTheftDetection:
    def test_large_theft_always_detected(self):
        req, pop, db, issuer = _setup()
        pop.remove_random(30, np.random.default_rng(2))
        report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert not report.intact
        assert report.result.mismatched_slots

    def test_worst_case_theft_detected_at_expected_rate(self):
        """m + 1 theft must be caught in > ~alpha of rounds."""
        detected = 0
        rounds = 120
        for seed in range(rounds):
            req, pop, db, issuer = _setup(seed=seed)
            pop.remove_random(req.tolerance + 1, np.random.default_rng(seed + 999))
            report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
            detected += not report.intact
        assert detected / rounds > 0.88  # 0.95 minus Monte Carlo slack

    def test_mismatches_only_where_expected_ones(self):
        """Theft can only erase occupancy: every mismatched slot is a
        slot the server expected to be 1."""
        req, pop, db, issuer = _setup()
        pop.remove_random(20, np.random.default_rng(3))
        report = run_trp_round(db, issuer, req, SlottedChannel(pop.tags))
        for slot in report.result.mismatched_slots:
            assert report.scan.bitstring[slot] == 0


class TestValidation:
    def test_population_mismatch(self):
        req, pop, db, issuer = _setup()
        wrong_req = MonitorRequirement(population=61, tolerance=3, confidence=0.95)
        with pytest.raises(ValueError):
            run_trp_round(db, issuer, wrong_req, SlottedChannel(pop.tags))
