"""Unit tests for repro.obs.agg — snapshot, merge, self-check, parse."""

import math

import pytest

from repro.obs.agg import (
    assert_families,
    histogram_quantile,
    merge_snapshots,
    parse_prometheus_text,
    snapshot_registry,
    sum_family,
)
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.serve.server import (
    SERVE_METRIC_FAMILIES,
    register_serve_metrics,
)


def _observe(registry, events):
    """Replay (group, verdict, latency_us) events into serve_* metrics."""
    verdicts = registry.counter(
        "serve_verdicts_total", "round verdicts by group and outcome",
        ("group", "verdict"),
    )
    latency = registry.histogram(
        "serve_round_latency_us", "round latency in simulated microseconds",
        keep_samples=False,
    )
    for group, verdict, latency_us in events:
        verdicts.labels(group=group, verdict=verdict).inc()
        latency.observe(latency_us)


EVENTS = [
    ("group-000", "intact", 120.0),
    ("group-000", "intact", 130.0),
    ("group-001", "not-intact", 95.0),
    ("group-002", "intact", 260.0),
    ("group-002", "rejected-late", 900.0),
    ("group-003", "intact", 45.0),
]


class TestMergeDeterminism:
    def test_sharded_merge_equals_single_process(self):
        """The tentpole property: merging N worker snapshots yields a
        registry digest-identical to one process observing everything."""
        single = MetricsRegistry()
        _observe(single, EVENTS)

        for cut in (1, 2, 3, 5):
            shards = [MetricsRegistry() for _ in range(2)]
            _observe(shards[0], EVENTS[:cut])
            _observe(shards[1], EVENTS[cut:])
            merged = merge_snapshots(
                snapshot_registry(r, seq=i, source=f"w{i:02d}")
                for i, r in enumerate(shards)
            )
            assert merged.digest() == single.digest(), f"cut={cut}"
            assert prometheus_text(merged) == prometheus_text(single)

    def test_merge_is_order_invariant(self):
        shards = [MetricsRegistry() for _ in range(3)]
        for i, shard in enumerate(shards):
            _observe(shard, EVENTS[i::3])
        docs = [
            snapshot_registry(r, seq=1, source=f"w{i:02d}")
            for i, r in enumerate(shards)
        ]
        assert (
            merge_snapshots(docs).digest()
            == merge_snapshots(docs[::-1]).digest()
        )

    def test_merge_pools_retained_samples_sorted(self):
        a, b, single = (MetricsRegistry() for _ in range(3))
        for registry, values in ((a, [5.0, 1.0]), (b, [3.0]), (single, [5.0, 1.0, 3.0])):
            h = registry.histogram("h", "h")
            for v in values:
                h.observe(v)
        merged = merge_snapshots(
            [snapshot_registry(a), snapshot_registry(b)]
        )
        assert merged.digest() == single.digest()

    def test_shape_conflict_raises_instead_of_guessing(self):
        a = MetricsRegistry()
        a.counter("serve_verdicts_total", "v", ("group",))
        b = MetricsRegistry()
        b.counter("serve_verdicts_total", "v", ("group", "verdict"))
        with pytest.raises(ValueError):
            merge_snapshots([snapshot_registry(a), snapshot_registry(b)])

    def test_wrong_schema_tag_raises(self):
        doc = snapshot_registry(MetricsRegistry())
        doc["v"] = "not.a.snapshot/v0"
        with pytest.raises(ValueError, match="schema"):
            merge_snapshots([doc])


class TestFamilySelfCheck:
    def test_serve_families_pass_their_own_declaration(self):
        registry = MetricsRegistry()
        register_serve_metrics(registry)  # asserts internally

    def test_missing_family_fails(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="never registered"):
            assert_families(registry, SERVE_METRIC_FAMILIES)

    def test_renamed_labels_fail(self):
        registry = MetricsRegistry()
        registry.counter("serve_verdicts_total", "v", ("group", "outcome"))
        with pytest.raises(ValueError, match="labels"):
            assert_families(
                registry,
                {"serve_verdicts_total": ("counter", ("group", "verdict"))},
            )

    def test_kind_drift_fails(self):
        registry = MetricsRegistry()
        registry.gauge("serve_timeouts_total", "t")
        with pytest.raises(ValueError, match="declared counter"):
            assert_families(
                registry, {"serve_timeouts_total": ("counter", ())}
            )


class TestQuantiles:
    def test_interpolates_within_bucket(self):
        # 10 observations uniform in (0, 100]: p50 ~ 50.
        bounds = [10.0, 100.0]
        cumulative = [1, 10, 10]
        assert histogram_quantile(bounds, cumulative, 50.0) == pytest.approx(
            10.0 + 90.0 * (5 - 1) / 9
        )

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile([1.0], [0, 0], 99.0) == 0.0

    def test_overflow_clamps_to_last_finite_bound(self):
        assert histogram_quantile([1.0], [0, 7], 99.0) == 1.0

    def test_rejects_bad_shapes_and_percentiles(self):
        with pytest.raises(ValueError):
            histogram_quantile([1.0, 2.0], [1, 2], 50.0)
        with pytest.raises(ValueError):
            histogram_quantile([1.0], [1, 1], 150.0)


class TestPrometheusRoundTrip:
    NASTY = 'he said "hi\\there"\nand left'

    def test_escaping_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("serve_errors_total", "errors", ("code",)).labels(
            code=self.NASTY
        ).inc(3)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[
            ("serve_errors_total", (("code", self.NASTY),))
        ] == 3.0

    def test_histogram_lines_parse(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", "h", buckets=(1.0, 2.0), keep_samples=False)
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("h_bucket", (("le", "1"),))] == 1.0
        assert samples[("h_bucket", (("le", "2"),))] == 2.0
        assert samples[("h_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("h_count", ())] == 3.0
        assert samples[("h_sum", ())] == pytest.approx(11.0)

    def test_special_values_parse(self):
        assert math.isinf(parse_prometheus_text("x +Inf")[("x", ())])
        assert math.isnan(parse_prometheus_text("x NaN")[("x", ())])

    def test_malformed_line_raises_with_context(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus_text("ok 1\nbroken{a=b} 2")

    def test_sum_family_sums_only_that_family(self):
        registry = MetricsRegistry()
        v = registry.counter("serve_verdicts_total", "v", ("group", "verdict"))
        v.labels(group="g0", verdict="intact").inc(2)
        v.labels(group="g1", verdict="not-intact").inc(3)
        registry.counter("serve_timeouts_total", "t").inc(9)
        samples = parse_prometheus_text(prometheus_text(registry))
        assert sum_family(samples, "serve_verdicts_total") == 5.0
        assert sum_family(samples, "serve_timeouts_total") == 9.0
        assert sum_family(samples, "no_such_family") == 0.0
