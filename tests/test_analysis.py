"""Unit tests for repro.core.analysis — Theorem 1, Lemma 1, Eq. 2."""

import numpy as np
import pytest

from repro.core.analysis import (
    detection_probability,
    detection_probability_poisson,
    expected_empty_slots,
    frame_size_for,
    optimal_trp_frame_size,
)
from repro.core.parameters import MonitorRequirement


class TestDetectionProbability:
    def test_zero_missing_is_undetectable(self):
        assert detection_probability(100, 0, 50) == 0.0

    def test_all_missing_is_certain(self):
        # With every tag gone the frame is empty; any tag would expose it.
        assert detection_probability(50, 50, 60) > 0.999

    def test_bounded_probability(self):
        for n, x, f in [(10, 1, 5), (100, 3, 50), (1000, 11, 700), (5, 5, 1)]:
            g = detection_probability(n, x, f)
            assert 0.0 <= g <= 1.0

    def test_lemma1_monotone_in_missing(self):
        """Lemma 1: more missing tags are easier to detect."""
        values = [detection_probability(200, x, 150) for x in range(1, 30)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_monotone_in_frame_size(self):
        values = [detection_probability(200, 6, f) for f in range(50, 800, 25)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_matches_monte_carlo(self):
        """Theorem 1 against direct simulation of the slot process."""
        n, x, f = 60, 4, 80
        rng = np.random.default_rng(11)
        hits = 0
        trials = 30_000
        for _ in range(trials):
            slots = rng.integers(0, f, size=n)
            present = np.bincount(slots[x:], minlength=f)
            hits += bool(np.any(present[slots[:x]] == 0))
        mc = hits / trials
        assert abs(detection_probability(n, x, f) - mc) < 0.01

    def test_exact_occupancy_close_to_paper_form(self):
        paper = detection_probability(500, 6, 500)
        exact = detection_probability(500, 6, 500, exact_occupancy=True)
        assert abs(paper - exact) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_probability(10, 11, 5)
        with pytest.raises(ValueError):
            detection_probability(10, -1, 5)
        with pytest.raises(ValueError):
            detection_probability(10, 1, 0)


class TestPoissonApproximation:
    def test_bounded(self):
        for n, x, f in [(100, 6, 100), (1000, 11, 700)]:
            g = detection_probability_poisson(n, x, f)
            assert 0.0 <= g <= 1.0

    def test_close_to_exact_at_scale(self):
        exact = detection_probability(1000, 11, 700)
        approx = detection_probability_poisson(1000, 11, 700)
        assert abs(exact - approx) < 0.02

    def test_zero_missing(self):
        assert detection_probability_poisson(100, 0, 50) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_probability_poisson(10, 11, 5)
        with pytest.raises(ValueError):
            detection_probability_poisson(10, 1, 0)


class TestExpectedEmptySlots:
    def test_formula(self):
        import math

        assert expected_empty_slots(100, 0, 50) == pytest.approx(
            50 * math.exp(-2.0)
        )

    def test_more_missing_more_empties(self):
        assert expected_empty_slots(100, 20, 50) > expected_empty_slots(100, 0, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_empty_slots(10, 0, 0)


class TestOptimalFrameSize:
    def test_satisfies_constraint(self):
        for n, m in [(100, 5), (500, 10), (2000, 30)]:
            f = optimal_trp_frame_size(n, m, 0.95)
            assert detection_probability(n, m + 1, f) > 0.95

    def test_minimality(self):
        for n, m in [(100, 5), (500, 10), (2000, 30)]:
            f = optimal_trp_frame_size(n, m, 0.95)
            assert detection_probability(n, m + 1, f - 1) <= 0.95

    def test_grows_with_population(self):
        sizes = [optimal_trp_frame_size(n, 10, 0.95) for n in (100, 500, 1000, 2000)]
        assert sizes == sorted(sizes)

    def test_shrinks_with_tolerance(self):
        sizes = [optimal_trp_frame_size(1000, m, 0.95) for m in (5, 10, 20, 30)]
        assert sizes == sorted(sizes, reverse=True)

    def test_grows_with_confidence(self):
        sizes = [optimal_trp_frame_size(500, 10, a) for a in (0.9, 0.95, 0.99)]
        assert sizes == sorted(sizes)

    def test_known_paper_scale_values(self):
        """Anchor the Eq. 2 solutions to the magnitudes in Figs. 4/6."""
        assert 1900 < optimal_trp_frame_size(2000, 5, 0.95) < 2400
        assert 600 < optimal_trp_frame_size(1000, 10, 0.95) < 800
        assert 700 < optimal_trp_frame_size(2000, 30, 0.95) < 950

    def test_validation_delegates_to_requirement(self):
        with pytest.raises(ValueError):
            optimal_trp_frame_size(10, 10, 0.95)
        with pytest.raises(ValueError):
            optimal_trp_frame_size(10, 1, 1.5)

    def test_wrapper_matches(self):
        req = MonitorRequirement(population=300, tolerance=5, confidence=0.95)
        assert frame_size_for(req) == optimal_trp_frame_size(300, 5, 0.95)

    def test_cache_consistency(self):
        a = optimal_trp_frame_size(400, 7, 0.95)
        b = optimal_trp_frame_size(400, 7, 0.95)
        assert a == b
