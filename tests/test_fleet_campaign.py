"""Tests for repro.fleet.campaign — determinism, escalation, failure paths."""

import numpy as np
import pytest

from repro.fleet import (
    CampaignConfig,
    EscalationLevel,
    FleetRegistry,
    FleetScenario,
    GroupSpec,
    RetryPolicy,
    TheftEvent,
    default_scenario,
    format_campaign_result,
    run_campaign,
)
from repro.fleet.campaign import GroupRuntime


def _one_group_scenario(**spec_kwargs):
    kwargs = dict(name="zone", population=400, tolerance=5)
    kwargs.update(spec_kwargs)
    return FleetScenario(registry=FleetRegistry([GroupSpec(**kwargs)]))


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(ticks=0)
        with pytest.raises(ValueError):
            CampaignConfig(jobs=0)
        with pytest.raises(ValueError):
            CampaignConfig(diagnostic_trials=-1)
        with pytest.raises(ValueError):
            CampaignConfig(round_timeout_us=0)


class TestDeterminism:
    def test_same_seed_same_digest(self):
        scenario = default_scenario(groups=5)
        config = CampaignConfig(ticks=4, master_seed=11)
        a = run_campaign(scenario, config)
        b = run_campaign(scenario, config)
        assert a.journal.digest() == b.journal.digest()
        assert len(a.journal) > 0

    def test_jobs_do_not_change_the_journal(self):
        scenario = default_scenario(groups=6)
        serial = run_campaign(
            scenario, CampaignConfig(ticks=4, jobs=1, master_seed=11)
        )
        threaded = run_campaign(
            scenario, CampaignConfig(ticks=4, jobs=3, master_seed=11)
        )
        assert serial.journal.records == threaded.journal.records
        assert serial.journal.digest() == threaded.journal.digest()

    def test_different_seeds_diverge(self):
        scenario = default_scenario(groups=4)
        a = run_campaign(scenario, CampaignConfig(ticks=3, master_seed=1))
        b = run_campaign(scenario, CampaignConfig(ticks=3, master_seed=2))
        assert a.journal.digest() != b.journal.digest()


class TestEscalation:
    def test_repeated_theft_walks_the_ladder(self):
        """TRP alarms -> UTRP rounds -> identification rounds."""
        scenario = _one_group_scenario()
        scenario.events.append(TheftEvent(group="zone", tick=1, count=60))
        scenario.events.append(TheftEvent(group="zone", tick=2, count=20))
        result = run_campaign(
            scenario, CampaignConfig(ticks=7, master_seed=3)
        )
        protocols = [r.protocol for r in result.journal.for_group("zone")]
        assert protocols[0] == "trp"
        assert "utrp" in protocols
        assert "identify" in protocols
        # The ladder only moves forward while alarms persist.
        ranks = [
            EscalationLevel(p).rank for p in protocols
        ]
        assert ranks == sorted(ranks)

    def test_intact_group_never_alarms_or_escalates(self):
        result = run_campaign(
            _one_group_scenario(), CampaignConfig(ticks=5, master_seed=3)
        )
        assert result.alerts == []
        assert result.journal.escalations() == []
        assert all(r.protocol == "trp" for r in result.journal.records)

    def test_sub_tolerance_loss_stays_silent_with_tolerant_policy(self):
        scenario = _one_group_scenario(
            tolerance=30, tolerant_alarms=True
        )
        scenario.events.append(TheftEvent(group="zone", tick=1, count=3))
        result = run_campaign(
            scenario, CampaignConfig(ticks=4, master_seed=3)
        )
        assert result.alerts == []

    def test_identification_names_only_stolen_tags(self):
        spec = GroupSpec(name="vault", population=300, tolerance=4)
        runtime = GroupRuntime(spec, CampaignConfig(ticks=1, master_seed=5), 0)
        runtime.apply_theft(30)
        stolen = {int(t) for t in runtime.ids[~runtime.present]}
        assert len(stolen) == 30
        runtime.level = EscalationLevel.IDENTIFY
        named = set()
        for tick in range(6):
            record = runtime.run_round(tick)
            assert record.protocol == "identify"
            named.update(record.confirmed_missing)
        assert named  # forensics made progress
        assert named <= stolen  # and never accused a present tag


class TestFailurePaths:
    def test_round_timeout_exhausts_retries(self):
        scenario = _one_group_scenario()
        config = CampaignConfig(
            ticks=3,
            master_seed=3,
            round_timeout_us=1.0,  # everything overruns
            retry=RetryPolicy(max_attempts=3),
        )
        result = run_campaign(scenario, config)
        records = result.journal.for_group("zone")
        assert len(records) == 3
        assert all(r.verdict == "failed" for r in records)
        assert all(r.attempts == 3 for r in records)
        assert all("exceeds budget" in r.failure for r in records)
        gm = result.metrics.group("zone")
        assert gm.rounds_failed == 3
        assert gm.rounds_completed == 0
        assert gm.retries == 6  # two extra attempts per round

    def test_failed_rounds_charge_backoff(self):
        scenario = _one_group_scenario()
        policy = RetryPolicy(max_attempts=2, base_backoff_us=123.0)
        result = run_campaign(
            scenario,
            CampaignConfig(
                ticks=1, master_seed=3, round_timeout_us=1.0, retry=policy
            ),
        )
        (record,) = result.journal.records
        assert record.backoff_us == policy.backoff_us(0)

    def test_outages_retry_and_recover(self):
        """A flaky link costs attempts, not rounds, at moderate rates."""
        scenario = _one_group_scenario(outage_rate=0.4)
        result = run_campaign(
            scenario, CampaignConfig(ticks=6, master_seed=3)
        )
        gm = result.metrics.group("zone")
        assert gm.retries > 0
        assert gm.rounds_completed > 0

    def test_schedule_survives_failures(self):
        """A group that keeps failing still gets its next slot."""
        scenario = _one_group_scenario(interval=2)
        result = run_campaign(
            scenario,
            CampaignConfig(ticks=6, master_seed=3, round_timeout_us=1.0),
        )
        assert [r.tick for r in result.journal.records] == [0, 2, 4]


class TestAlerts:
    def test_callback_order_matches_journal(self):
        scenario = default_scenario(groups=4)
        seen = []
        result = run_campaign(
            scenario,
            CampaignConfig(ticks=4, jobs=2, master_seed=11),
            on_alert=seen.append,
        )
        assert seen == result.alerts
        assert [
            (a.group, a.tick) for a in seen
        ] == [(r.group, r.tick) for r in result.journal.alarms()]


class TestPersistence:
    def test_scenario_roundtrip(self, tmp_path):
        scenario = default_scenario(groups=5)
        path = tmp_path / "scenario.json"
        scenario.save(str(path))
        loaded = FleetScenario.load(str(path))
        assert loaded.to_dict() == scenario.to_dict()
        config = CampaignConfig(ticks=3, master_seed=11)
        assert (
            run_campaign(loaded, config).journal.digest()
            == run_campaign(scenario, config).journal.digest()
        )

    def test_scenario_rejects_unknown_group_events(self):
        scenario = _one_group_scenario()
        scenario.events.append(TheftEvent(group="ghost", tick=0, count=1))
        with pytest.raises(ValueError, match="ghost"):
            run_campaign(scenario, CampaignConfig(ticks=1))

    def test_journal_roundtrip(self, tmp_path):
        from repro.fleet import FleetJournal

        result = run_campaign(
            default_scenario(groups=3), CampaignConfig(ticks=3, master_seed=11)
        )
        path = tmp_path / "journal.jsonl"
        result.journal.dump(str(path))
        loaded = FleetJournal.load(str(path))
        assert loaded.digest() == result.journal.digest()

    def test_journal_load_reports_bad_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"not": "a record"}\n')
        from repro.fleet import FleetJournal

        with pytest.raises(ValueError, match="journal.jsonl:1"):
            FleetJournal.load(str(path))


class TestReporting:
    def test_report_contains_table_and_digest(self):
        result = run_campaign(
            default_scenario(groups=4), CampaignConfig(ticks=4, master_seed=11)
        )
        report = format_campaign_result(result)
        assert "fleet campaign: 4 group(s)" in report
        assert "journal digest:" in report
        assert "TOTAL" in report

    def test_diagnostics_recorded_when_requested(self):
        result = run_campaign(
            _one_group_scenario(),
            CampaignConfig(ticks=2, master_seed=3, diagnostic_trials=64),
        )
        rates = [
            r.empirical_detection
            for r in result.journal.records
            if r.failure is None
        ]
        assert rates and all(0.0 <= rate <= 1.0 for rate in rates)

    def test_theft_clamps_to_population(self):
        spec = GroupSpec(name="tiny", population=50, tolerance=3)
        runtime = GroupRuntime(spec, CampaignConfig(), 0)
        assert runtime.apply_theft(80) == 50
        assert runtime.apply_theft(1) == 0
        assert not runtime.present.any()
