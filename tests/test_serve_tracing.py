"""End-to-end tracing and SLO tests over the serve loopback."""

import asyncio
import itertools

from repro.obs import ObsContext
from repro.obs.tracing import Tracer, merge_spans, span_tree_digest
from repro.rfid.channel import SlottedChannel
from repro.serve import (
    MonitoringService,
    ReaderClient,
    SessionConfig,
    protocol,
)
from repro.shard.telemetry import slo_summary

POP = 40
SEED = 7


def _service(tracer=None, obs=None, session_config=None) -> MonitoringService:
    svc = MonitoringService(
        session_config=session_config, obs=obs, tracer=tracer
    )
    svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
    return svc


def _channel() -> SlottedChannel:
    population = MonitoringService.build_population_for(
        POP, seed=SEED, counter_tags=True
    )
    return SlottedChannel(population.tags)


def run(coro):
    return asyncio.run(coro)


async def _traced_rounds(rounds=3):
    server_tracer = Tracer("server")
    reader_tracer = Tracer("reader")
    async with _service(tracer=server_tracer) as svc:
        async with ReaderClient(
            "127.0.0.1", svc.port, _channel(), tracer=reader_tracer
        ) as client:
            for _ in range(rounds):
                await client.run_round("g0", "trp")
    return reader_tracer, server_tracer


class TestPropagation:
    def test_rounds_stitch_across_the_wire(self):
        reader_tracer, server_tracer = run(_traced_rounds(rounds=2))
        spans = merge_spans(reader_tracer.spans, server_tracer.spans)
        assert len(spans) == 4  # 2 rounds x (reader.round + serve.round)
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        for members in by_trace.values():
            root, child = members
            assert (root.name, child.name) == ("reader.round", "serve.round")
            assert (root.hop, child.hop) == (0, 1)
            assert child.parent_id == root.span_id
            assert child.fields["verdict"] == root.fields["verdict"]

    def test_digest_is_stable_across_runs(self):
        first = run(_traced_rounds())
        second = run(_traced_rounds())
        assert span_tree_digest(
            merge_spans(first[0].spans, first[1].spans)
        ) == span_tree_digest(merge_spans(second[0].spans, second[1].spans))

    def test_untraced_client_against_traced_server(self):
        """Strict backward compatibility: a v1 client that never heard
        of the trace envelope gets zero protocol errors and the traced
        server records zero spans for it."""
        server_tracer = Tracer("server")

        async def scenario():
            async with _service(tracer=server_tracer) as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    return await client.run_round("g0", "trp")

        outcome = run(scenario())
        assert outcome.verdict == "intact"
        assert len(server_tracer) == 0

    def test_reseed_frame_without_tracer_has_no_trace_field(self):
        frame = protocol.reseed("g0", "trp")
        assert "trace" not in frame.payload
        # And with_trace(None) must be the identity on the wire.
        assert protocol.with_trace(frame, None).payload == frame.payload

    def test_traced_and_untraced_verdicts_agree(self):
        async def scenario(tracer):
            async with _service(tracer=tracer) as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel(),
                    tracer=Tracer("reader") if tracer else None,
                ) as client:
                    return [
                        (o.verdict, o.frame_size, o.mismatched_slots)
                        for o in [
                            await client.run_round("g0", "trp")
                            for _ in range(3)
                        ]
                    ]

        assert run(scenario(Tracer("server"))) == run(scenario(None))


class TestSloAccounting:
    def test_late_round_is_exactly_one_rejection(self):
        """An injected clock makes one UTRP round overshoot its timer:
        the Theorem-5 path must fire exactly once, and /slo's budget
        split must agree with the late-rejection counter."""
        ticks = itertools.chain([0.0, 1.0], itertools.repeat(2.0))
        obs = ObsContext()
        config = SessionConfig(
            wall_us_per_s=1.0e6,
            reply_timeout_s=30.0,
            clock=lambda: next(ticks),
        )

        async def scenario():
            async with _service(obs=obs, session_config=config) as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    return await client.run_round("g0", "utrp")

        outcome = run(scenario())
        assert outcome.verdict == "rejected-late"
        assert outcome.alarm is True

        doc = slo_summary(obs.registry)
        assert doc["late_rejections_total"] == 1
        assert doc["deadline_budget"]["over_budget"] == 1
        assert doc["deadline_budget"]["within_budget"] == 0
        assert doc["verdicts_total"] == 1

    def test_latency_histogram_observes_air_time(self):
        """TRP verification carries elapsed 0; the SLO histogram must
        still see the reader-reported (seed-derived) air time."""
        obs = ObsContext()

        async def scenario():
            async with _service(obs=obs) as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    await client.run_round("g0", "trp")

        run(scenario())
        doc = slo_summary(obs.registry)
        assert doc["round_latency_us"]["count"] == 1
        assert doc["round_latency_us"]["sum"] > 0.0
