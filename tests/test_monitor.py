"""Tests for repro.core.monitor — the deployment-facing server object."""

import numpy as np
import pytest

from repro.core.monitor import Alert, MonitoringServer
from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation


def _deploy(n=60, m=3, counter_tags=True, seed=1, **kwargs):
    rng = np.random.default_rng(seed)
    req = MonitorRequirement(population=n, tolerance=m, confidence=0.95)
    pop = TagPopulation.create(n, uses_counter=counter_tags, rng=rng)
    server = MonitoringServer(req, rng=rng, counter_tags=counter_tags, **kwargs)
    server.register(pop.ids.tolist())
    return server, pop


class TestRegistration:
    def test_register_wrong_count(self):
        req = MonitorRequirement(population=5, tolerance=1, confidence=0.9)
        server = MonitoringServer(req)
        with pytest.raises(ValueError):
            server.register([1, 2, 3])

    def test_register_once(self):
        server, pop = _deploy()
        with pytest.raises(RuntimeError):
            server.register(pop.ids.tolist())


class TestPlanning:
    def test_frame_sizes_exposed(self):
        server, _ = _deploy()
        assert server.utrp_frame_size > server.trp_frame_size > 0


class TestChecks:
    def test_trp_intact_no_alert(self):
        server, pop = _deploy()
        report = server.check_trp(SlottedChannel(pop.tags))
        assert report.intact
        assert server.alerts == []

    def test_utrp_intact_no_alert(self):
        server, pop = _deploy()
        report = server.check_utrp(SlottedChannel(pop.tags))
        assert report.intact and not server.alerts

    def test_mixed_schedule_stays_in_sync(self):
        """Alternating TRP and UTRP on counter tags must keep verifying."""
        server, pop = _deploy()
        channel = SlottedChannel(pop.tags)
        for i in range(6):
            if i % 2:
                assert server.check_utrp(channel).intact
            else:
                assert server.check_trp(channel).intact

    def test_theft_raises_alert(self):
        server, pop = _deploy()
        pop.remove_random(20, np.random.default_rng(5))
        report = server.check_trp(SlottedChannel(pop.tags))
        assert not report.intact
        assert len(server.alerts) == 1
        assert server.alerts[0].protocol == "TRP"

    def test_alert_callback_invoked(self):
        seen = []
        server, pop = _deploy(on_alert=seen.append)
        pop.remove_random(20, np.random.default_rng(5))
        server.check_utrp(SlottedChannel(pop.tags))
        assert len(seen) == 1
        assert isinstance(seen[0], Alert)
        assert "not-intact" in seen[0].describe()

    def test_rounds_counted(self):
        server, pop = _deploy()
        channel = SlottedChannel(pop.tags)
        server.check_trp(channel)
        server.check_utrp(channel)
        assert server.rounds_run == 2

    def test_alert_round_index(self):
        server, pop = _deploy()
        channel = SlottedChannel(pop.tags)
        server.check_trp(channel)  # round 0, intact
        pop.remove_random(20, np.random.default_rng(5))
        server.check_trp(SlottedChannel(pop.tags))  # round 1, alarm
        assert server.alerts[0].round_index == 1


class TestAlertCallbackEdgeCases:
    def test_raising_callback_propagates_but_alert_is_kept(self):
        """A broken pager must not lose the alarm itself."""

        def explode(alert):
            raise RuntimeError("pager gateway down")

        server, pop = _deploy(on_alert=explode)
        pop.remove_random(20, np.random.default_rng(5))
        with pytest.raises(RuntimeError, match="pager gateway down"):
            server.check_trp(SlottedChannel(pop.tags))
        # The alert was recorded before the callback fired.
        assert len(server.alerts) == 1

    def test_check_before_register_rejected(self):
        """Zero registered tags is a configuration error, not 'intact'."""
        rng = np.random.default_rng(1)
        req = MonitorRequirement(population=10, tolerance=1, confidence=0.9)
        server = MonitoringServer(req, rng=rng)
        pop = TagPopulation.create(10, uses_counter=False, rng=rng)
        with pytest.raises(ValueError):
            server.check_trp(SlottedChannel(pop.tags))
        assert server.alerts == []
        assert server.rounds_run == 0

    def test_repeated_alarms_each_fire_with_distinct_rounds(self):
        seen = []
        server, pop = _deploy(on_alert=seen.append)
        pop.remove_random(20, np.random.default_rng(5))
        for _ in range(3):
            server.check_trp(SlottedChannel(pop.tags))
        assert len(seen) == 3
        assert [a.round_index for a in seen] == [0, 1, 2]
        assert seen == server.alerts


class TestCounterTagEnforcement:
    def test_utrp_requires_counter_tags(self):
        server, pop = _deploy(counter_tags=False)
        with pytest.raises(RuntimeError):
            server.check_utrp(SlottedChannel(pop.tags))

    def test_plain_deployment_trp_works(self):
        server, pop = _deploy(counter_tags=False)
        assert server.check_trp(SlottedChannel(pop.tags)).intact


class TestParameterPassThrough:
    def test_utrp_timer_override(self):
        server, pop = _deploy()
        report = server.check_utrp(SlottedChannel(pop.tags), timer=1e-9)
        assert report.result.verdict.value == "rejected-late"

    def test_utrp_frame_override(self):
        server, pop = _deploy()
        report = server.check_utrp(SlottedChannel(pop.tags), frame_size=150)
        assert report.challenge.frame_size == 150

    def test_trp_frame_override(self):
        server, pop = _deploy()
        report = server.check_trp(SlottedChannel(pop.tags), frame_size=222)
        assert report.challenge.frame_size == 222


class TestGroupedThresholdPolicies:
    def test_per_group_policy_suppresses_small_losses(self):
        from repro.core.estimation import ThresholdAlarmPolicy
        from repro.core.groups import GroupedMonitor

        rng = np.random.default_rng(31)
        monitor = GroupedMonitor(rng=rng)
        pop = TagPopulation.create(300, uses_counter=True, rng=rng)
        monitor.add_group(
            "tolerant",
            MonitorRequirement(population=300, tolerance=15, confidence=0.95),
            pop.ids.tolist(),
            alarm_policy=ThresholdAlarmPolicy(tolerance=15),
        )
        pop.remove_random(2, rng)  # well under tolerance
        report = monitor.sweep({"tolerant": SlottedChannel(pop.tags)})
        assert report.all_intact  # the policy kept the pager quiet
