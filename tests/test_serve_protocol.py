"""Tests for the repro.serve/v1 wire protocol (repro.serve.protocol)."""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    Frame,
    MAX_FRAME_BYTES,
    PROTOCOL_SCHEMA,
    ProtocolError,
    array_to_bits,
    bits_to_array,
    decode_body,
    decode_frame,
    encode_frame,
)


def _body(frame: Frame) -> dict:
    """The JSON object a frame puts on the wire."""
    return json.loads(encode_frame(frame)[4:].decode())


class TestRoundTrips:
    @pytest.mark.parametrize(
        "frame",
        [
            protocol.reseed("g0", "trp"),
            protocol.challenge_frame("g0", "trp", 0, 77, [123456789]),
            protocol.challenge_frame(
                "g0", "utrp", 3, 137, list(range(137)), timer_us=137.0
            ),
            protocol.bitstring_frame(
                "g0", 0, np.array([1, 0, 1, 1], dtype=np.uint8), 4.0, 4
            ),
            protocol.verdict_frame("g0", 0, "intact", 77, 0, 77.0, False),
            protocol.error_frame("bad-json", "what even was that"),
        ],
        ids=lambda f: f.type,
    )
    def test_encode_decode_identity(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert decoded.type == frame.type
        # Encoding normalises values (int seeds, float timers); decoding
        # the encoded form must be a fixed point.
        assert decode_frame(encode_frame(decoded)) == decoded

    def test_wire_form_is_length_prefixed_json(self):
        data = encode_frame(protocol.reseed("g0", "trp"))
        length = int.from_bytes(data[:4], "big")
        assert length == len(data) - 4
        body = json.loads(data[4:].decode())
        assert body["v"] == PROTOCOL_SCHEMA
        assert body["type"] == "RESEED"

    def test_trp_challenge_omits_timer(self):
        body = _body(protocol.challenge_frame("g", "trp", 0, 10, [1]))
        assert "timer_us" not in body
        frame = decode_body(json.dumps(body).encode())
        assert frame.get("timer_us") is None

    def test_utrp_challenge_carries_timer(self):
        frame = decode_frame(
            encode_frame(
                protocol.challenge_frame("g", "utrp", 0, 3, [1, 2, 3], 99.0)
            )
        )
        assert frame["timer_us"] == 99.0
        assert frame["seeds"] == [1, 2, 3]


class TestStrictness:
    def _raw(self, body: dict) -> bytes:
        return json.dumps(body).encode()

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"{not json")
        assert err.value.code == "bad-json"

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"[1, 2]")
        assert err.value.code == "bad-json"

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw({"v": "repro.serve/v0", "type": "RESEED",
                           "group": "g", "protocol": "trp"})
            )
        assert err.value.code == "bad-schema"

    def test_missing_schema_tag_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw({"type": "RESEED", "group": "g", "protocol": "trp"})
            )
        assert err.value.code == "bad-schema"

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(self._raw({"v": PROTOCOL_SCHEMA, "type": "GOSSIP"}))
        assert err.value.code == "unknown-type"

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw({"v": PROTOCOL_SCHEMA, "type": "RESEED", "group": "g"})
            )
        assert err.value.code == "missing-field"

    def test_wrong_field_type_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw(
                    {"v": PROTOCOL_SCHEMA, "type": "RESEED",
                     "group": 7, "protocol": "trp"}
                )
            )
        assert err.value.code == "bad-field"

    def test_bool_is_not_an_int(self):
        # JSON true would pass isinstance(_, int); the schema must not.
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw(
                    {"v": PROTOCOL_SCHEMA, "type": "BITSTRING", "group": "g",
                     "round": True, "bits": "01", "elapsed_us": 1.0,
                     "seeds_used": 1}
                )
            )
        assert err.value.code == "bad-field"

    def test_undeclared_extra_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(
                self._raw(
                    {"v": PROTOCOL_SCHEMA, "type": "RESEED", "group": "g",
                     "protocol": "trp", "surprise": 1}
                )
            )
        assert err.value.code == "unknown-field"

    def test_short_buffer_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"\x00\x00")
        assert err.value.code == "truncated"

    def test_length_body_mismatch_rejected(self):
        data = encode_frame(protocol.reseed("g", "trp"))
        with pytest.raises(ProtocolError) as err:
            decode_frame(data[:-1])
        assert err.value.code == "truncated"

    def test_oversize_declaration_rejected(self):
        data = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError) as err:
            decode_frame(data + b"x")
        assert err.value.code == "oversize"

    def test_encode_validates_too(self):
        with pytest.raises(ProtocolError):
            encode_frame(Frame("RESEED", {"group": "g"}))  # missing protocol
        with pytest.raises(ProtocolError):
            encode_frame(Frame("NOPE", {}))


class TestStreamHelpers:
    def _pipe(self):
        reader = asyncio.StreamReader()
        return reader

    def test_read_back_what_was_written(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(protocol.reseed("g", "trp")))
            reader.feed_data(
                encode_frame(protocol.error_frame("bad-json", "x"))
            )
            reader.feed_eof()
            first = await protocol.read_frame(reader)
            second = await protocol.read_frame(reader)
            third = await protocol.read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first.type == "RESEED"
        assert second.type == "ERROR"
        assert third is None  # clean EOF

    def test_eof_mid_prefix_is_truncated(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            await protocol.read_frame(reader)

        with pytest.raises(ProtocolError) as err:
            asyncio.run(scenario())
        assert err.value.code == "truncated"

    def test_eof_mid_body_is_truncated(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(protocol.reseed("g", "trp"))[:-3])
            reader.feed_eof()
            await protocol.read_frame(reader)

        with pytest.raises(ProtocolError) as err:
            asyncio.run(scenario())
        assert err.value.code == "truncated"

    def test_oversize_declaration_read_without_buffering(self):
        async def scenario():
            reader = asyncio.StreamReader()
            # Four prefix bytes declaring 1 GiB; no body ever arrives.
            reader.feed_data((1 << 30).to_bytes(4, "big"))
            await protocol.read_frame(reader, max_bytes=1024)

        with pytest.raises(ProtocolError) as err:
            asyncio.run(scenario())
        assert err.value.code == "oversize"


class TestBitstringCodec:
    def test_round_trip(self):
        bits = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        wire = array_to_bits(bits)
        assert wire == "01101"
        back = bits_to_array(wire)
        assert back.dtype == np.uint8
        np.testing.assert_array_equal(back, bits)

    def test_empty_round_trip(self):
        np.testing.assert_array_equal(
            bits_to_array(array_to_bits(np.array([], dtype=np.uint8))),
            np.array([], dtype=np.uint8),
        )

    def test_non_binary_characters_rejected(self):
        for junk in ("012", "1 0", "ab", "0\n1"):
            with pytest.raises(ProtocolError):
                bits_to_array(junk)
