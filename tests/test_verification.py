"""Unit tests for repro.core.verification — the server's decision rule."""

from repro.core.verification import Verdict, compare_bitstrings
from repro.rfid.bitstring import from_slots, empty_bitstring


class TestCompare:
    def test_match_is_intact(self):
        a = from_slots(6, [1, 3])
        res = compare_bitstrings(a, a.copy(), frame_size=6)
        assert res.verdict is Verdict.INTACT
        assert res.intact
        assert res.mismatched_slots == []

    def test_mismatch_is_not_intact(self):
        expected = from_slots(6, [1, 3])
        observed = from_slots(6, [1])
        res = compare_bitstrings(expected, observed, frame_size=6)
        assert res.verdict is Verdict.NOT_INTACT
        assert res.mismatched_slots == [3]
        assert not res.intact

    def test_extra_bits_also_flagged(self):
        """A 1 where the server expects 0 is just as alarming (ghost
        replies indicate tampering)."""
        expected = from_slots(6, [1])
        observed = from_slots(6, [1, 5])
        res = compare_bitstrings(expected, observed, frame_size=6)
        assert res.verdict is Verdict.NOT_INTACT
        assert res.mismatched_slots == [5]

    def test_wrong_length_is_malformed(self):
        res = compare_bitstrings(empty_bitstring(6), empty_bitstring(5), 6)
        assert res.verdict is Verdict.REJECTED_MALFORMED

    def test_elapsed_recorded(self):
        a = empty_bitstring(4)
        res = compare_bitstrings(a, a.copy(), 4, elapsed=12.5)
        assert res.elapsed == 12.5


class TestVerdict:
    def test_alarm_semantics(self):
        assert not Verdict.INTACT.alarm
        assert Verdict.NOT_INTACT.alarm
        assert Verdict.REJECTED_LATE.alarm
        assert Verdict.REJECTED_MALFORMED.alarm
