"""Tests for repro.obs.metrics — counters, gauges, histograms, registry."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        c = registry.counter("reqs_total")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_rejects_decrement(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = MetricsRegistry().counter("rounds_total", labelnames=("group",))
        c.labels(group="a").inc()
        c.labels(group="a").inc()
        c.labels(group="b").inc()
        assert c.labels(group="a").value == 2
        assert c.labels(group="b").value == 1

    def test_label_mismatch_rejected(self):
        c = MetricsRegistry().counter("x", labelnames=("group",))
        with pytest.raises(ValueError):
            c.labels(zone="a")
        with pytest.raises(ValueError):
            c.inc()  # labelled metric used without labels


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("level")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestHistogram:
    def test_bucket_assignment_inclusive_upper(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 5.0, 99.0):
            h.observe(v)
        series = h.labels()
        # le=1: 0.5, 1.0; le=2: +1.5; le=5: +5.0; +Inf: +99
        assert series.cumulative_counts() == [2, 3, 4, 5]
        assert series.count == 5
        assert series.sum == pytest.approx(107.0)

    def test_empty_series_percentile_is_zero(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert h.percentile(95) == 0.0

    def test_single_sample_percentiles(self):
        h = MetricsRegistry().histogram("h", buckets=(10.0,))
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        assert h.percentile(95) == 7.0

    def test_p95_small_n_matches_numpy(self):
        # n < 20: p95 interpolates between the two top samples; must
        # match np.percentile exactly (the fleet table contract).
        values = [3.0, 1.0, 2.0, 10.0, 4.0]
        h = MetricsRegistry().histogram("h", buckets=DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        assert h.percentile(95) == pytest.approx(
            float(np.percentile(np.asarray(values), 95))
        )

    def test_keep_samples_off_blocks_percentile(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,), keep_samples=False)
        h.observe(0.5)
        with pytest.raises(RuntimeError):
            h.percentile(50)

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("b",))

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9lives", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert [m.name for m in registry.collect()] == ["aa", "zz"]

    def test_digest_tracks_state(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        before = registry.digest()
        c.inc()
        assert registry.digest() != before

    def test_digest_deterministic_across_instances(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("c", labelnames=("g",)).labels(g="a").inc(3)
            h = registry.histogram("h", buckets=(1.0, 10.0))
            h.observe(0.5)
            h.observe(4.0)
            return registry.digest()

        assert build() == build()
