"""Tests for the two-level frame-plan cache (repro.core.plancache)."""

import json
import threading

import pytest

from repro.core import analysis, utrp_analysis
from repro.core.plancache import (
    PLAN_CACHE_SCHEMA,
    PlanCache,
    configure_default_cache,
    default_cache,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Isolate every test from the process-wide default cache."""
    configure_default_cache()
    yield
    configure_default_cache()


class TestMemoryLayer:
    def test_second_lookup_skips_the_solver(self):
        cache = PlanCache()
        calls = []

        def solve():
            calls.append(1)
            return 123

        assert cache._lookup("k", solve) == 123
        assert cache._lookup("k", solve) == 123
        assert len(calls) == 1
        assert cache.stats["misses"] == 1
        assert cache.stats["memory_hits"] == 1

    def test_lru_evicts_oldest(self):
        cache = PlanCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache._lookup(key, lambda: 1)
        assert len(cache) == 2
        cache._lookup("a", lambda: 2)  # 'a' was evicted: re-solved
        assert cache.stats["misses"] == 4

    def test_lru_touch_refreshes_recency(self):
        cache = PlanCache(max_entries=2)
        cache._lookup("a", lambda: 1)
        cache._lookup("b", lambda: 1)
        cache._lookup("a", lambda: 1)  # touch: 'b' is now the oldest
        cache._lookup("c", lambda: 1)
        cache._lookup("a", lambda: 9)  # still cached
        assert cache.stats["memory_hits"] == 2

    def test_clear_memory(self):
        cache = PlanCache()
        cache._lookup("k", lambda: 5)
        cache.clear_memory()
        assert len(cache) == 0
        cache._lookup("k", lambda: 5)
        assert cache.stats["misses"] == 2

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        path = str(tmp_path / "plans.json")
        first = PlanCache(path=path)
        first._lookup("k", lambda: 77)

        second = PlanCache(path=path)
        value = second._lookup("k", lambda: pytest.fail("solver re-ran"))
        assert value == 77
        assert second.stats["disk_hits"] == 1
        # A disk hit is promoted into memory: third lookup is a memory hit.
        second._lookup("k", lambda: pytest.fail("solver re-ran"))
        assert second.stats["memory_hits"] == 1

    def test_file_carries_schema_tag(self, tmp_path):
        path = str(tmp_path / "plans.json")
        PlanCache(path=path)._lookup("k", lambda: 9)
        payload = json.load(open(path))
        assert payload["schema"] == PLAN_CACHE_SCHEMA
        assert payload["entries"] == {"k": 9}

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{not json")
        cache = PlanCache(path=str(path))
        assert cache.stats["disk_errors"] == 1
        assert cache._lookup("k", lambda: 3) == 3  # still functional
        # ... and the rewrite leaves a valid file behind.
        assert json.load(open(path))["entries"] == {"k": 3}

    def test_stale_schema_is_ignored_wholesale(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(
            json.dumps({"schema": "repro.plancache/v0", "entries": {"k": 5}})
        )
        cache = PlanCache(path=str(path))
        assert cache.stats["disk_errors"] == 1
        assert cache._lookup("k", lambda: 8) == 8  # v0 value not trusted

    def test_malformed_entries_are_dropped_individually(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(
            json.dumps(
                {
                    "schema": PLAN_CACHE_SCHEMA,
                    "entries": {"good": 11, "zero": 0, "str": "12", "neg": -3},
                }
            )
        )
        cache = PlanCache(path=str(path))
        assert cache.stats["invalid_entries"] == 3
        assert cache._lookup("good", lambda: pytest.fail("dropped")) == 11

    def test_autosave_off_defers_writes(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(path=str(path), autosave=False)
        cache._lookup("k", lambda: 4)
        assert not path.exists()
        cache.save()
        assert json.load(open(path))["entries"] == {"k": 4}


class TestMetricsBinding:
    def test_live_counters(self):
        cache = PlanCache()
        registry = MetricsRegistry()
        cache.bind_metrics(registry)
        cache._lookup("k", lambda: 1)
        cache._lookup("k", lambda: 1)
        hits = registry.counter(
            "plancache_hits_total",
            "frame-plan cache hits by layer",
            labelnames=("level",),
        )
        misses = registry.counter(
            "plancache_misses_total", "frame plans solved from scratch"
        )
        assert hits.labels(level="memory").value == 1
        assert misses.value == 1

    def test_bind_backfills_prior_traffic(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("garbage")
        cache = PlanCache(path=str(path))
        cache._lookup("k", lambda: 1)
        registry = MetricsRegistry()
        cache.bind_metrics(registry)
        errors = registry.counter(
            "plancache_errors_total",
            "corrupt/stale plan-cache files and entries",
            labelnames=("kind",),
        )
        misses = registry.counter(
            "plancache_misses_total", "frame plans solved from scratch"
        )
        assert errors.labels(kind="disk_errors").value == 1
        assert misses.value == 1


class TestSolverRouting:
    def test_trp_sizing_solves_once(self, monkeypatch):
        calls = []
        real = analysis._solve_trp_frame_size

        def counting(*a, **kw):
            calls.append(a)
            return real(*a, **kw)

        monkeypatch.setattr(analysis, "_solve_trp_frame_size", counting)
        f1 = analysis.optimal_trp_frame_size(200, 10, 0.95)
        f2 = analysis.optimal_trp_frame_size(200, 10, 0.95)
        assert f1 == f2 == real(200, 10, 0.95)
        assert len(calls) == 1

    def test_utrp_sizing_solves_once(self, monkeypatch):
        calls = []

        def fake(*a, **kw):
            calls.append(a)
            return 333

        monkeypatch.setattr(utrp_analysis, "_solve_utrp_frame_size", fake)
        assert utrp_analysis.optimal_utrp_frame_size(200, 10, 0.95, 20) == 333
        assert utrp_analysis.optimal_utrp_frame_size(200, 10, 0.95, 20) == 333
        assert len(calls) == 1

    def test_distinct_parameters_get_distinct_keys(self, monkeypatch):
        monkeypatch.setattr(
            analysis, "_solve_trp_frame_size", lambda n, m, a, e: n + m
        )
        assert analysis.optimal_trp_frame_size(100, 5, 0.95) == 105
        assert analysis.optimal_trp_frame_size(100, 6, 0.95) == 106
        assert (
            analysis.optimal_trp_frame_size(100, 5, 0.95, exact_occupancy=True)
            == 105
        )
        assert default_cache().stats["misses"] == 3

    def test_cache_clear_compat_shim(self):
        f = analysis.optimal_trp_frame_size(150, 5, 0.95)
        analysis.optimal_trp_frame_size.cache_clear()
        assert len(default_cache()) == 0
        assert analysis.optimal_trp_frame_size(150, 5, 0.95) == f
        utrp_analysis.optimal_utrp_frame_size.cache_clear()
        assert len(default_cache()) == 0

    def test_configure_default_cache_swaps_instance(self, tmp_path):
        old = default_cache()
        new = configure_default_cache(path=str(tmp_path / "p.json"))
        assert default_cache() is new
        assert new is not old
        assert new.path is not None


class TestConcurrency:
    def test_parallel_lookups_agree(self):
        cache = PlanCache()
        results = []

        def worker(i):
            results.append(cache._lookup(f"k{i % 4}", lambda: i % 4 + 100))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(32)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 32
        assert len(cache) == 4

class TestDiskRobustness:
    """The disk layer under hostile filesystems: torn writes, garbage,
    and a second writer racing us. The contract is uniform — degrade to
    recompute, never raise."""

    def test_truncated_file_falls_back_to_recompute(self, tmp_path):
        path = tmp_path / "plans.json"
        PlanCache(path=str(path))._lookup("k", lambda: 42)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # torn write
        cache = PlanCache(path=str(path))
        assert cache.stats["disk_errors"] == 1
        assert cache._lookup("k", lambda: 42) == 42  # re-solved, no raise
        assert cache.stats["misses"] == 1
        # The next save heals the file.
        payload = json.load(open(path))
        assert payload["schema"] == PLAN_CACHE_SCHEMA
        assert payload["entries"] == {"k": 42}

    def test_binary_garbage_falls_back_to_recompute(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_bytes(bytes(range(256)))
        cache = PlanCache(path=str(path))
        assert cache.stats["disk_errors"] == 1
        assert cache.trp_frame_size(100, 5, 0.95) >= 100

    def test_truncated_to_empty_falls_back(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("")
        cache = PlanCache(path=str(path))
        assert cache.stats["disk_errors"] == 1
        assert cache._lookup("k", lambda: 7) == 7

    def test_corruption_after_load_does_not_break_save(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(path=str(path))
        cache._lookup("a", lambda: 5)
        path.write_text("{torn")  # someone scribbles between our writes
        cache._lookup("b", lambda: 6)  # autosave replaces the wreck
        assert json.load(open(path))["entries"] == {"a": 5, "b": 6}

    def test_concurrent_second_writer_process(self, tmp_path):
        """Two *processes* autosaving into one path: last writer wins
        per replace, nobody crashes, and the survivor is valid JSON
        every reader can load."""
        import subprocess
        import sys

        path = tmp_path / "plans.json"
        child_src = (
            "from repro.core.plancache import PlanCache\n"
            f"cache = PlanCache(path={str(path)!r})\n"
            "for i in range(40):\n"
            "    cache._lookup(f'child-{i}', lambda: 100)\n"
            "print(cache.stats['misses'])\n"
        )
        child = subprocess.Popen(
            [sys.executable, "-c", child_src],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        parent = PlanCache(path=str(path))
        for i in range(40):
            parent._lookup(f"parent-{i}", lambda: 200)
        out, err = child.communicate(timeout=60)
        assert child.returncode == 0, err
        assert out.strip() == "40"
        # Whoever replaced last, the file is schema-valid and loadable.
        payload = json.load(open(path))
        assert payload["schema"] == PLAN_CACHE_SCHEMA
        assert all(
            isinstance(v, int) and v >= 1
            for v in payload["entries"].values()
        )
        reloaded = PlanCache(path=str(path))
        assert reloaded.stats["disk_errors"] == 0
        assert len(payload["entries"]) >= 40
