"""Tests for the negotiated binary wire framing (repro.serve.wire).

Three layers:

* pure codec round-trips — every frame type, trace envelopes, header
  seqs, the NaN-absent UTRP timer and the packed-bitstring byte layout;
* negotiation edge cases against a live service — fallback to v1,
  unknown future versions, mid-stream framing confusion and truncated
  v2 headers, each landing as a typed error with the server still
  answering fresh connections afterwards;
* the anti-dribble guard — a peer stalling mid-frame is evicted with a
  typed ``idle-read`` error instead of holding its session slot.
"""

import asyncio
import struct

import numpy as np
import pytest

from repro.rfid.channel import SlottedChannel
from repro.serve import (
    MonitoringService,
    ProtocolError,
    ReaderClient,
    SessionConfig,
    WireV1,
    WireV2,
    codec_for,
)
from repro.serve import protocol
from repro.serve.protocol import Frame
from repro.serve.wire import _HEADER, WIRE_MAGIC

POP = 40
SEED = 7


def run(coro):
    return asyncio.run(coro)


def _service(session_config=None, **kwargs) -> MonitoringService:
    svc = MonitoringService(session_config=session_config, **kwargs)
    svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
    return svc


def _channel() -> SlottedChannel:
    population = MonitoringService.build_population_for(
        POP, seed=SEED, counter_tags=True
    )
    return SlottedChannel(population.tags)


def _read_bytes(data: bytes, codec=WireV2) -> Frame:
    """Decode one frame from raw bytes on a fresh in-memory stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await codec.read(reader)

    return run(go())


def _roundtrip(frame: Frame, codec=WireV2) -> Frame:
    return _read_bytes(codec.encode(frame), codec)


def _sample_bits(n: int, seed: int = 3) -> str:
    arr = (np.random.default_rng(seed).random(n) < 0.5).astype(np.uint8)
    return (arr + np.uint8(ord("0"))).tobytes().decode("ascii")


SAMPLE_FRAMES = [
    protocol.reseed("g0", "trp"),
    protocol.challenge_frame("g0", "trp", 3, 57, [123456789]),
    protocol.challenge_frame(
        "g0", "utrp", 0, 61, [2**62 - 1, 0, 17], timer_us=1234.5
    ),
    Frame(
        "BITSTRING",
        {
            "group": "g0",
            "round": 2,
            "bits": _sample_bits(57),
            "elapsed_us": 456.25,
            "seeds_used": 3,
        },
    ),
    protocol.verdict_frame("g0", 4, "not-intact", 57, 3, 789.5, True),
    protocol.error_frame("unknown-group", "no group named 'nope'"),
    protocol.membership_frame("g0", "commission", [1, 2**62], 7),
    protocol.membership_frame(
        "g0", "replace", [10, 11], 3, replacement_ids=[20, 21]
    ),
]


class TestCodecRoundTrips:
    @pytest.mark.parametrize(
        "frame", SAMPLE_FRAMES, ids=lambda f: f.type.lower()
    )
    def test_every_frame_type_roundtrips(self, frame):
        decoded = _roundtrip(frame)
        assert decoded.type == frame.type
        assert dict(decoded.payload) == dict(frame.payload)

    @pytest.mark.parametrize(
        "frame", SAMPLE_FRAMES, ids=lambda f: f.type.lower()
    )
    def test_trace_and_seq_ride_every_type(self, frame):
        envelope = {"id": "trace-1", "span": "span-1", "hop": 2}
        stamped = protocol.with_seq(
            protocol.with_trace(frame, envelope), 41
        )
        decoded = _roundtrip(stamped)
        assert decoded["trace"] == envelope
        assert decoded["seq"] == 41

    def test_absent_utrp_timer_stays_absent(self):
        # NaN is the wire sentinel for "no timer"; it must decode back
        # to a payload *without* the key, not to a NaN value.
        frame = protocol.challenge_frame("g0", "trp", 0, 57, [1])
        assert "timer_us" not in frame.payload
        assert "timer_us" not in _roundtrip(frame).payload

    def test_empty_bitstring_roundtrips(self):
        frame = Frame(
            "BITSTRING",
            {
                "group": "g0",
                "round": 0,
                "bits": "",
                "elapsed_us": 0.0,
                "seeds_used": 0,
            },
        )
        assert _roundtrip(frame)["bits"] == ""

    def test_v1_encoding_strips_seq(self):
        # v1 wire bytes must stay byte-identical to pre-seq builds.
        frame = protocol.reseed("g0", "trp")
        stamped = protocol.with_seq(frame, 9)
        assert WireV1.encode(stamped) == WireV1.encode(frame)

    def test_v2_bitstring_frame_is_at_least_4x_smaller_at_10k(self):
        # The deterministic core of the benchmarks/check_serve_wire.py
        # gate: packed bits shrink the dominant frame >= 4x.
        frame = Frame(
            "BITSTRING",
            {
                "group": "g0",
                "round": 0,
                "bits": _sample_bits(10_000),
                "elapsed_us": 1.0,
                "seeds_used": 1,
            },
        )
        assert len(WireV1.encode(frame)) >= 4 * len(WireV2.encode(frame))

    def test_codec_for_rejects_unknown_versions(self):
        assert codec_for(1) is WireV1
        assert codec_for(2) is WireV2
        with pytest.raises(ProtocolError) as err:
            codec_for(3)
        assert err.value.code == "unsupported-version"

    def test_v2_rejects_hello_frames(self):
        # HELLO is the negotiation bootstrap; it only ever rides v1.
        with pytest.raises(ProtocolError) as err:
            WireV2.encode(protocol.hello_frame([1, 2]))
        assert err.value.code == "unknown-type"


class TestCodecRejections:
    def test_truncated_body_is_typed(self):
        data = WireV2.encode(SAMPLE_FRAMES[1])
        with pytest.raises(ProtocolError) as err:
            _read_bytes(data[:-3])
        assert err.value.code == "truncated"

    def test_truncated_header_is_typed(self):
        with pytest.raises(ProtocolError) as err:
            _read_bytes(WireV2.encode(SAMPLE_FRAMES[0])[:5])
        assert err.value.code == "truncated"

    def test_v1_bytes_on_a_v2_reader_are_version_mismatch(self):
        with pytest.raises(ProtocolError) as err:
            _read_bytes(WireV1.encode(protocol.reseed("g0", "trp")))
        assert err.value.code == "version-mismatch"

    def test_nonzero_pad_byte_is_rejected(self):
        data = bytearray(WireV2.encode(SAMPLE_FRAMES[0]))
        data[3] = 1
        with pytest.raises(ProtocolError) as err:
            _read_bytes(bytes(data))
        assert err.value.code == "bad-field"

    def test_unknown_type_code_is_rejected(self):
        header = _HEADER.pack(WIRE_MAGIC, 9, 0, 0, 0, 0)
        with pytest.raises(ProtocolError) as err:
            _read_bytes(header)
        assert err.value.code == "unknown-type"

    def test_oversize_declaration_is_rejected(self):
        header = _HEADER.pack(WIRE_MAGIC, 1, 0, 0, 0, 2**31)
        with pytest.raises(ProtocolError) as err:
            _read_bytes(header)
        assert err.value.code == "oversize"

    def test_trailing_bytes_are_rejected(self):
        data = bytearray(WireV2.encode(SAMPLE_FRAMES[0]))
        body_len = struct.unpack_from("<I", data, 8)[0]
        struct.pack_into("<I", data, 8, body_len + 2)
        data.extend(b"\x00\x00")
        with pytest.raises(ProtocolError) as err:
            _read_bytes(bytes(data))
        assert err.value.code == "bad-field"


class TestMembershipWire:
    """The additively-negotiated membership family (repro.population).

    Epoch-less traffic must stay byte-identical to pre-population
    builds on both codecs — the epoch is strictly opt-in — while
    MEMBERSHIP frames and epoch-stamped RESEEDs round-trip losslessly.
    """

    @pytest.mark.parametrize("codec", [WireV1, WireV2], ids=["v1", "v2"])
    def test_membership_frame_roundtrips(self, codec):
        for frame in SAMPLE_FRAMES[-2:]:
            decoded = _roundtrip(frame, codec)
            assert decoded.type == "MEMBERSHIP"
            assert dict(decoded.payload) == dict(frame.payload)

    @pytest.mark.parametrize("codec", [WireV1, WireV2], ids=["v1", "v2"])
    def test_epoch_stamped_reseed_roundtrips(self, codec):
        frame = protocol.reseed("g0", "trp", epoch=5)
        decoded = _roundtrip(frame, codec)
        assert decoded["epoch"] == 5

    def test_epoch_none_is_byte_identical_to_pre_population_reseed(self):
        plain = protocol.reseed("g0", "trp")
        assert "epoch" not in plain.payload
        explicit_none = protocol.reseed("g0", "trp", epoch=None)
        for codec in (WireV1, WireV2):
            assert codec.encode(explicit_none) == codec.encode(plain)
        # v2 header: no epoch flag on an epoch-less RESEED
        assert WireV2.encode(plain)[2] & 0x04 == 0

    def test_epoch_flag_on_non_reseed_is_rejected(self):
        data = bytearray(WireV2.encode(SAMPLE_FRAMES[1]))  # a CHALLENGE
        data[2] |= 0x04
        with pytest.raises(ProtocolError) as err:
            _read_bytes(bytes(data))
        assert err.value.code == "bad-field"

    def test_membership_without_replacements_omits_the_field(self):
        frame = protocol.membership_frame("g0", "decommission", [9], 1)
        decoded = _roundtrip(frame)
        assert "replacement_ids" not in decoded.payload

    @pytest.mark.parametrize("wire", [1, 2])
    def test_churn_free_peers_never_exchange_membership_state(self, wire):
        """Negotiation matrix, pre-PR interop: a peer that never churns
        sends epoch-less RESEEDs (byte-identical to pre-population
        builds per the codec pins above) and sees zero membership
        traffic either way."""

        async def scenario():
            async with _service() as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=wire
                ) as c:
                    await c.run_round("g0", "trp")
                    await c.run_round("g0", "utrp")
                    monitor = svc.groups["g0"].monitor
                    return c.known_epochs, monitor

        known, monitor = run(scenario())
        assert known == {}  # nothing observed -> nothing ever pinned
        assert monitor.population_epoch == 0
        assert monitor.membership_log == []


class TestPackedBits:
    def test_pack_unpack_roundtrip(self):
        for n in (0, 1, 7, 8, 9, 57, 10_000):
            bits = _sample_bits(n, seed=n)
            assert protocol.unpack_bits(protocol.pack_bits(bits), n) == bits

    def test_packed_density_is_8x(self):
        assert len(protocol.pack_bits("1" * 8000)) == 1000

    def test_wrong_length_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.unpack_bits(b"\xff", 9)
        assert err.value.code == "bad-field"

    def test_nonzero_padding_is_rejected(self):
        # 3 bits occupy one byte; the 5 padding bits must be zero, so
        # a tampered tail cannot smuggle ambiguous encodings.
        packed = protocol.pack_bits("101")
        with pytest.raises(ProtocolError) as err:
            protocol.unpack_bits(bytes([packed[0] | 0x01]), 3)
        assert err.value.code == "bad-field"

    def test_bits_to_array_rejects_non_binary(self):
        for bad in ("012", "ab", "01\x00", "1⁄0"):
            with pytest.raises(ProtocolError):
                protocol.bits_to_array(bad)


class TestNegotiation:
    def test_v2_client_negotiates_v2(self):
        async def scenario():
            async with _service() as svc:
                client = ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=2
                )
                async with client:
                    outcome = await client.run_round("g0", "trp")
                return client.negotiated_version, outcome

        version, outcome = run(scenario())
        assert version == 2
        assert outcome.verdict == "intact"

    def test_v2_client_falls_back_to_v1_only_server(self):
        async def scenario():
            async with _service(wire_versions=(1,)) as svc:
                client = ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=2
                )
                async with client:
                    outcome = await client.run_round("g0", "trp")
                return client.negotiated_version, outcome

        version, outcome = run(scenario())
        assert version == 1
        assert outcome.verdict == "intact"

    def test_pipelined_client_degrades_to_sequential_on_v1(self):
        async def scenario():
            async with _service(wire_versions=(1,)) as svc:
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    _channel(),
                    wire_version=2,
                    pipeline_depth=2,
                )
                async with client:
                    return await client.run_rounds("g0", 3, "trp")

        outcomes = run(scenario())
        assert [o.round_index for o in outcomes] == [0, 1, 2]

    def test_unknown_future_version_offer_earns_typed_error(self):
        # A raw v99-only HELLO (no v1 in the offer) must earn a
        # recoverable unsupported-version ERROR — and the session must
        # still serve a plain v1 round afterwards.
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(WireV1.encode(protocol.hello_frame([99])))
                await writer.drain()
                reply = await protocol.read_frame(reader)
                writer.write(WireV1.encode(protocol.reseed("g0", "trp")))
                await writer.drain()
                challenge = await protocol.read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return reply, challenge

        reply, challenge = run(scenario())
        assert reply.type == "ERROR"
        assert reply["code"] == "unsupported-version"
        assert challenge.type == "CHALLENGE"

    def test_mixed_offer_with_future_version_negotiates_down(self):
        # [1, 99] shares v1 with the server: negotiation picks it.
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(WireV1.encode(protocol.hello_frame([1, 99])))
                await writer.drain()
                reply = await protocol.read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return reply

        reply = run(scenario())
        assert reply.type == "HELLO"
        assert reply["versions"] == [1]

    def test_negotiations_counted_in_metrics(self):
        from repro.obs import ObsContext, prometheus_text

        obs = ObsContext()

        async def scenario():
            async with _service(obs=obs) as svc:
                client = ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=2
                )
                async with client:
                    await client.run_round("g0", "trp")

        run(scenario())
        text = prometheus_text(obs.registry)
        assert 'serve_wire_negotiations_total{version="2"} 1' in text
        kinds = {e.name for e in obs.bus.events()}
        assert "serve.negotiate" in kinds


class TestFramingConfusion:
    def test_v2_frame_on_v1_session_is_typed_and_survivable(self):
        # A peer that skips HELLO and just starts speaking v2 desyncs
        # the stream: the server answers with a typed ERROR (the 0xF2
        # magic reads as an oversize v1 length prefix), hangs up, and
        # keeps serving fresh connections.
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(WireV2.encode(protocol.reseed("g0", "trp")))
                await writer.drain()
                reply = await protocol.read_frame(reader)
                eof = await reader.read(1)
                writer.close()
                await writer.wait_closed()

                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    outcome = await client.run_round("g0", "trp")
                return reply, eof, outcome

        reply, eof, outcome = run(scenario())
        assert reply.type == "ERROR"
        assert reply["code"] == "oversize"
        assert eof == b""  # the desynced session was hung up
        assert outcome.verdict == "intact"

    def test_truncated_v2_header_then_eof_is_survivable(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(WireV1.encode(protocol.hello_frame([1, 2])))
                await writer.drain()
                hello = await protocol.read_frame(reader)
                writer.write(WireV2.encode(protocol.reseed("g0", "trp"))[:5])
                writer.close()
                await writer.wait_closed()

                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    outcome = await client.run_round("g0", "trp")
                return hello, outcome

        hello, outcome = run(scenario())
        assert hello.type == "HELLO" and hello["versions"] == [2]
        assert outcome.verdict == "intact"

    def test_server_echoes_request_seq_on_v2(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                writer.write(WireV1.encode(protocol.hello_frame([1, 2])))
                await writer.drain()
                await protocol.read_frame(reader)  # HELLO ack
                writer.write(
                    WireV2.encode(
                        protocol.with_seq(protocol.reseed("g0", "trp"), 41)
                    )
                )
                await writer.drain()
                challenge = await WireV2.read(reader)
                writer.close()
                await writer.wait_closed()
                return challenge

        challenge = run(scenario())
        assert challenge.type == "CHALLENGE"
        assert challenge["seq"] == 41

    def test_client_rejects_mismatched_seq(self):
        from repro.serve.client import _RoundState

        client = ReaderClient("127.0.0.1", 1, _channel(), wire_version=2)
        state = _RoundState("g0", "trp")
        state.seq = 3
        frame = protocol.with_seq(
            protocol.challenge_frame("g0", "trp", 0, 57, [1]), 4
        )
        with pytest.raises(ProtocolError) as err:
            client._check_seq(state, frame)
        assert err.value.code == "seq-mismatch"


class TestDribbleGuard:
    def test_mid_frame_stall_is_evicted_with_idle_read(self):
        config = SessionConfig(frame_idle_timeout_s=0.05)

        async def scenario():
            async with _service(session_config=config) as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                # One byte of a length prefix, then silence: the guard
                # must evict rather than hold the slot forever.
                writer.write(b"\x00")
                await writer.drain()
                reply = await protocol.read_frame(reader)
                eof = await reader.read(1)
                writer.close()
                await writer.wait_closed()

                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    outcome = await client.run_round("g0", "trp")
                return reply, eof, outcome

        reply, eof, outcome = run(scenario())
        assert reply.type == "ERROR"
        assert reply["code"] == "idle-read"
        assert eof == b""
        assert outcome.verdict == "intact"

    def test_idle_between_frames_is_not_an_idle_read(self):
        # The guard bites only *inside* a frame; a client thinking
        # between rounds is governed by idle_timeout_s, not this.
        config = SessionConfig(frame_idle_timeout_s=0.05)

        async def scenario():
            async with _service(session_config=config) as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel()
                ) as client:
                    first = await client.run_round("g0", "trp")
                    await asyncio.sleep(0.12)
                    second = await client.run_round("g0", "trp")
                return first, second

        first, second = run(scenario())
        assert (first.round_index, second.round_index) == (0, 1)
