"""Tests for repro.server.provisioning — pre-issued challenge books."""

import numpy as np
import pytest

from repro.server.provisioning import BookVerifier, ChallengeBook
from repro.server.seeds import SeedIssuer


def _issue(count=5, frame=40, seed=0):
    issuer = SeedIssuer(np.random.default_rng(seed))
    return BookVerifier.issue(issuer, frame, count)


class TestChallengeBook:
    def test_consumes_in_order(self):
        book, verifier = _issue()
        first = book.next_challenge()
        second = book.next_challenge()
        assert first == verifier.challenges[0]
        assert second == verifier.challenges[1]

    def test_remaining_and_exhaustion(self):
        book, _ = _issue(count=2)
        assert book.remaining == 2 and not book.exhausted
        book.next_challenge()
        book.next_challenge()
        assert book.exhausted
        with pytest.raises(IndexError):
            book.next_challenge()

    def test_peek_index(self):
        book, _ = _issue()
        assert book.peek_index() == 0
        book.next_challenge()
        assert book.peek_index() == 1

    def test_empty_book_rejected(self):
        with pytest.raises(ValueError):
            ChallengeBook([])


class TestBookVerifier:
    def test_accepts_in_order(self):
        book, verifier = _issue()
        for i in range(3):
            challenge = book.next_challenge()
            assert verifier.accept(i) == challenge

    def test_rejects_replayed_index(self):
        _, verifier = _issue()
        verifier.accept(0)
        with pytest.raises(ValueError):
            verifier.accept(0)

    def test_rejects_skipped_index(self):
        _, verifier = _issue()
        with pytest.raises(ValueError):
            verifier.accept(2)

    def test_remaining(self):
        _, verifier = _issue(count=4)
        verifier.accept(0)
        assert verifier.remaining == 3

    def test_issue_validation(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        with pytest.raises(ValueError):
            BookVerifier.issue(issuer, 40, 0)
        with pytest.raises(ValueError):
            BookVerifier.issue(issuer, 0, 3)

    def test_challenges_all_distinct_seeds(self):
        _, verifier = _issue(count=50)
        seeds = {c.seed for c in verifier.challenges}
        assert len(seeds) == 50


class TestEndToEnd:
    def test_offline_reader_round_trip(self):
        """A disconnected reader works through its book; the server
        verifies each scan against the mirrored challenge."""
        from repro.rfid.channel import SlottedChannel
        from repro.rfid.population import TagPopulation
        from repro.rfid.reader import TrustedReader
        from repro.server.verifier import expected_trp_bitstring

        rng = np.random.default_rng(3)
        pop = TagPopulation.create(30, rng=rng)
        issuer = SeedIssuer(rng)
        book, verifier = BookVerifier.issue(issuer, 45, 4)
        reader = TrustedReader()

        for i in range(4):
            challenge = book.next_challenge()
            scan = reader.scan_trp(
                SlottedChannel(pop.tags), challenge.frame_size, challenge.seed
            )
            accepted = verifier.accept(i)
            expected = expected_trp_bitstring(
                pop.ids, accepted.frame_size, accepted.seed
            )
            assert (scan.bitstring == expected).all()
