"""Tests for repro.adversary.theft."""

import numpy as np
import pytest

from repro.adversary.theft import steal_random_tags, worst_case_theft
from repro.rfid.population import TagPopulation


class TestStealRandomTags:
    def test_partition(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        before = set(pop.ids.tolist())
        outcome = steal_random_tags(pop, 7, rng)
        assert len(outcome.stolen) == 7
        assert len(outcome.remaining) == 23
        assert set(outcome.stolen.ids.tolist()) | set(
            outcome.remaining.ids.tolist()
        ) == before

    def test_mutates_in_place(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        outcome = steal_random_tags(pop, 3, rng)
        assert outcome.remaining is pop
        assert len(pop) == 7

    def test_too_many(self, rng):
        pop = TagPopulation.create(5, rng=rng)
        with pytest.raises(ValueError):
            steal_random_tags(pop, 6, rng)

    def test_stolen_count_property(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        assert steal_random_tags(pop, 4, rng).stolen_count == 4


class TestWorstCase:
    def test_steals_m_plus_one(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        outcome = worst_case_theft(pop, tolerance=5, rng=rng)
        assert outcome.stolen_count == 6

    def test_zero_tolerance_steals_one(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        assert worst_case_theft(pop, 0, rng).stolen_count == 1
