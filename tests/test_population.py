"""Unit tests for repro.rfid.population — the physical set T*."""

import numpy as np
import pytest

from repro.rfid.population import TagPopulation
from repro.rfid.tag import Tag


class TestCreation:
    def test_create_size(self, rng):
        assert len(TagPopulation.create(25, rng=rng)) == 25

    def test_create_unique_ids(self, rng):
        pop = TagPopulation.create(500, rng=rng)
        assert len(np.unique(pop.ids)) == 500

    def test_create_counter_flag(self, rng):
        pop = TagPopulation.create(5, uses_counter=True, rng=rng)
        assert all(t.uses_counter for t in pop)

    def test_create_sequential(self, rng):
        pop = TagPopulation.create(5, rng=rng, sequential=True)
        assert pop.ids.tolist() == [0, 1, 2, 3, 4]

    def test_create_zero(self, rng):
        assert len(TagPopulation.create(0, rng=rng)) == 0

    def test_create_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            TagPopulation.create(-1, rng=rng)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TagPopulation([Tag(1), Tag(1)])


class TestLookup:
    def test_get_present(self, rng):
        pop = TagPopulation.create(5, rng=rng, sequential=True)
        assert pop.get(3).tag_id == 3

    def test_get_absent(self, rng):
        pop = TagPopulation.create(5, rng=rng, sequential=True)
        with pytest.raises(KeyError):
            pop.get(99)

    def test_iteration_yields_tags(self, rng):
        pop = TagPopulation.create(3, rng=rng)
        assert all(isinstance(t, Tag) for t in pop)


class TestRemoval:
    def test_remove_specific(self, rng):
        pop = TagPopulation.create(5, rng=rng, sequential=True)
        taken = pop.remove([1, 3])
        assert sorted(taken.ids.tolist()) == [1, 3]
        assert sorted(pop.ids.tolist()) == [0, 2, 4]

    def test_remove_absent_raises_and_leaves_intact(self, rng):
        pop = TagPopulation.create(5, rng=rng, sequential=True)
        with pytest.raises(KeyError):
            pop.remove([1, 99])
        assert len(pop) == 5

    def test_remove_random_count(self, rng):
        pop = TagPopulation.create(20, rng=rng)
        stolen = pop.remove_random(6, rng)
        assert len(stolen) == 6 and len(pop) == 14

    def test_remove_random_disjoint(self, rng):
        pop = TagPopulation.create(20, rng=rng)
        stolen = pop.remove_random(6, rng)
        assert not set(stolen.ids.tolist()) & set(pop.ids.tolist())

    def test_remove_random_too_many(self, rng):
        pop = TagPopulation.create(3, rng=rng)
        with pytest.raises(ValueError):
            pop.remove_random(4, rng)

    def test_remove_random_is_random(self):
        pop_ids = []
        for seed in range(2):
            pop = TagPopulation.create(50, rng=np.random.default_rng(0))
            stolen = pop.remove_random(5, np.random.default_rng(seed))
            pop_ids.append(tuple(sorted(stolen.ids.tolist())))
        assert pop_ids[0] != pop_ids[1]


class TestSplit:
    def test_split_sizes(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        a, b = pop.split(4)
        assert len(a) == 4 and len(b) == 6
        assert len(pop) == 0  # the original is fully consumed

    def test_split_partition(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        all_ids = set(pop.ids.tolist())
        a, b = pop.split(4)
        assert set(a.ids.tolist()) | set(b.ids.tolist()) == all_ids

    def test_split_bounds(self, rng):
        pop = TagPopulation.create(5, rng=rng)
        with pytest.raises(ValueError):
            pop.split(6)

    def test_split_zero(self, rng):
        pop = TagPopulation.create(5, rng=rng)
        a, b = pop.split(0)
        assert len(a) == 0 and len(b) == 5
