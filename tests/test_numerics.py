"""Unit tests for the shared numeric helpers in repro.core.numerics."""

import numpy as np
import pytest
from scipy import stats

from repro.core.numerics import binom_mass_window


class TestBinomMassWindow:
    def test_window_captures_requested_mass(self):
        for count, p, eps in [
            (100, 0.3, 1e-9),
            (2000, 0.95, 1e-12),
            (50, 0.02, 1e-6),
            (1, 0.5, 1e-4),
        ]:
            lo, hi = binom_mass_window(count, p, eps)
            inside = stats.binom.cdf(hi, count, p) - stats.binom.cdf(
                lo - 1, count, p
            )
            assert inside >= 1.0 - 4 * eps

    def test_bounds_stay_within_support(self):
        lo, hi = binom_mass_window(10, 0.5, 0.2)
        assert 0 <= lo <= hi <= 10

    def test_degenerate_probabilities(self):
        assert binom_mass_window(7, 0.0, 1e-9) == (0, 0)
        assert binom_mass_window(7, -0.5, 1e-9) == (0, 0)
        assert binom_mass_window(7, 1.0, 1e-9) == (7, 7)
        assert binom_mass_window(7, 1.5, 1e-9) == (7, 7)

    def test_zero_count(self):
        assert binom_mass_window(0, 0.4, 1e-9) == (0, 0)

    def test_narrower_eps_widens_window(self):
        tight = binom_mass_window(1000, 0.4, 1e-3)
        wide = binom_mass_window(1000, 0.4, 1e-12)
        assert wide[0] <= tight[0] and wide[1] >= tight[1]
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            binom_mass_window(-1, 0.5, 1e-9)
        with pytest.raises(ValueError):
            binom_mass_window(10, 0.5, 0.0)
        with pytest.raises(ValueError):
            binom_mass_window(10, 0.5, 1.0)

    def test_shared_by_both_analysis_modules(self):
        """The dedup target: one helper, no module-local copies left."""
        import repro.core.analysis as analysis
        import repro.core.utrp_analysis as utrp_analysis

        assert not hasattr(analysis, "_binom_window")
        assert not hasattr(utrp_analysis, "_binom_window")
        assert analysis.binom_mass_window is binom_mass_window
        assert utrp_analysis.binom_mass_window is binom_mass_window

    def test_analysis_results_unchanged_by_dedup(self):
        """Spot-check a Theorem 1 value against direct summation."""
        from repro.core.analysis import detection_probability

        n, x, f = 80, 4, 90
        p = np.exp(-(n - x) / f)
        k = np.arange(0, f + 1)
        pmf = stats.binom.pmf(k, f, p)
        with np.errstate(divide="ignore"):
            escape = np.where(k < f, (1.0 - k / f) ** x, 0.0 if x else 1.0)
        brute = float(np.sum(pmf * (1.0 - escape)))
        assert detection_probability(n, x, f) == pytest.approx(brute, abs=1e-9)
