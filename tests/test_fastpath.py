"""Tests for repro.simulation.fastpath — kernels vs the slow path.

The fast kernels exist purely for speed; every one of them is checked
here against the protocol-level machinery it replaces.
"""

import numpy as np
import pytest

from repro.core.parameters import MonitorRequirement
from repro.core.trp import run_trp_round
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.server.database import TagDatabase
from repro.server.seeds import SeedIssuer
from repro.simulation.fastpath import (
    collect_all_slots_trials,
    trp_detection_trials,
    trp_trial_detected,
    utrp_collusion_detected,
    utrp_collusion_detection_trials,
    utrp_collusion_trial_detected,
)


class TestTrpKernel:
    def test_single_trial_matches_protocol_round(self):
        """Same ids, same theft, same seed → same verdict as the real
        protocol round."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            pop = TagPopulation.create(40, rng=rng)
            ids = pop.ids.copy()
            db = TagDatabase()
            db.register_set(ids.tolist())
            loot = pop.remove_random(4, rng)
            mask = np.isin(ids, loot.ids)
            req = MonitorRequirement(population=40, tolerance=3, confidence=0.95)
            issuer = SeedIssuer(np.random.default_rng(seed + 100))
            report = run_trp_round(
                db, issuer, req, SlottedChannel(pop.tags), frame_size=55
            )
            fast = trp_trial_detected(ids, mask, 55, report.challenge.seed)
            assert fast == (not report.intact)

    def test_no_theft_never_detected(self):
        ids = np.arange(30, dtype=np.uint64)
        mask = np.zeros(30, dtype=bool)
        assert not trp_trial_detected(ids, mask, 40, 123)

    def test_trials_shape_and_rate(self):
        rng = np.random.default_rng(0)
        d = trp_detection_trials(100, 6, 104, 300, rng)
        assert d.shape == (300,)
        assert 0.85 < d.mean() <= 1.0

    def test_fixed_population_mode(self):
        rng = np.random.default_rng(0)
        d = trp_detection_trials(50, 3, 60, 100, rng, resample_population=False)
        assert d.shape == (100,)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            trp_detection_trials(10, 11, 20, 5, rng)
        with pytest.raises(ValueError):
            trp_detection_trials(10, 1, 20, 0, rng)


class TestCollusionKernels:
    def test_fast_matches_slow_on_random_cases(self):
        rng = np.random.default_rng(3)
        for _ in range(60):
            n = int(rng.integers(8, 50))
            stolen_n = int(rng.integers(1, min(7, n - 1)))
            f = int(rng.integers(max(4, n // 2), 2 * n))
            budget = int(rng.integers(0, 12))
            ids = rng.integers(0, 1 << 62, size=n).astype(np.uint64)
            cts = rng.integers(0, 5, size=n).astype(np.int64)
            mask = np.zeros(n, dtype=bool)
            mask[rng.choice(n, stolen_n, replace=False)] = True
            seeds = rng.integers(0, 1 << 62, size=f).tolist()
            fast = utrp_collusion_detected(ids, cts, mask, f, seeds, budget)
            slow = utrp_collusion_trial_detected(ids, cts, mask, f, seeds, budget)
            assert fast == slow

    def test_unlimited_budget_never_detected(self):
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 1 << 62, size=25).astype(np.uint64)
        cts = np.zeros(25, dtype=np.int64)
        mask = np.zeros(25, dtype=bool)
        mask[:5] = True
        seeds = rng.integers(0, 1 << 62, size=40).tolist()
        assert not utrp_collusion_detected(ids, cts, mask, 40, seeds, 10_000)

    def test_trials_rate_above_alpha_at_eq3_frame(self):
        from repro.core.utrp_analysis import optimal_utrp_frame_size

        f = optimal_utrp_frame_size(200, 5, 0.95, 20)
        rng = np.random.default_rng(0)
        d = utrp_collusion_detection_trials(200, 6, f, 20, 150, rng)
        assert d.mean() > 0.88

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            utrp_collusion_detection_trials(10, 0, 20, 5, 10, rng)
        with pytest.raises(ValueError):
            utrp_collusion_detection_trials(10, 10, 20, 5, 10, rng)
        with pytest.raises(ValueError):
            utrp_collusion_detection_trials(10, 2, 20, 5, 0, rng)


class TestCollectAllKernel:
    def test_cost_scale(self):
        rng = np.random.default_rng(1)
        costs = collect_all_slots_trials(100, 5, 10, rng)
        # Dynamic framed ALOHA costs ~ e*n; allow wide tolerance.
        assert 150 < costs.mean() < 400

    def test_missing_within_tolerance(self):
        rng = np.random.default_rng(1)
        costs = collect_all_slots_trials(60, 5, 5, rng, missing=5)
        assert (costs >= 60).all()

    def test_missing_beyond_tolerance_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            collect_all_slots_trials(60, 5, 5, rng, missing=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            collect_all_slots_trials(10, 0, 0, np.random.default_rng(0))
