"""Tests for repro.simulation.rng — seeding discipline."""

import numpy as np

from repro.simulation.rng import derive_seed, generator_for_trial, spawn_generators


class TestSpawn:
    def test_count(self):
        assert len(spawn_generators(1, 5)) == 5

    def test_reproducible(self):
        a = [g.integers(0, 100) for g in spawn_generators(42, 3)]
        b = [g.integers(0, 100) for g in spawn_generators(42, 3)]
        assert a == b

    def test_streams_differ(self):
        draws = [g.integers(0, 1 << 62) for g in spawn_generators(42, 10)]
        assert len(set(int(d) for d in draws)) == 10

    def test_zero(self):
        assert spawn_generators(1, 0) == []

    def test_negative_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            spawn_generators(1, -1)


class TestGeneratorForTrial:
    def test_matches_spawned_stream(self):
        spawned = spawn_generators(7, 5)[3].integers(0, 1 << 62)
        direct = generator_for_trial(7, 3).integers(0, 1 << 62)
        assert int(spawned) == int(direct)

    def test_negative_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            generator_for_trial(7, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_coordinates_matter(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_master_matters(self):
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_fits_in_62_bits(self):
        for coords in [(0,), (1, 2), (9, 9, 9)]:
            assert 0 <= derive_seed(5, *coords) < (1 << 62)
