"""Unit tests for repro.server.database."""

import numpy as np
import pytest

from repro.server.database import TagDatabase, TagRecord


class TestRegistration:
    def test_register_and_size(self):
        db = TagDatabase()
        db.register_set([1, 2, 3])
        assert db.size == 3

    def test_ids_preserved(self):
        db = TagDatabase()
        db.register_set([5, 9, 2])
        assert db.ids.tolist() == [5, 9, 2]

    def test_double_registration_rejected(self):
        db = TagDatabase()
        db.register_set([1])
        with pytest.raises(RuntimeError):
            db.register_set([2])

    def test_duplicates_rejected(self):
        db = TagDatabase()
        with pytest.raises(ValueError):
            db.register_set([1, 1])

    def test_labels(self):
        db = TagDatabase()
        db.register_set([1, 2], labels=["shirt", "shoe"])
        assert db.record(2).label == "shoe"

    def test_label_length_mismatch(self):
        db = TagDatabase()
        with pytest.raises(ValueError):
            db.register_set([1, 2], labels=["only-one"])

    def test_unknown_lookup(self):
        db = TagDatabase()
        db.register_set([1])
        with pytest.raises(KeyError):
            db.record(7)


class TestCounters:
    def test_initially_zero(self):
        db = TagDatabase()
        db.register_set([1, 2])
        assert db.counters.tolist() == [0, 0]

    def test_bump_all(self):
        db = TagDatabase()
        db.register_set([1, 2])
        db.bump_counters(3)
        assert db.counters.tolist() == [3, 3]

    def test_bump_negative_rejected(self):
        db = TagDatabase()
        db.register_set([1])
        with pytest.raises(ValueError):
            db.bump_counters(-1)

    def test_set_counters(self):
        db = TagDatabase()
        db.register_set([1, 2, 3])
        db.set_counters(np.array([4, 5, 6]))
        assert db.counters.tolist() == [4, 5, 6]

    def test_set_counters_shape_checked(self):
        db = TagDatabase()
        db.register_set([1, 2])
        with pytest.raises(ValueError):
            db.set_counters(np.array([1]))

    def test_counters_align_with_ids(self):
        db = TagDatabase()
        db.register_set([10, 20, 30])
        db.set_counters(np.array([1, 2, 3]))
        assert db.record(20).counter == 2


class TestRecord:
    def test_repr_includes_id(self):
        assert "counter=4" in repr(TagRecord(7, 4))
