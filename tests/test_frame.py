"""Unit tests for repro.aloha.frame — frame hashing and statistics."""

import numpy as np
import pytest

from repro.aloha.frame import FrameOutcome, expected_empty_fraction, hash_frame
from repro.rfid.channel import SlotOutcome, SlottedChannel
from repro.rfid.population import TagPopulation


class TestHashFrame:
    def test_slot_counts_sum_to_population(self, rng):
        ids = TagPopulation.create(40, rng=rng).ids
        outcome = hash_frame(ids, 64, 9)
        assert outcome.slot_counts.sum() == 40

    def test_partition_of_slots(self, rng):
        ids = TagPopulation.create(40, rng=rng).ids
        o = hash_frame(ids, 64, 9)
        assert o.empty_slots + o.singleton_slots + o.collision_slots == 64

    def test_matches_channel_simulation(self, rng):
        """The vectorised frame must agree with polling real tags."""
        pop = TagPopulation.create(25, rng=rng)
        channel = SlottedChannel(pop.tags)
        channel.broadcast_seed(30, 77)
        outcome = hash_frame(pop.ids, 30, 77)
        for slot in range(30):
            obs = channel.poll_slot(slot)
            count = int(outcome.slot_counts[slot])
            if count == 0:
                assert obs.outcome is SlotOutcome.EMPTY
            elif count == 1:
                assert obs.outcome is SlotOutcome.SINGLE
            else:
                assert obs.outcome is SlotOutcome.COLLISION

    def test_singleton_ids_are_the_singletons(self, rng):
        ids = TagPopulation.create(20, rng=rng).ids
        outcome = hash_frame(ids, 25, 3)
        from repro.rfid.hashing import slots_for_tags

        slots = slots_for_tags(ids, 3, 25)
        for sid in outcome.singleton_ids.tolist():
            slot = slots[list(ids.tolist()).index(sid)]
            assert outcome.slot_counts[slot] == 1
        assert len(outcome.singleton_ids) == outcome.singleton_slots

    def test_empty_population(self):
        outcome = hash_frame(np.array([], dtype=np.uint64), 5, 1)
        assert outcome.empty_slots == 5
        assert len(outcome.singleton_ids) == 0

    def test_occupancy_bitstring(self, rng):
        ids = TagPopulation.create(10, rng=rng).ids
        outcome = hash_frame(ids, 16, 5)
        bs = outcome.occupancy_bitstring
        assert np.array_equal(bs, (outcome.slot_counts > 0).astype(np.uint8))

    def test_rejects_bad_frame(self):
        with pytest.raises(ValueError):
            hash_frame(np.array([1], dtype=np.uint64), 0, 1)


class TestExpectedEmptyFraction:
    def test_zero_tags_means_all_empty(self):
        assert expected_empty_fraction(0, 10) == 1.0

    def test_decreases_with_tags(self):
        values = [expected_empty_fraction(k, 50) for k in (0, 10, 50, 200)]
        assert values == sorted(values, reverse=True)

    def test_close_to_exponential_for_large_frames(self):
        import math

        exact = expected_empty_fraction(100, 1000)
        approx = math.exp(-100 / 1000)
        assert abs(exact - approx) < 5e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_empty_fraction(5, 0)
        with pytest.raises(ValueError):
            expected_empty_fraction(-1, 5)

    def test_empirical_agreement(self, rng):
        """Measured empty fraction across seeds matches the formula."""
        ids = TagPopulation.create(100, rng=rng).ids
        f = 150
        empties = [hash_frame(ids, f, s).empty_slots / f for s in range(200)]
        assert abs(np.mean(empties) - expected_empty_fraction(100, f)) < 0.01
