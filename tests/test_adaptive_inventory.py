"""Tests for repro.aloha.adaptive — estimate-driven collect-all."""

import numpy as np
import pytest

from repro.aloha.adaptive import simulate_adaptive_collect_all
from repro.rfid.ids import random_tag_ids


class TestCorrectness:
    def test_collects_everything(self):
        ids = random_tag_ids(120, np.random.default_rng(0))
        result = simulate_adaptive_collect_all(ids, np.random.default_rng(1))
        assert sorted(result.collected_ids) == sorted(ids.tolist())

    def test_no_duplicates(self):
        ids = random_tag_ids(80, np.random.default_rng(2))
        result = simulate_adaptive_collect_all(ids, np.random.default_rng(3))
        assert len(result.collected_ids) == len(set(result.collected_ids))

    def test_empty_population_one_probe(self):
        result = simulate_adaptive_collect_all(
            np.array([], dtype=np.uint64), np.random.default_rng(0)
        )
        assert result.collected_ids == []
        assert result.rounds == 1

    def test_single_tag(self):
        ids = np.array([7], dtype=np.uint64)
        result = simulate_adaptive_collect_all(ids, np.random.default_rng(0))
        assert result.collected_ids == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_adaptive_collect_all(
                np.array([1], dtype=np.uint64),
                np.random.default_rng(0),
                initial_frame=0,
            )


class TestCostAndConvergence:
    def test_cost_within_constant_factor_of_informed_baseline(self):
        """Not knowing n costs something, but only a constant factor."""
        from repro.simulation.fastpath import collect_all_slots_trials

        n = 300
        adaptive = np.mean(
            [
                simulate_adaptive_collect_all(
                    random_tag_ids(n, np.random.default_rng(s)),
                    np.random.default_rng(100 + s),
                ).total_slots
                for s in range(15)
            ]
        )
        informed = collect_all_slots_trials(
            n, 0, 15, np.random.default_rng(7)
        ).mean()
        assert adaptive < 2.5 * informed

    def test_estimates_converge_to_population(self):
        """The first post-saturation estimate lands near the truth."""
        n = 400
        ids = random_tag_ids(n, np.random.default_rng(4))
        result = simulate_adaptive_collect_all(
            ids, np.random.default_rng(5), initial_frame=16
        )
        finite = [e for e in result.estimates if np.isfinite(e)]
        assert finite, "estimator never produced a finite estimate"
        # Some early estimate should be within 50% of the outstanding
        # population at that time (coarse: just check the first finite
        # one is the right order of magnitude).
        assert 0.2 * n < finite[0] < 3 * n

    def test_starts_small_and_grows(self):
        """Saturated probes double until the estimator can see."""
        n = 500
        ids = random_tag_ids(n, np.random.default_rng(6))
        result = simulate_adaptive_collect_all(
            ids, np.random.default_rng(7), initial_frame=4
        )
        assert any(np.isinf(e) for e in result.estimates)  # doubling happened
        assert sorted(result.collected_ids) == sorted(ids.tolist())

    def test_generous_initial_frame_converges_fast(self):
        ids = random_tag_ids(100, np.random.default_rng(8))
        result = simulate_adaptive_collect_all(
            ids, np.random.default_rng(9), initial_frame=150
        )
        assert result.rounds < 25
