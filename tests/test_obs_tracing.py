"""Unit tests for repro.obs.tracing — deterministic distributed spans."""

import json

import pytest

from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    derive_span_id,
    format_trace_tree,
    load_span_files,
    merge_spans,
    span_tree_digest,
    trace_id_for,
    write_spans_jsonl,
)


class TestIdentity:
    def test_trace_id_is_deterministic(self):
        assert trace_id_for("g0", 3) == trace_id_for("g0", 3)
        assert trace_id_for("g0", 3) != trace_id_for("g0", 4)
        assert trace_id_for("g0", 3) != trace_id_for("g1", 3)

    def test_namespace_forks_the_universe(self):
        assert trace_id_for("g0", 0) != trace_id_for("g0", 0, namespace="b")

    def test_span_id_is_a_function_of_causal_position(self):
        tid = trace_id_for("g0", 0)
        root = derive_span_id(tid, "reader.round", "")
        child = derive_span_id(tid, "gateway.round", root)
        assert root == derive_span_id(tid, "reader.round", "")
        assert child != root
        assert child != derive_span_id(tid, "serve.round", root)

    def test_context_wire_roundtrip(self):
        ctx = SpanContext("t" * 24, "s" * 16, hop=2)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx
        assert SpanContext.from_wire(None) is None


def _three_hop_trace(group="g0", round_index=0, verdict="intact"):
    """One reader -> gateway -> worker trace recorded on three tracers,
    as three separate processes would."""
    reader = Tracer("reader")
    gateway = Tracer("gateway")
    worker = Tracer("worker:w00")
    tid = trace_id_for(group, round_index)
    root_ctx = SpanContext(tid, derive_span_id(tid, "reader.round", ""), hop=1)
    gw_span = gateway.span(
        "gateway.round", group, round_index, parent=root_ctx, verdict=verdict
    )
    worker.span(
        "serve.round", group, round_index, parent=gw_span.context,
        proto="trp", verdict=verdict,
    )
    reader.span(
        "reader.round", group, round_index, trace_id=tid,
        proto="trp", verdict=verdict,
    )
    return reader, gateway, worker


class TestMergeAndDigest:
    def test_merge_is_canonical_and_hop_ordered(self):
        reader, gateway, worker = _three_hop_trace()
        merged = merge_spans(worker.spans, reader.spans, gateway.spans)
        assert [s.name for s in merged] == [
            "reader.round", "gateway.round", "serve.round",
        ]
        assert [s.hop for s in merged] == [0, 1, 2]
        # Every non-root span parents the previous hop.
        assert merged[1].parent_id == merged[0].span_id
        assert merged[2].parent_id == merged[1].span_id

    def test_merge_dedupes_on_trace_and_span_id(self):
        reader, gateway, worker = _three_hop_trace()
        once = merge_spans(reader.spans, gateway.spans, worker.spans)
        twice = merge_spans(
            reader.spans, gateway.spans, worker.spans, worker.spans
        )
        assert once == twice

    def test_digest_invariant_to_source_split_and_order(self):
        reader, gateway, worker = _three_hop_trace()
        spans = merge_spans(reader.spans, gateway.spans, worker.spans)
        assert span_tree_digest(spans) == span_tree_digest(
            merge_spans(worker.spans, reader.spans, gateway.spans)
        )
        assert span_tree_digest(spans) == span_tree_digest(spans[::-1])

    def test_digest_excludes_process_and_host_noise(self):
        def build(process, latency):
            tracer = Tracer(process)
            tracer.span(
                "reader.round", "g0", 0,
                trace_id=trace_id_for("g0", 0),
                verdict="intact",
                host_fields={"latency_ms": latency},
            )
            return tracer.spans

        assert span_tree_digest(build("worker:w00", 3)) == span_tree_digest(
            build("worker:w03", 99)
        )

    def test_digest_sees_deterministic_fields(self):
        def build(verdict):
            tracer = Tracer()
            tracer.span(
                "reader.round", "g0", 0,
                trace_id=trace_id_for("g0", 0), verdict=verdict,
            )
            return tracer.spans

        assert span_tree_digest(build("intact")) != span_tree_digest(
            build("not-intact")
        )

    def test_root_span_requires_trace_id(self):
        with pytest.raises(ValueError):
            Tracer().span("reader.round", "g0", 0)


class TestFiles:
    def test_jsonl_roundtrip(self, tmp_path):
        reader, gateway, worker = _three_hop_trace()
        spans = merge_spans(reader.spans, gateway.spans, worker.spans)
        path = str(tmp_path / "trace.jsonl")
        digest = write_spans_jsonl(spans, path)
        loaded = load_span_files([path])
        assert merge_spans(loaded) == spans
        assert span_tree_digest(loaded) == digest

    def test_tracer_disk_mirror_appends_per_span(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer("worker:w00", path=path)
        tracer.span(
            "serve.round", "g0", 0, trace_id=trace_id_for("g0", 0)
        )
        tracer.span(
            "serve.round", "g0", 1, trace_id=trace_id_for("g0", 1)
        )
        assert load_span_files([path]) == tracer.spans

    def test_missing_files_are_skipped(self, tmp_path):
        assert load_span_files([str(tmp_path / "never-written.jsonl")]) == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A SIGKILL can tear at most the trailing append."""
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer("worker:w00", path=path)
        span = tracer.span(
            "serve.round", "g0", 0, trace_id=trace_id_for("g0", 0)
        )
        with open(path, "a") as fh:
            fh.write('{"v": "repro.obs.trace/v1", "trace_id": "tr')
        assert load_span_files([path]) == [span]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer(path=path)
        tracer.span("serve.round", "g0", 0, trace_id=trace_id_for("g0", 0))
        with open(path) as fh:
            good = fh.read()
        with open(path, "w") as fh:
            fh.write("{not json}\n" + good)
        with pytest.raises(ValueError, match="spans.jsonl:1"):
            load_span_files([path])

    def test_wrong_schema_tag_raises(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        doc = Span(
            trace_id="t", span_id="s", parent_id="", name="x", hop=0,
            group="g0", round=0,
        ).to_dict()
        doc["v"] = "someone.else/v9"
        with open(path, "w") as fh:
            fh.write(json.dumps(doc) + "\n\n")  # blank tail line too
        with pytest.raises(ValueError, match="schema"):
            load_span_files([path])


class TestTree:
    def test_format_tree_indents_by_hop(self):
        reader, gateway, worker = _three_hop_trace()
        text = format_trace_tree(
            merge_spans(reader.spans, gateway.spans, worker.spans)
        )
        assert "reader.round" in text
        assert "    gateway.round" in text
        assert "      serve.round" in text

    def test_format_tree_caps_traces(self):
        tracer = Tracer()
        for i in range(4):
            tracer.span(
                "reader.round", "g0", i, trace_id=trace_id_for("g0", i)
            )
        text = format_trace_tree(tracer.spans, max_traces=1)
        assert "3 more trace(s)" in text
