"""Tests for the figure-regeneration modules (Figs. 4-7).

Run on a deliberately tiny grid; each test asserts the *claims* the
paper draws from the figure, not absolute values.
"""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7
from repro.experiments.grid import ExperimentGrid

TINY = ExperimentGrid(
    populations=(100, 300),
    tolerances=(5, 10),
    alpha=0.95,
    trials=60,
    cost_trials=4,
    comm_budget=20,
    master_seed=7,
)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(TINY)

    def test_row_count(self, result):
        assert len(result.rows) == 4

    def test_trp_always_cheaper(self, result):
        for row in result.rows:
            assert row.trp_slots < row.collect_all_slots

    def test_gap_grows_with_n(self, result):
        """The paper: 'TRP uses fewer slots, especially when the set
        size is large.'"""
        for m in TINY.tolerances:
            panel = result.panel(m)
            gaps = [r.collect_all_slots - r.trp_slots for r in panel]
            assert gaps == sorted(gaps)

    def test_trp_decreases_with_tolerance(self, result):
        by_m = {m: result.panel(m)[0].trp_slots for m in TINY.tolerances}
        assert by_m[10] < by_m[5]

    def test_formatting(self, result):
        text = fig4.format_result(result)
        assert "Fig. 4" in text and "collect-all slots" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(TINY)

    def test_row_count(self, result):
        assert len(result.rows) == 4

    def test_detection_near_alpha(self, result):
        """True rate is ~alpha by construction; with 60 trials allow a
        wide noise band but catch gross failures."""
        for row in result.rows:
            assert row.detection.rate > 0.85

    def test_frame_sizes_are_eq2(self, result):
        from repro.core.analysis import optimal_trp_frame_size

        for row in result.rows:
            assert row.frame_size == optimal_trp_frame_size(
                row.population, row.tolerance, TINY.alpha
            )

    def test_reproducible(self):
        a = fig5.run(TINY)
        b = fig5.run(TINY)
        assert [r.detection.rate for r in a.rows] == [
            r.detection.rate for r in b.rows
        ]

    def test_formatting(self, result):
        text = fig5.format_result(result)
        assert "Fig. 5" in text and "detect rate" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(TINY)

    def test_utrp_exceeds_trp_everywhere(self, result):
        for row in result.rows:
            assert row.utrp_slots > row.trp_slots

    def test_overhead_is_small_at_scale(self):
        grid = ExperimentGrid(
            populations=(1000, 2000), tolerances=(5,), trials=1, cost_trials=1
        )
        result = fig6.run(grid)
        assert result.max_overhead_fraction < 0.10

    def test_formatting(self, result):
        assert "UTRP slots" in fig6.format_result(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(TINY)

    def test_row_count(self, result):
        assert len(result.rows) == 4

    def test_detection_near_alpha(self, result):
        for row in result.rows:
            assert row.detection.rate > 0.85

    def test_frame_sizes_are_eq3(self, result):
        from repro.core.utrp_analysis import optimal_utrp_frame_size

        for row in result.rows:
            assert row.frame_size == optimal_utrp_frame_size(
                row.population, row.tolerance, TINY.alpha, TINY.comm_budget
            )

    def test_formatting(self, result):
        assert "Fig. 7" in fig7.format_result(result)


class TestFig4Accounting:
    def test_busy_slots_match_known_constants(self):
        """Full frames cost ~e*n; busy slots ~0.632*e*n ~ 1.72n — the
        accounting that reproduces the paper's drawn baseline."""
        grid = ExperimentGrid(
            populations=(1000,), tolerances=(5,), trials=1, cost_trials=10,
            master_seed=99,
        )
        row = fig4.run(grid).rows[0]
        assert 2.4 * 1000 < row.collect_all_slots < 3.0 * 1000
        assert 1.55 * 1000 < row.collect_all_busy_slots < 1.95 * 1000
        # Busy fraction of the frames is the ALOHA occupancy constant.
        fraction = row.collect_all_busy_slots / row.collect_all_slots
        assert 0.58 < fraction < 0.68

    def test_busy_speedup_below_full_speedup(self):
        grid = ExperimentGrid(
            populations=(500,), tolerances=(10,), trials=1, cost_trials=4,
        )
        row = fig4.run(grid).rows[0]
        assert row.busy_speedup < row.speedup
        assert row.busy_speedup > 1.0  # TRP still wins
