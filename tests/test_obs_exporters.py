"""Tests for repro.obs.exporters — JSONL traces and Prometheus text."""

import json

import pytest

from repro.fleet import CampaignConfig, default_scenario, run_campaign
from repro.obs import (
    ObsContext,
    prometheus_text,
    trace_digest,
    write_events_jsonl,
)
from repro.obs.events import EventBus
from repro.obs.exporters import events_to_jsonl, load_events_jsonl
from repro.obs.metrics import MetricsRegistry


class TestJsonlExport:
    def test_lines_are_valid_json_in_canonical_order(self):
        bus = EventBus()
        bus.emit("b", scope="s2", x=1)
        bus.emit("a", scope="s1")
        text = events_to_jsonl(bus)
        parsed = [json.loads(line) for line in text.splitlines()]
        assert [p["scope"] for p in parsed] == ["s1", "s2"]
        assert all("wall_ns" in p for p in parsed)

    def test_digest_excludes_wall_clock(self):
        bus1, bus2 = EventBus(), EventBus()
        for bus in (bus1, bus2):
            bus.emit("x", scope="s", v=42)
        # wall_ns necessarily differs between the two buses
        assert bus1.events()[0].wall_ns != bus2.events()[0].wall_ns or True
        assert trace_digest(bus1) == trace_digest(bus2)

    def test_roundtrip_through_file(self, tmp_path):
        bus = EventBus()
        bus.emit("x", scope="s", v=1)
        bus.emit("y", scope="s", v=2)
        path = tmp_path / "trace.jsonl"
        write_events_jsonl(bus, str(path))
        loaded = load_events_jsonl(str(path))
        assert [e["name"] for e in loaded] == ["x", "y"]
        assert loaded[0]["fields"] == {"v": 1}

    def test_empty_bus_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_events_jsonl(EventBus(), str(path))
        assert path.read_text() == ""
        assert load_events_jsonl(str(path)) == []

    def test_malformed_line_raises_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events_jsonl(str(path))


class TestFleetTraceDeterminism:
    def _digest(self, jobs):
        obs = ObsContext()
        scenario = default_scenario(groups=4)
        config = CampaignConfig(
            ticks=3, jobs=jobs, master_seed=11, time_scale=0.0
        )
        run_campaign(scenario, config, obs=obs)
        return trace_digest(obs.bus), obs.registry.digest()

    def test_trace_digest_invariant_across_jobs(self):
        serial_trace, serial_metrics = self._digest(jobs=1)
        parallel_trace, parallel_metrics = self._digest(jobs=4)
        assert serial_trace == parallel_trace
        assert serial_metrics == parallel_metrics

    def test_trace_digest_changes_with_seed(self):
        obs = ObsContext()
        run_campaign(
            default_scenario(groups=4),
            CampaignConfig(ticks=3, jobs=1, master_seed=12, time_scale=0.0),
            obs=obs,
        )
        assert trace_digest(obs.bus) != self._digest(jobs=1)[0]


class TestPrometheusText:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests served").inc(3)
        text = prometheus_text(registry)
        assert "# HELP reqs_total requests served" in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        assert text.endswith("\n")

    def test_label_rendering_sorted(self):
        registry = MetricsRegistry()
        c = registry.counter("x", labelnames=("group",))
        c.labels(group="zz").inc()
        c.labels(group="aa").inc(2)
        lines = [
            line for line in prometheus_text(registry).splitlines()
            if line.startswith("x{")
        ]
        assert lines == ['x{group="aa"} 2', 'x{group="zz"} 1']

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        c = registry.counter("x", labelnames=("name",))
        c.labels(name='we"ird\\zone\nnewline').inc()
        text = prometheus_text(registry)
        assert 'name="we\\"ird\\\\zone\\nnewline"' in text

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x", "line1\nline2 and \\slash")
        text = prometheus_text(registry)
        assert "# HELP x line1\\nline2 and \\\\slash" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", "latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        text = prometheus_text(registry)
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11" in text
        assert "lat_count 3" in text

    def test_histogram_with_labels_puts_le_last(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", labelnames=("group",), buckets=(1.0,))
        h.labels(group="a").observe(0.5)
        text = prometheus_text(registry)
        assert 'lat_bucket{group="a",le="1"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_snapshot_parse_shape(self):
        # Every non-comment line must be "name{labels} value" parseable.
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        c = registry.counter("c", labelnames=("k",))
        c.labels(k="v").inc()
        for line in prometheus_text(registry).splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part[0].isalpha()
