"""Tests for the serve load generator (repro.serve.loadgen)."""

import json

import pytest

from repro.obs.bench import BENCH_SCHEMA, validate_bench_record
from repro.serve import LoadgenConfig, format_loadgen_result, run_loadgen


class TestConfigValidation:
    def test_rejects_nonpositive_shape(self):
        for kwargs in (
            {"groups": 0},
            {"rounds": 0},
            {"concurrency": 0},
            {"population": 0},
            {"sessions": 0},
            {"arrival_rate": -1.0},
        ):
            with pytest.raises(ValueError):
                LoadgenConfig(**kwargs)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            LoadgenConfig(protocol="quantum")

    def test_utrp_pins_one_session_per_group(self):
        with pytest.raises(ValueError, match="stateful"):
            LoadgenConfig(groups=2, sessions=5, protocol="utrp")

    def test_counter_tags_default_tracks_protocol(self):
        assert LoadgenConfig(protocol="trp").effective_counter_tags is False
        assert LoadgenConfig(protocol="utrp").effective_counter_tags is True
        assert LoadgenConfig(counter_tags=True).effective_counter_tags is True

    def test_rejects_unknown_reader(self):
        with pytest.raises(ValueError):
            LoadgenConfig(reader="chaotic")


class TestSmallCampaigns:
    def test_trp_campaign_clean(self):
        result = run_loadgen(
            LoadgenConfig(
                groups=4, rounds=2, concurrency=4, population=30, seed=3
            )
        )
        assert result.protocol_errors == 0
        assert result.timeouts == 0
        assert result.rounds_completed == 8
        assert result.verdict_counts == {"intact": 8}
        assert result.intact_rounds == 8
        assert result.throughput_rps > 0

    def test_utrp_campaign_clean(self):
        result = run_loadgen(
            LoadgenConfig(
                groups=3, rounds=2, concurrency=3, population=30,
                protocol="utrp", seed=3,
            )
        )
        assert result.protocol_errors == 0
        assert result.verdict_counts == {"intact": 6}

    def test_more_sessions_than_groups_share_groups(self):
        result = run_loadgen(
            LoadgenConfig(
                groups=2, sessions=6, rounds=1, concurrency=6,
                population=30, seed=3,
            )
        )
        assert result.protocol_errors == 0
        assert result.rounds_completed == 6

    def test_open_loop_arrivals(self):
        result = run_loadgen(
            LoadgenConfig(
                groups=3, rounds=1, concurrency=3, population=30,
                arrival_rate=200.0, seed=3,
            )
        )
        assert result.protocol_errors == 0
        assert result.rounds_completed == 3


class TestBenchRecord:
    def test_record_is_schema_valid_and_json_serialisable(self):
        result = run_loadgen(
            LoadgenConfig(groups=2, rounds=2, population=30, seed=5)
        )
        validate_bench_record(result.record)  # raises on violation
        assert result.record["schema"] == BENCH_SCHEMA
        json.dumps(result.record)  # BENCH_serve.json must be writable
        names = [t["name"] for t in result.record["timings"]]
        assert names == ["serve.loadgen.round", "serve.loadgen.campaign"]
        for timing in result.record["timings"]:
            assert timing["kind"] == "serve-loadgen"

    def test_campaign_entry_carries_the_load_shape(self):
        result = run_loadgen(
            LoadgenConfig(
                groups=2, rounds=3, concurrency=2, population=30, seed=5
            )
        )
        campaign = result.record["timings"][1]
        assert campaign["sessions"] == 2
        assert campaign["concurrency"] == 2
        assert campaign["rounds_per_session"] == 3
        assert campaign["protocol"] == "trp"
        assert campaign["protocol_errors"] == 0
        assert campaign["verdicts"] == {"intact": 6}

    def test_round_entry_carries_percentiles(self):
        result = run_loadgen(
            LoadgenConfig(groups=2, rounds=2, population=30, seed=5)
        )
        entry = result.record["timings"][0]
        assert entry["reps"] == 4
        assert 0 <= entry["wall_s_p50"] <= entry["wall_s_p95"]
        assert entry["wall_s_p95"] <= entry["wall_s_p99"]
        assert entry["wall_s_p99"] <= entry["wall_s_max"]

    def test_format_mentions_the_numbers(self):
        result = run_loadgen(
            LoadgenConfig(groups=2, rounds=1, population=30, seed=5)
        )
        text = format_loadgen_result(result)
        assert "rounds completed : 2" in text
        assert "intact=2" in text
        assert "p95" in text


class TestNullReader:
    def test_null_reader_completes_without_scanning(self):
        # The bench's server-side mode: the reader answers instantly
        # with an empty frame, so every round verifies (as not-intact —
        # the server sees every tag missing) without client-side work.
        result = run_loadgen(
            LoadgenConfig(
                groups=2, rounds=2, population=30, seed=3, reader="null"
            )
        )
        assert result.protocol_errors == 0
        assert result.rounds_completed == 4
        assert result.verdict_counts == {"not-intact": 4}


class TestMultiEndpoint:
    """Satellite: one load campaign across several running services,
    round-robined per session, with per-endpoint stats merged back."""

    def _twin_services(self, groups):
        from repro.serve import MonitoringService

        services = [MonitoringService(), MonitoringService()]
        for service in services:
            for i in range(groups):
                service.create_group(
                    f"group-{i:03d}", 30, 2, 0.9, seed=3 + i,
                    counter_tags=False,
                )
        return services

    def test_sessions_round_robin_across_endpoints(self):
        import asyncio

        from repro.serve.loadgen import _run_loadgen_async

        async def scenario():
            a, b = self._twin_services(groups=4)
            async with a, b:
                return await _run_loadgen_async(
                    LoadgenConfig(
                        groups=4, rounds=2, concurrency=4,
                        population=30, seed=3, group_prefix="group",
                    ),
                    None,
                    None,
                    endpoints=[
                        ("127.0.0.1", a.port),
                        ("127.0.0.1", b.port),
                    ],
                )

        result = asyncio.run(scenario())
        assert result.protocol_errors == 0
        assert result.rounds_completed == 8
        assert len(result.per_endpoint) == 2
        # 4 sessions over 2 endpoints: 2 each, stats split evenly and
        # summing back to the campaign totals.
        assert [e["sessions"] for e in result.per_endpoint] == [2, 2]
        assert sum(e["rounds"] for e in result.per_endpoint) == 8
        assert (
            sum(sum(e["verdicts"].values()) for e in result.per_endpoint) == 8
        )
        assert sum(e["protocol_errors"] for e in result.per_endpoint) == 0
        ports = {e["port"] for e in result.per_endpoint}
        assert len(ports) == 2

    def test_record_carries_endpoint_breakdown(self):
        import asyncio

        from repro.serve.loadgen import _run_loadgen_async

        async def scenario():
            a, b = self._twin_services(groups=2)
            async with a, b:
                return await _run_loadgen_async(
                    LoadgenConfig(
                        groups=2, rounds=1, concurrency=2,
                        population=30, seed=3, group_prefix="group",
                    ),
                    None,
                    None,
                    endpoints=[
                        ("127.0.0.1", a.port),
                        ("127.0.0.1", b.port),
                    ],
                )

        result = asyncio.run(scenario())
        validate_bench_record(result.record)
        campaign = result.record["timings"][1]
        assert len(campaign["endpoints"]) == 2
        for entry in campaign["endpoints"]:
            assert entry["host"] == "127.0.0.1"
            assert entry["sessions"] == 1

    def test_host_and_endpoints_are_mutually_exclusive(self):
        from repro.serve.loadgen import run_loadgen as run

        with pytest.raises(ValueError):
            run(
                LoadgenConfig(groups=1, rounds=1, population=30),
                host="127.0.0.1",
                port=1234,
                endpoints=[("127.0.0.1", 1235)],
            )


class TestConcurrencyAtScale:
    def test_hundred_concurrent_sessions_no_errors(self):
        # The acceptance bar: >= 100 concurrent loopback sessions with
        # zero protocol errors. Stateless TRP groups let 100 sessions
        # share 20 groups; concurrency=100 means they are all in
        # flight at once.
        result = run_loadgen(
            LoadgenConfig(
                groups=20,
                sessions=100,
                rounds=1,
                concurrency=100,
                population=25,
                seed=9,
            )
        )
        assert result.protocol_errors == 0
        assert result.timeouts == 0
        assert result.rounds_completed == 100
        assert result.verdict_counts == {"intact": 100}


class TestWireAccounting:
    def test_bytes_per_round_in_result_and_record(self):
        config = LoadgenConfig(
            groups=3, rounds=2, concurrency=3, population=30, seed=5
        )
        result = run_loadgen(config)
        assert result.rounds_completed == 6
        assert result.bytes_sent_total > 0
        assert result.bytes_received_total > 0
        assert result.bytes_per_round == pytest.approx(
            (result.bytes_sent_total + result.bytes_received_total) / 6
        )
        round_entry = next(
            t for t in result.record["timings"]
            if t["name"] == "serve.loadgen.round"
        )
        assert round_entry["bytes_sent_total"] == result.bytes_sent_total
        assert round_entry["bytes_received_total"] == result.bytes_received_total
        assert round_entry["bytes_per_round"] == pytest.approx(
            result.bytes_per_round
        )

    def test_traced_campaign_roots_one_span_per_round(self):
        from repro.obs.tracing import Tracer, span_tree_digest

        def campaign():
            tracer = Tracer("loadgen")
            run_loadgen(
                LoadgenConfig(
                    groups=3, rounds=2, concurrency=3, population=30, seed=5
                ),
                tracer=tracer,
            )
            return tracer.spans

        spans = campaign()
        assert len(spans) == 6
        assert {s.name for s in spans} == {"reader.round"}
        # Same seeded campaign, same causal digest — across runs.
        assert span_tree_digest(spans) == span_tree_digest(campaign())
