"""Tests for repro.simulation.scenarios — prebuilt deployments."""

import numpy as np

from repro.core.parameters import MonitorRequirement
from repro.simulation.scenarios import deploy, deploy_with_collusion, deploy_with_theft


def _req(n=50, m=3):
    return MonitorRequirement(population=n, tolerance=m, confidence=0.95)


class TestDeploy:
    def test_intact_deployment_verifies(self):
        d = deploy(_req(), np.random.default_rng(1))
        assert d.server.check_trp(d.channel).intact
        assert d.server.check_utrp(d.channel).intact

    def test_population_matches_requirement(self):
        d = deploy(_req(70, 5), np.random.default_rng(1))
        assert len(d.population) == 70

    def test_plain_tags_option(self):
        d = deploy(_req(), np.random.default_rng(1), counter_tags=False)
        assert not any(t.uses_counter for t in d.population)


class TestDeployWithTheft:
    def test_default_is_worst_case(self):
        d = deploy_with_theft(_req(50, 3), np.random.default_rng(2))
        assert d.theft is not None
        assert d.theft.stolen_count == 4
        assert len(d.population) == 46

    def test_explicit_theft_size(self):
        d = deploy_with_theft(_req(50, 3), np.random.default_rng(2), stolen=10)
        assert d.theft.stolen_count == 10

    def test_channel_excludes_stolen(self):
        d = deploy_with_theft(_req(50, 3), np.random.default_rng(2))
        channel_ids = {t.tag_id for t in d.channel.tags}
        assert not channel_ids & set(d.theft.stolen.ids.tolist())

    def test_big_theft_detected(self):
        d = deploy_with_theft(_req(50, 3), np.random.default_rng(2), stolen=20)
        assert not d.server.check_trp(d.channel).intact


class TestDeployWithCollusion:
    def test_pair_assembled(self):
        d = deploy_with_collusion(_req(40, 3), np.random.default_rng(3))
        assert d.collusion is not None
        assert d.collusion.budget == 20

    def test_custom_budget(self):
        d = deploy_with_collusion(
            _req(40, 3), np.random.default_rng(3), comm_budget=5
        )
        assert d.collusion.budget == 5
        assert d.server.comm_budget == 5

    def test_attack_round_trip(self):
        """The colluding pair's forged proof goes through the server's
        UTRP check via scan_fn; the verdict is a boolean either way."""
        from repro.rfid.reader import ScanResult

        d = deploy_with_collusion(_req(40, 3), np.random.default_rng(4))

        def attack(challenge):
            forged = d.collusion.scan(challenge.frame_size, list(challenge.seeds))
            return (
                ScanResult(
                    bitstring=forged.bitstring,
                    slots_used=challenge.frame_size,
                    seeds_used=0,
                ),
                0.0,
            )

        report = d.server.check_utrp(d.channel, scan_fn=attack)
        assert report.result.verdict.value in ("intact", "not-intact")
