"""Tests for repro.obs.bench and the obs-facing CLI surface."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA,
    format_bench_record,
    make_bench_record,
    run_bench,
    validate_bench_record,
    write_bench_record,
)


def _timing(**overrides):
    timing = {
        "name": "fastpath.trp_detection_trials",
        "kind": "fastpath-kernel",
        "reps": 3,
        "wall_s_total": 0.3,
        "wall_s_mean": 0.1,
        "wall_s_min": 0.05,
        "wall_s_max": 0.2,
        "sim_air_us_total": 1000.0,
    }
    timing.update(overrides)
    return timing


class TestValidation:
    def test_accepts_well_formed_record(self):
        record = make_bench_record([_timing()], quick=True, created_unix=0.0)
        validate_bench_record(record)  # no raise
        assert record["schema"] == BENCH_SCHEMA

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bench_record([1, 2])

    def test_rejects_wrong_schema(self):
        record = make_bench_record([_timing()], created_unix=0.0)
        record["schema"] = "repro.obs.bench/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_record(record)

    def test_rejects_empty_timings(self):
        record = make_bench_record([_timing()], created_unix=0.0)
        record["timings"] = []
        with pytest.raises(ValueError, match="non-empty"):
            validate_bench_record(record)

    @pytest.mark.parametrize(
        "key", ["name", "kind", "reps", "wall_s_total", "sim_air_us_total"]
    )
    def test_rejects_missing_timing_key(self, key):
        timing = _timing()
        del timing[key]
        with pytest.raises(ValueError, match=f"missing {key!r}"):
            make_bench_record([timing], created_unix=0.0)

    def test_rejects_bool_as_number(self):
        with pytest.raises(ValueError, match="wrong type"):
            make_bench_record(
                [_timing(wall_s_total=True)], created_unix=0.0
            )

    def test_rejects_zero_reps_and_negative_wall(self):
        with pytest.raises(ValueError, match="reps"):
            make_bench_record([_timing(reps=0)], created_unix=0.0)
        with pytest.raises(ValueError, match=">= 0"):
            make_bench_record([_timing(wall_s_min=-1.0)], created_unix=0.0)

    def test_write_validates_before_writing(self, tmp_path):
        path = tmp_path / "bench.json"
        with pytest.raises(ValueError):
            write_bench_record({"schema": BENCH_SCHEMA}, str(path))
        assert not path.exists()


class TestRunBench:
    def test_quick_record_covers_required_kinds(self):
        record = run_bench(quick=True)
        validate_bench_record(record)
        kinds = {t["kind"] for t in record["timings"]}
        assert "fastpath-kernel" in kinds
        assert "fleet-round" in kinds
        names = {t["name"] for t in record["timings"]}
        assert "fastpath.trp_detection_trials" in names
        assert all(t["reps"] >= 1 for t in record["timings"])

    def test_fleet_round_carries_simulated_air_time(self):
        record = run_bench(quick=True)
        fleet = [t for t in record["timings"] if t["kind"] == "fleet-round"]
        assert fleet and fleet[0]["sim_air_us_total"] > 0

    def test_format_renders_every_timing(self):
        record = make_bench_record([_timing()], created_unix=0.0)
        text = format_bench_record(record)
        assert "fastpath.trp_detection_trials" in text
        assert "phase" in text.splitlines()[0]


class TestCli:
    def test_bench_quick_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        record = json.loads(out.read_text())
        validate_bench_record(record)
        assert record["quick"] is True
        assert "perf record written" in capsys.readouterr().out

    def test_fleet_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main([
            "fleet", "--groups", "2", "--rounds", "2", "--seed", "7",
            "--time-scale", "0",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace digest: " in out
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        names = {e["name"] for e in lines}
        assert {"fleet.campaign.begin", "fleet.round", "fleet.campaign.end"} <= names
        prom_text = prom.read_text()
        assert "# TYPE repro_fleet_rounds_completed_total counter" in prom_text

    def test_fleet_trace_digest_matches_across_jobs(self, tmp_path, capsys):
        digests = []
        for jobs in ("1", "3"):
            trace = tmp_path / f"trace-{jobs}.jsonl"
            assert main([
                "fleet", "--groups", "3", "--rounds", "2", "--seed", "5",
                "--jobs", jobs, "--time-scale", "0",
                "--trace-out", str(trace),
            ]) == 0
            out = capsys.readouterr().out
            digest_lines = [
                l for l in out.splitlines() if l.startswith("trace digest: ")
            ]
            assert len(digest_lines) == 1
            digests.append(digest_lines[0])
        assert digests[0] == digests[1]

    def test_fig4_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "fig4.jsonl"
        assert main([
            "fig4", "--trials", "1", "--seed", "3",
            "--trace-out", str(trace),
        ]) == 0
        assert "trace digest: " in capsys.readouterr().out
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        names = [e["name"] for e in lines]
        assert "experiment.row" in names
        assert "experiment.complete" in names
