"""Unit tests for repro.server.seeds — issuance and non-reuse."""

import numpy as np
import pytest

from repro.server.seeds import SeedIssuer


class TestTrpChallenges:
    def test_fields(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.trp_challenge(64)
        assert ch.frame_size == 64
        assert 0 <= ch.seed < (1 << 62)

    def test_never_reuses_a_seed(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        seeds = {issuer.trp_challenge(10).seed for _ in range(2000)}
        assert len(seeds) == 2000

    def test_batch_issuance(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        batch = issuer.trp_challenge_batch(32, 50)
        assert len(batch) == 50
        assert len({c.seed for c in batch}) == 50
        assert all(c.frame_size == 32 for c in batch)

    def test_reproducible_given_rng(self):
        a = SeedIssuer(np.random.default_rng(9)).trp_challenge(10).seed
        b = SeedIssuer(np.random.default_rng(9)).trp_challenge(10).seed
        assert a == b

    def test_rejects_bad_frame(self):
        with pytest.raises(ValueError):
            SeedIssuer().trp_challenge(0)

    def test_issued_count(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        issuer.trp_challenge(5)
        issuer.trp_challenge_batch(5, 4)
        assert issuer.issued_count == 5


class TestUtrpChallenges:
    def test_seed_list_length_equals_frame(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.utrp_challenge(40, timer=100.0)
        assert len(ch.seeds) == 40

    def test_seed_list_all_distinct(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.utrp_challenge(100, timer=100.0)
        assert len(set(ch.seeds)) == 100

    def test_distinct_across_challenges(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        a = issuer.utrp_challenge(30, timer=1.0)
        b = issuer.utrp_challenge(30, timer=1.0)
        assert not set(a.seeds) & set(b.seeds)

    def test_timer_recorded(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        assert issuer.utrp_challenge(5, timer=77.0).timer == 77.0

    def test_validation(self):
        issuer = SeedIssuer()
        with pytest.raises(ValueError):
            issuer.utrp_challenge(0, timer=1.0)
        with pytest.raises(ValueError):
            issuer.utrp_challenge(5, timer=0.0)
