"""Unit tests for repro.server.seeds — issuance and non-reuse."""

import numpy as np
import pytest

from repro.server.seeds import SeedIssuer


class TestTrpChallenges:
    def test_fields(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.trp_challenge(64)
        assert ch.frame_size == 64
        assert 0 <= ch.seed < (1 << 62)

    def test_never_reuses_a_seed(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        seeds = {issuer.trp_challenge(10).seed for _ in range(2000)}
        assert len(seeds) == 2000

    def test_batch_issuance(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        batch = issuer.trp_challenge_batch(32, 50)
        assert len(batch) == 50
        assert len({c.seed for c in batch}) == 50
        assert all(c.frame_size == 32 for c in batch)

    def test_reproducible_given_rng(self):
        a = SeedIssuer(np.random.default_rng(9)).trp_challenge(10).seed
        b = SeedIssuer(np.random.default_rng(9)).trp_challenge(10).seed
        assert a == b

    def test_rejects_bad_frame(self):
        with pytest.raises(ValueError):
            SeedIssuer().trp_challenge(0)

    def test_issued_count(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        issuer.trp_challenge(5)
        issuer.trp_challenge_batch(5, 4)
        assert issuer.issued_count == 5


class TestUtrpChallenges:
    def test_seed_list_length_equals_frame(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.utrp_challenge(40, timer=100.0)
        assert len(ch.seeds) == 40

    def test_seed_list_all_distinct(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        ch = issuer.utrp_challenge(100, timer=100.0)
        assert len(set(ch.seeds)) == 100

    def test_distinct_across_challenges(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        a = issuer.utrp_challenge(30, timer=1.0)
        b = issuer.utrp_challenge(30, timer=1.0)
        assert not set(a.seeds) & set(b.seeds)

    def test_timer_recorded(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        assert issuer.utrp_challenge(5, timer=77.0).timer == 77.0

    def test_validation(self):
        issuer = SeedIssuer()
        with pytest.raises(ValueError):
            issuer.utrp_challenge(0, timer=1.0)
        with pytest.raises(ValueError):
            issuer.utrp_challenge(5, timer=0.0)


class TestTimerFiniteness:
    """A non-finite timer would make Alg. 5's deadline meaningless:
    ``inf`` never expires and ``nan`` poisons every comparison. The
    issuer rejects both at the source."""

    def test_infinite_timer_rejected(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        with pytest.raises(ValueError, match="finite"):
            issuer.utrp_challenge(5, timer=float("inf"))

    def test_negative_infinite_timer_rejected(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        with pytest.raises(ValueError, match="finite"):
            issuer.utrp_challenge(5, timer=float("-inf"))

    def test_nan_timer_rejected(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        with pytest.raises(ValueError, match="finite"):
            issuer.utrp_challenge(5, timer=float("nan"))

    def test_rejection_consumes_no_seeds(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        before = issuer.issued_count
        with pytest.raises(ValueError):
            issuer.utrp_challenge(5, timer=float("nan"))
        assert issuer.issued_count == before
        # ... so the seed sequence is unchanged for the next round.
        witness = SeedIssuer(np.random.default_rng(0))
        assert issuer.utrp_challenge(5, timer=1.0).seeds == (
            witness.utrp_challenge(5, timer=1.0).seeds
        )

    def test_finite_timer_still_accepted(self):
        issuer = SeedIssuer(np.random.default_rng(0))
        assert issuer.utrp_challenge(5, timer=2.5).timer == 2.5
