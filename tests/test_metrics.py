"""Tests for repro.simulation.metrics — proportion summaries."""

import numpy as np
import pytest

from repro.simulation.metrics import (
    summarize_detections,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(80, 100)
        assert lo < 0.8 < hi

    def test_bounded_by_unit_interval(self):
        for s, t in [(0, 10), (10, 10), (999, 1000)]:
            lo, hi = wilson_interval(s, t)
            assert 0.0 <= lo <= hi <= 1.0

    def test_narrows_with_sample_size(self):
        small = wilson_interval(9, 10)
        large = wilson_interval(900, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and hi > 0.0

    def test_all_successes(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == 1.0 and lo < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)


class TestSummarize:
    def test_rate(self):
        s = summarize_detections([True, True, False, True])
        assert s.rate == 0.75
        assert s.trials == 4

    def test_ci_ordered(self):
        s = summarize_detections([True] * 90 + [False] * 10)
        assert s.ci_low <= s.rate <= s.ci_high

    def test_exceeds(self):
        s = summarize_detections([True] * 96 + [False] * 4)
        assert s.exceeds(0.95)
        assert not s.exceeds(0.97)

    def test_confidently_exceeds_is_stricter(self):
        s = summarize_detections([True] * 96 + [False] * 4)
        assert s.exceeds(0.95)
        assert not s.confidently_exceeds(0.95)
        big = summarize_detections([True] * 9900 + [False] * 100)
        assert big.confidently_exceeds(0.95)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_detections([])

    def test_accepts_numpy_array(self):
        s = summarize_detections(np.array([True, False]))
        assert s.rate == 0.5
