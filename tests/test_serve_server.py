"""Loopback tests for the asyncio monitoring service (repro.serve)."""

import asyncio

import pytest

from repro.rfid.channel import SlottedChannel
from repro.serve import (
    MonitoringService,
    ProtocolError,
    ReaderClient,
    SessionConfig,
    protocol,
)

POP = 40
SEED = 7


def _service(session_config=None, **kwargs) -> MonitoringService:
    svc = MonitoringService(session_config=session_config, **kwargs)
    svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
    return svc


def _channel(missing: int = 0) -> SlottedChannel:
    population = MonitoringService.build_population_for(
        POP, seed=SEED, counter_tags=True
    )
    if missing:
        population.remove_random(missing)
    return SlottedChannel(population.tags)


def run(coro):
    return asyncio.run(coro)


class TestRounds:
    def test_trp_intact(self):
        async def scenario():
            async with _service() as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    return await c.run_round("g0", "trp")

        outcome = run(scenario())
        assert outcome.verdict == "intact"
        assert outcome.alarm is False
        assert outcome.mismatched_slots == 0

    def test_trp_theft_not_intact_and_alarmed(self):
        async def scenario():
            async with _service() as svc:
                ch = _channel(missing=5)
                async with ReaderClient("127.0.0.1", svc.port, ch) as c:
                    outcome = await c.run_round("g0", "trp")
                group = svc.groups["g0"]
                return outcome, group.monitor.alerts

        outcome, alerts = run(scenario())
        assert outcome.verdict == "not-intact"
        assert outcome.alarm is True
        assert outcome.mismatched_slots > 0
        assert len(alerts) == 1  # the operator was paged server-side

    def test_utrp_intact(self):
        async def scenario():
            async with _service() as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    return await c.run_round("g0", "utrp")

        outcome = run(scenario())
        assert outcome.verdict == "intact"

    def test_round_indices_increment_across_sessions(self):
        async def scenario():
            async with _service() as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    first = await c.run_round("g0", "trp")
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    second = await c.run_round("g0", "trp")
                return first, second

        first, second = run(scenario())
        assert (first.round_index, second.round_index) == (0, 1)

    def test_reports_accumulate_on_the_group(self):
        async def scenario():
            async with _service() as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    await c.run_rounds("g0", 3, "trp")
                return len(svc.groups["g0"].reports)

        assert run(scenario()) == 3


class TestTimerEnforcement:
    def test_slow_utrp_reader_is_rejected_late(self):
        # The reader's reported air time exceeds the challenge timer by
        # one microsecond: Theorem 5 says reject, alarm.
        async def scenario():
            async with _service() as svc:
                client = ReaderClient(
                    "127.0.0.1", svc.port, _channel(), extra_delay_us=1.0
                )
                async with client:
                    outcome = await client.run_round("g0", "utrp")
                return outcome, svc.groups["g0"].monitor.alerts

        outcome, alerts = run(scenario())
        assert outcome.verdict == "rejected-late"
        assert outcome.alarm is True
        assert len(alerts) == 1

    def test_wall_clock_enforcement_with_injected_clock(self):
        # The injectable clock advances a full simulated second between
        # challenge and proof; under wall enforcement that dwarfs the
        # timer, whatever the reader *claims* its air time was.
        ticks = iter([0.0, 1.0, 1.0, 1.0])
        config = SessionConfig(wall_us_per_s=1.0e6, clock=lambda: next(ticks))

        async def scenario():
            async with _service(session_config=config) as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    return await c.run_round("g0", "utrp")

        outcome = run(scenario())
        assert outcome.verdict == "rejected-late"

    def test_silent_reader_gets_deadline_verdict(self):
        # RESEED, then never send the proof: the server's deadline
        # fires and an unprompted rejected-late VERDICT comes back.
        config = SessionConfig(reply_timeout_s=0.05)

        async def scenario():
            async with _service(session_config=config) as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(writer, protocol.reseed("g0", "utrp"))
                challenge = await protocol.read_frame(reader)
                verdict = await protocol.read_frame(reader)
                writer.close()
                group = svc.groups["g0"]
                return challenge, verdict, group.monitor.alerts, group.reports

        challenge, verdict, alerts, reports = run(scenario())
        assert challenge.type == "CHALLENGE"
        assert verdict.type == "VERDICT"
        assert verdict["verdict"] == "rejected-late"
        assert verdict["alarm"] is True
        assert len(alerts) == 1
        # No bitstring ever arrived: nothing to append as a report, and
        # the counter mirror must not have been advanced.
        assert reports == []

    def test_counters_not_committed_on_pure_timeout(self):
        # After a pure timeout the mirror is unchanged, so an honest
        # reader's next UTRP round still verifies intact.
        config = SessionConfig(reply_timeout_s=0.05)

        async def scenario():
            async with _service(session_config=config) as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(writer, protocol.reseed("g0", "utrp"))
                await protocol.read_frame(reader)  # CHALLENGE
                await protocol.read_frame(reader)  # deadline VERDICT
                writer.close()
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    return await c.run_round("g0", "utrp")

        assert run(scenario()).verdict == "intact"


class TestDegradation:
    def test_unknown_group_is_recoverable(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(
                    writer, protocol.reseed("nope", "trp")
                )
                error = await protocol.read_frame(reader)
                # Same connection, valid request: the session recovered.
                ch = _channel()
                client = ReaderClient("127.0.0.1", svc.port, ch)
                client._stream = (reader, writer)
                outcome = await client.run_round("g0", "trp")
                await client.close()
                return error, outcome

        error, outcome = run(scenario())
        assert error.type == "ERROR"
        assert error["code"] == "unknown-group"
        assert outcome.verdict == "intact"

    def test_bad_protocol_name_is_recoverable(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(
                    writer, protocol.reseed("g0", "quantum")
                )
                error = await protocol.read_frame(reader)
                writer.close()
                return error

        error = run(scenario())
        assert error["code"] == "bad-field"

    def test_unexpected_bitstring_is_recoverable(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                import numpy as np

                await protocol.write_frame(
                    writer,
                    protocol.bitstring_frame(
                        "g0", 0, np.array([1], dtype=np.uint8), 1.0, 1
                    ),
                )
                error = await protocol.read_frame(reader)
                writer.close()
                return error

        error = run(scenario())
        assert error["code"] == "unexpected-frame"

    def test_malformed_body_closes_that_session_only(self):
        async def scenario():
            async with _service() as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                body = b"{definitely not json"
                writer.write(len(body).to_bytes(4, "big") + body)
                await writer.drain()
                error = await protocol.read_frame(reader)
                eof = await protocol.read_frame(reader)  # server hung up
                writer.close()
                # The service survives: a fresh session still works.
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    outcome = await c.run_round("g0", "trp")
                return error, eof, outcome

        error, eof, outcome = run(scenario())
        assert error.type == "ERROR"
        assert error["code"] == "bad-json"
        assert eof is None
        assert outcome.verdict == "intact"

    def test_error_budget_evicts_repeat_offenders(self):
        config = SessionConfig(max_errors=2)

        async def scenario():
            async with _service(session_config=config) as svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                for _ in range(2):
                    await protocol.write_frame(
                        writer, protocol.reseed("nope", "trp")
                    )
                    frame = await protocol.read_frame(reader)
                    assert frame["code"] == "unknown-group"
                eof = await protocol.read_frame(reader)
                writer.close()
                return eof

        assert run(scenario()) is None  # evicted after the budget

    def test_client_raises_on_error_reply(self):
        async def scenario():
            async with _service() as svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    await c.run_round("missing-group", "trp")

        with pytest.raises(ProtocolError) as err:
            run(scenario())
        assert err.value.code == "unknown-group"


class TestBackpressure:
    def test_server_busy_refusal(self):
        async def scenario():
            async with _service(max_sessions=1) as svc:
                first_reader, first_writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                # Nudge the accept loop so the first session registers.
                await asyncio.sleep(0.01)
                second_reader, second_writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                refusal = await protocol.read_frame(second_reader)
                eof = await protocol.read_frame(second_reader)
                first_writer.close()
                second_writer.close()
                return refusal, eof, svc.sessions_refused

        refusal, eof, refused = run(scenario())
        assert refusal.type == "ERROR"
        assert refusal["code"] == "server-busy"
        assert eof is None
        assert refused == 1

    def test_inflight_semaphore_serialises_rounds(self):
        # With max_inflight=1, two concurrent clients on two groups
        # still both complete (they just take turns).
        async def scenario():
            svc = MonitoringService(max_inflight=1)
            svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
            svc.create_group("g1", POP, 2, 0.9, seed=SEED + 1, counter_tags=True)
            async with svc:
                async def one(group, seed):
                    population = MonitoringService.build_population_for(
                        POP, seed=seed, counter_tags=True
                    )
                    ch = SlottedChannel(population.tags)
                    async with ReaderClient("127.0.0.1", svc.port, ch) as c:
                        return await c.run_rounds(group, 2, "trp")

                results = await asyncio.gather(
                    one("g0", SEED), one("g1", SEED + 1)
                )
            return [o.verdict for outcomes in results for o in outcomes]

        assert run(scenario()) == ["intact"] * 4


class TestObsWiring:
    def test_metrics_and_events_are_published(self):
        from repro.obs import ObsContext

        obs = ObsContext()

        async def scenario():
            svc = MonitoringService(obs=obs)
            svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                async with ReaderClient("127.0.0.1", svc.port, _channel()) as c:
                    await c.run_round("g0", "trp")

        run(scenario())
        from repro.obs import prometheus_text

        text = prometheus_text(obs.registry)
        assert "serve_sessions_total" in text
        assert "serve_frames_total" in text
        assert 'verdict="intact"' in text
        kinds = {e.name for e in obs.bus.events()}
        assert "serve.session.open" in kinds
        assert "serve.verdict" in kinds
