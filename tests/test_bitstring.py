"""Unit tests for repro.rfid.bitstring helpers."""

import numpy as np
import pytest

from repro.rfid.bitstring import (
    bitstrings_equal,
    bitwise_or,
    differing_slots,
    empty_bitstring,
    format_bitstring,
    from_slots,
)


class TestConstruction:
    def test_empty_all_zero(self):
        bs = empty_bitstring(10)
        assert bs.dtype == np.uint8
        assert bs.sum() == 0 and len(bs) == 10

    def test_empty_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            empty_bitstring(0)

    def test_from_slots(self):
        bs = from_slots(6, [1, 4, 4])
        assert bs.tolist() == [0, 1, 0, 0, 1, 0]

    def test_from_slots_empty_iterable(self):
        assert from_slots(3, []).tolist() == [0, 0, 0]

    def test_from_slots_out_of_range(self):
        with pytest.raises(ValueError):
            from_slots(3, [3])
        with pytest.raises(ValueError):
            from_slots(3, [-1])


class TestComparison:
    def test_equal(self):
        assert bitstrings_equal(from_slots(4, [1]), from_slots(4, [1]))

    def test_unequal_content(self):
        assert not bitstrings_equal(from_slots(4, [1]), from_slots(4, [2]))

    def test_unequal_length(self):
        assert not bitstrings_equal(empty_bitstring(3), empty_bitstring(4))

    def test_differing_slots(self):
        diff = differing_slots(from_slots(5, [0, 2]), from_slots(5, [0, 3]))
        assert diff == [2, 3]

    def test_differing_slots_length_mismatch(self):
        with pytest.raises(ValueError):
            differing_slots(empty_bitstring(3), empty_bitstring(4))

    def test_no_difference(self):
        assert differing_slots(from_slots(5, [1]), from_slots(5, [1])) == []


class TestMerge:
    def test_bitwise_or(self):
        merged = bitwise_or(from_slots(4, [0]), from_slots(4, [2]))
        assert merged.tolist() == [1, 0, 1, 0]

    def test_or_is_idempotent(self):
        bs = from_slots(4, [1, 3])
        assert bitstrings_equal(bitwise_or(bs, bs), bs)

    def test_or_length_mismatch(self):
        with pytest.raises(ValueError):
            bitwise_or(empty_bitstring(3), empty_bitstring(4))


class TestFormat:
    def test_grouping(self):
        text = format_bitstring(from_slots(10, [0, 9]), group=4)
        assert text == "1000 0000 01"

    def test_round_trip_content(self):
        bs = from_slots(12, [2, 5, 11])
        flat = format_bitstring(bs, group=100)
        assert [int(c) for c in flat] == bs.tolist()
