"""repro.population: registry lifecycle, plan maintenance, churn plans.

The tentpole claims pinned here:

* every membership mutation bumps the epoch by exactly one and the
  registry round-trips (JSON and delta replication) digest-identically;
* incremental plan maintenance is *correct* — ``k`` single-tag deltas
  land on exactly the plan a from-scratch rebuild computes at the final
  population, for every op mix — and *cheap* — the delta path beats a
  full Eq. 2 solve by well over an order of magnitude at ``n`` = 10k;
* a membership change can never be served a stale cached plan: the
  plan-cache key derives from ``(n, m, alpha)``, and ``n`` moves with
  the epoch.
"""

import json
import time

import pytest

from repro.core import analysis
from repro.core.plancache import PlanCache
from repro.population import (
    CHURN_PLAN_SCHEMA,
    MEMBERSHIP_OPS,
    ChurnEvent,
    ChurnPlan,
    MembershipDelta,
    PlanMaintainer,
    PopulationRegistry,
)


def _seeded(n=8):
    reg = PopulationRegistry()
    reg.seed(range(1, n + 1))
    return reg


# ----------------------------------------------------------------------
# registry lifecycle
# ----------------------------------------------------------------------


class TestRegistryLifecycle:
    def test_seed_is_epoch_zero(self):
        reg = _seeded()
        assert reg.epoch == 0
        assert reg.size == 8
        assert sorted(reg.active_ids) == list(range(1, 9))
        with pytest.raises(RuntimeError):
            reg.seed([99])

    def test_each_op_bumps_epoch_once(self):
        reg = _seeded()
        reg.commission([100, 101])
        assert reg.epoch == 1
        reg.decommission([1])
        assert reg.epoch == 2
        reg.replace([2, 3], [200, 300])
        assert reg.epoch == 3
        assert reg.size == 8 + 2 - 1  # replace preserves n
        assert 200 in reg and 2 not in reg

    def test_records_keep_lifecycle_history(self):
        reg = _seeded()
        reg.replace([1], [500], labels=["fresh"])
        old, new = reg.record(1), reg.record(500)
        assert not old.active and old.replaced_by == 500
        assert old.decommissioned_epoch == 1
        assert new.active and new.commissioned_epoch == 1
        assert new.label == "fresh"

    def test_replace_inherits_label(self):
        reg = PopulationRegistry()
        reg.seed([1, 2], labels=["shelf-a", None])
        reg.replace([1], [10])
        assert reg.record(10).label == "shelf-a"

    def test_invalid_ops_leave_state_untouched(self):
        reg = _seeded()
        with pytest.raises(ValueError):
            reg.commission([1])  # already active
        with pytest.raises(KeyError):
            reg.decommission([999])  # never seen
        with pytest.raises(ValueError):
            reg.replace([1], [1])  # self-replacement
        with pytest.raises(ValueError):
            reg.replace([1, 2], [100])  # arity mismatch
        with pytest.raises(ValueError):
            reg.commission([5, 5])  # duplicates
        assert reg.epoch == 0 and reg.size == 8

    def test_decommissioned_tag_cannot_retire_twice(self):
        reg = _seeded()
        reg.decommission([1])
        with pytest.raises(ValueError):
            reg.decommission([1])


# ----------------------------------------------------------------------
# persistence, replication, digests
# ----------------------------------------------------------------------


class TestRegistryPersistence:
    def test_json_round_trip(self):
        reg = _seeded()
        reg.commission([50], labels=["dock"])
        reg.replace([1], [60])
        doc = json.loads(json.dumps(reg.to_json()))
        clone = PopulationRegistry.from_json(doc)
        assert clone.epoch == reg.epoch
        assert sorted(clone.active_ids) == sorted(reg.active_ids)
        assert clone.epoch_digest() == reg.epoch_digest()
        assert [d.to_dict() for d in clone.history] == [
            d.to_dict() for d in reg.history
        ]

    def test_schema_is_required(self):
        with pytest.raises(ValueError):
            PopulationRegistry.from_json({"epoch": 0})
        doc = _seeded().to_json()
        doc["schema"] = "something/else"
        with pytest.raises(ValueError):
            PopulationRegistry.from_json(doc)

    def test_delta_replication_matches_native_mutation(self):
        primary = _seeded()
        replica = _seeded()
        primary.commission([70, 71])
        primary.decommission([2])
        primary.replace([3], [80])
        for delta in primary.history:
            replica.apply(MembershipDelta.from_dict(delta.to_dict()))
        assert replica.epoch == primary.epoch == 3
        assert replica.epoch_digest() == primary.epoch_digest()

    def test_out_of_sequence_delta_rejected(self):
        reg = _seeded()
        delta = MembershipDelta(epoch=5, op="commission", tag_ids=(90,))
        with pytest.raises(ValueError):
            reg.apply(delta)

    def test_digest_distinguishes_epochs_and_membership(self):
        a, b = _seeded(), _seeded()
        assert a.epoch_digest() == b.epoch_digest()
        a.commission([100])
        assert a.epoch_digest() != b.epoch_digest()
        b.commission([100])
        assert a.epoch_digest() == b.epoch_digest()


# ----------------------------------------------------------------------
# incremental plan maintenance
# ----------------------------------------------------------------------


class TestPlanMaintainer:
    @pytest.mark.parametrize("mix", MEMBERSHIP_OPS + ("mixed",))
    def test_k_deltas_equal_from_scratch_rebuild(self, mix):
        """The incremental-maintenance correctness property.

        Whatever the op mix, after k single-tag deltas the maintained
        plan is exactly what a cold maintainer computes at the final
        population — same (n, m, alpha) in, same frame sizes out.
        """
        maintainer = PlanMaintainer(5, 0.95, comm_budget=10)
        n = 400
        maintainer.plan_for(n)
        for k in range(60):
            op = MEMBERSHIP_OPS[k % 3] if mix == "mixed" else mix
            if op == "commission":
                n += 1
            elif op == "decommission":
                n -= 1
            maintainer.apply_delta(op, 1, n)
        rebuilt = PlanMaintainer(5, 0.95, comm_budget=10).plan_for(n)
        assert maintainer.current == rebuilt
        assert maintainer.stats["deltas_applied"] == 60

    def test_replace_is_a_guaranteed_plan_reuse(self):
        maintainer = PlanMaintainer(2, 0.9)
        maintainer.plan_for(100)
        before = dict(maintainer.stats)
        plan = maintainer.apply_delta("replace", 1, 100)
        assert plan is maintainer.current
        assert maintainer.stats["replans"] == before["replans"]
        assert maintainer.stats["plan_reuses"] == before["plan_reuses"] + 1

    def test_oscillating_population_replans_once_per_size(self):
        maintainer = PlanMaintainer(2, 0.9)
        maintainer.plan_for(100)
        for _ in range(10):
            maintainer.apply_delta("commission", 1, 101)
            maintainer.apply_delta("decommission", 1, 100)
        # 100 and 101 each solved once; the other 19 visits were memos.
        assert maintainer.stats["replans"] == 2
        assert maintainer.stats["plan_reuses"] == 19

    def test_population_at_or_below_tolerance_rejected(self):
        maintainer = PlanMaintainer(5, 0.9)
        with pytest.raises(ValueError):
            maintainer.plan_for(5)

    def test_delta_path_beats_full_replan_by_10x(self):
        """The incremental-maintenance cost claim at n = 10k.

        A replace delta is a dict probe; a full re-plan is Eq. 2's
        bracketed binary search. Medians over enough reps to be robust
        on a noisy CI host must differ by >= 10x (in practice it is
        thousands).
        """
        n = 10_000
        maintainer = PlanMaintainer(10, 0.95)
        maintainer.plan_for(n)

        reps = 200
        t0 = time.perf_counter()
        for _ in range(reps):
            maintainer.apply_delta("replace", 1, n)
        delta_s = (time.perf_counter() - t0) / reps

        solves = 3
        t0 = time.perf_counter()
        for _ in range(solves):
            analysis._solve_trp_frame_size(n, 10, 0.95)
        solve_s = (time.perf_counter() - t0) / solves

        assert solve_s >= 10 * delta_s, (
            f"delta path {delta_s * 1e6:.1f}us vs full solve "
            f"{solve_s * 1e6:.1f}us — expected >= 10x separation"
        )


class TestPlanCacheUnderChurn:
    def test_membership_change_never_served_stale_plan(self):
        """Satellite 1: the cache key derives from (n, m, alpha).

        A delta that moves n lands on a *different* cache key, so the
        pre-churn entry cannot satisfy it; a replace (same n) may reuse
        the entry, which is still exact because Eq. 2 depends on
        membership only through n.
        """
        cache = PlanCache()
        maintainer = PlanMaintainer(4, 0.95, cache=cache)
        before = maintainer.plan_for(500)
        maintainer.apply_delta("commission", 1, 501)
        after = maintainer.current
        assert after.population == 501
        # The plan genuinely tracked the new population: it matches the
        # uncached solver at 501, not a recycled 500-tag answer.
        assert after.trp_frame_size == analysis._solve_trp_frame_size(
            501, 4, 0.95
        )
        assert before.trp_frame_size == analysis._solve_trp_frame_size(
            500, 4, 0.95
        )
        # Both sizes were solved, not aliased onto one key.
        assert cache.stats["misses"] == 2


# ----------------------------------------------------------------------
# churn plans
# ----------------------------------------------------------------------


class TestChurnPlan:
    def test_scripted_round_trip(self, tmp_path):
        plan = ChurnPlan.scripted(
            [
                (1, "g-0", "commission", 2),
                (1, "g-1", "decommission", 1),
                (4, "g-0", "replace", 3),
            ]
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = ChurnPlan.load(str(path))
        assert loaded.to_json() == plan.to_json()
        assert loaded.to_json()["schema"] == CHURN_PLAN_SCHEMA
        assert [e.group for e in loaded.events_at(1)] == ["g-0", "g-1"]
        assert loaded.events_at(2) == []
        assert loaded.op_totals() == {
            "commission": 2,
            "decommission": 1,
            "replace": 3,
        }

    def test_empty_plan_is_falsy(self):
        assert not ChurnPlan(())
        assert ChurnPlan.scripted([(0, "g", "commission", 1)])

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(tick=-1, group="g", op="commission")
        with pytest.raises(ValueError):
            ChurnEvent(tick=0, group="g", op="mutate")
        with pytest.raises(ValueError):
            ChurnEvent(tick=0, group="g", op="replace", count=0)
