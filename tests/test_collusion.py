"""Tests for repro.adversary.collusion — the Sec. 5 adversary."""

import numpy as np
import pytest

from repro.adversary.collusion import (
    ColludingUtrpPair,
    attack_trp_with_collusion,
    simulate_colluding_utrp_scan,
)
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.server.verifier import expected_trp_bitstring, expected_utrp_bitstring


def _split_population(n, stolen, seed=1, uses_counter=True):
    rng = np.random.default_rng(seed)
    pop = TagPopulation.create(n, uses_counter=uses_counter, rng=rng)
    all_ids = pop.ids.copy()
    loot = pop.remove_random(stolen, rng)
    return all_ids, pop, loot


class TestTrpCollusion:
    def test_alg4_always_passes_verification(self):
        """The OR-merge equals the intact bitstring for every seed —
        TRP's fundamental vulnerability (Fig. 1)."""
        all_ids, remaining, loot = _split_population(40, 8, uses_counter=False)
        for seed in range(25):
            forged = attack_trp_with_collusion(
                60, seed, SlottedChannel(remaining.tags), SlottedChannel(loot.tags)
            )
            expected = expected_trp_bitstring(all_ids, 60, seed)
            assert np.array_equal(forged.bitstring, expected)


class TestVectorisedUtrpCollusion:
    def _scan(self, n, stolen, f, budget, seed=3):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 1 << 62, size=n).astype(np.uint64)
        counters = np.zeros(n, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        mask[rng.choice(n, stolen, replace=False)] = True
        seeds = rng.integers(0, 1 << 62, size=f).tolist()
        forged = simulate_colluding_utrp_scan(ids, counters, mask, f, seeds, budget)
        prediction = expected_utrp_bitstring(ids, counters, f, seeds)
        return forged, prediction

    def test_unlimited_budget_is_a_perfect_forgery(self):
        """With enough synchronisations the pair behave as one honest
        reader: the forged bitstring equals the prediction exactly."""
        for seed in range(10):
            forged, prediction = self._scan(30, 6, 50, budget=10_000, seed=seed)
            assert np.array_equal(forged.bitstring, prediction.bitstring)
            assert not forged.went_solo

    def test_zero_budget_usually_detected(self):
        detected = 0
        for seed in range(40):
            forged, prediction = self._scan(40, 6, 60, budget=0, seed=seed)
            detected += not np.array_equal(forged.bitstring, prediction.bitstring)
        assert detected >= 35

    def test_budget_never_exceeded(self):
        for budget in (0, 3, 11):
            forged, _ = self._scan(40, 6, 60, budget=budget)
            assert forged.comms_used <= budget

    def test_solo_flag_consistent_with_slot(self):
        forged, _ = self._scan(40, 6, 60, budget=2)
        assert forged.went_solo
        assert 0 <= forged.solo_from_slot <= 60

    def test_fully_synced_scan_reports_full_frame(self):
        forged, _ = self._scan(10, 2, 30, budget=10_000)
        assert forged.solo_from_slot == 30

    def test_forged_prefix_matches_prediction(self):
        """Up to the solo transition the forgery is exact."""
        forged, prediction = self._scan(40, 6, 60, budget=5)
        upto = forged.solo_from_slot
        assert np.array_equal(
            forged.bitstring[:upto], prediction.bitstring[:upto]
        )

    def test_validation(self):
        ids = np.array([1, 2], dtype=np.uint64)
        cts = np.zeros(2, dtype=np.int64)
        mask = np.array([True, False])
        with pytest.raises(ValueError):
            simulate_colluding_utrp_scan(ids, cts, mask, 4, [1, 2], 5)  # few seeds
        with pytest.raises(ValueError):
            simulate_colluding_utrp_scan(ids, cts[:1], mask, 2, [1, 2], 5)
        with pytest.raises(ValueError):
            simulate_colluding_utrp_scan(ids, cts, mask, 2, [1, 2], -1)


class TestChannelPairAgreesWithVectorised:
    @pytest.mark.parametrize("seed", range(8))
    def test_bitstrings_match(self, seed):
        """The channel-faithful pair and the numpy kernel must forge the
        identical bitstring for the identical situation."""
        rng = np.random.default_rng(seed)
        n, stolen_n, f, budget = 30, 5, 45, int(rng.integers(0, 12))
        pop = TagPopulation.create(n, uses_counter=True, rng=rng)
        ids = pop.ids.copy()
        loot = pop.remove_random(stolen_n, rng)
        stolen_mask = np.isin(ids, loot.ids)
        seeds = rng.integers(0, 1 << 62, size=f).tolist()

        pair = ColludingUtrpPair(
            SlottedChannel(pop.tags), SlottedChannel(loot.tags), budget
        )
        via_channels = pair.scan(f, seeds)
        via_numpy = simulate_colluding_utrp_scan(
            ids, np.zeros(n, dtype=np.int64), stolen_mask, f, seeds, budget
        )
        assert np.array_equal(via_channels.bitstring, via_numpy.bitstring)

    def test_pair_validation(self):
        with pytest.raises(ValueError):
            ColludingUtrpPair(SlottedChannel([]), SlottedChannel([]), -1)
        pair = ColludingUtrpPair(SlottedChannel([]), SlottedChannel([]), 5)
        with pytest.raises(ValueError):
            pair.scan(10, [1, 2])
