"""Fleet campaigns under scripted membership churn (repro.population).

The two campaign-level claims:

* **equivalence** — a churn-free campaign (no plan, or an empty plan)
  is bit-identical to a pre-population build: same journal digest,
  every epoch 0, no churn block in the report;
* **determinism under churn** — a scripted plan applies from its own
  seed dimension, so the same ``(seed, plan)`` reproduces the same
  journal digest at any ``--jobs``.

Plus the churn *experiment* (repro.experiments.churn): the maintained
view holds its planned detection confidence while the stale epoch-0
view degrades, with false alarms concentrated in decommission-heavy
mixes.
"""

import pytest

from repro.experiments.churn import (
    ChurnStudyConfig,
    format_churn_result,
    run_churn_study,
)
from repro.fleet import (
    CampaignConfig,
    default_scenario,
    format_campaign_result,
    run_campaign,
)
from repro.population import ChurnPlan


def _plan(entries):
    return ChurnPlan.scripted(entries)


SCRIPT = [
    (1, "group-00", "commission", 3),
    (2, "group-01", "decommission", 2),
    (3, "group-02", "replace", 2),
]


class TestCampaignChurn:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        scenario = default_scenario(groups=4)
        base = CampaignConfig(ticks=4, master_seed=11)
        churnless = CampaignConfig(
            ticks=4, master_seed=11, churn_plan=ChurnPlan(())
        )
        a = run_campaign(scenario, base)
        b = run_campaign(scenario, churnless)
        assert a.journal.digest() == b.journal.digest()
        assert b.churn_applied == {}
        assert b.population_epochs == {}
        assert "membership churn" not in format_campaign_result(b)

    def test_scripted_plan_applies_and_reports(self):
        scenario = default_scenario(groups=4)
        config = CampaignConfig(
            ticks=5, master_seed=11, churn_plan=_plan(SCRIPT)
        )
        result = run_campaign(scenario, config)
        assert result.churn_applied == {
            "commission": 3,
            "decommission": 2,
            "replace": 2,
        }
        assert result.population_epochs == {
            "group-00": 1,
            "group-01": 1,
            "group-02": 1,
        }
        report = format_campaign_result(result)
        assert (
            "membership churn: 3 commissioned, 2 decommissioned, "
            "2 replaced" in report
        )
        assert "group-00=1" in report

    def test_churned_campaign_is_deterministic_across_jobs(self):
        scenario = default_scenario(groups=4)
        digests = set()
        for jobs in (1, 2):
            config = CampaignConfig(
                ticks=5, master_seed=11, jobs=jobs, churn_plan=_plan(SCRIPT)
            )
            digests.add(run_campaign(scenario, config).journal.digest())
        assert len(digests) == 1

    def test_unknown_group_in_plan_rejected_upfront(self):
        scenario = default_scenario(groups=2)
        config = CampaignConfig(
            ticks=3,
            master_seed=11,
            churn_plan=_plan([(0, "group-99", "commission", 1)]),
        )
        with pytest.raises(ValueError):
            run_campaign(scenario, config)

    def test_decommission_never_breaches_the_tolerance_floor(self):
        scenario = default_scenario(groups=1)
        spec = next(iter(scenario.registry))
        config = CampaignConfig(
            ticks=3,
            master_seed=11,
            churn_plan=_plan([(1, spec.name, "decommission", 10**6)]),
        )
        result = run_campaign(scenario, config)
        moved = result.churn_applied["decommission"]
        # The clamp: only present tags can retire, and n must stay
        # above m so the monitoring requirement remains satisfiable.
        assert 0 < moved <= spec.population - spec.tolerance - 1
        assert spec.population - moved > spec.tolerance

    def test_churn_events_reach_the_bus(self):
        from repro.obs import ObsContext

        obs = ObsContext()
        scenario = default_scenario(groups=4)
        config = CampaignConfig(
            ticks=5, master_seed=11, churn_plan=_plan(SCRIPT)
        )
        run_campaign(scenario, config, obs=obs)
        churn_events = [
            e for e in obs.bus.events() if e.name == "fleet.churn"
        ]
        assert [e.fields["op"] for e in churn_events] == [
            "commission",
            "decommission",
            "replace",
        ]
        assert all(e.fields["epoch"] == 1 for e in churn_events)


class TestChurnStudy:
    CFG = ChurnStudyConfig(
        population=300,
        tolerance=3,
        confidence=0.9,
        churn_rates=(0.0, 1.0),
        mixes=("decommission", "replace"),
        rounds=40,
        master_seed=5,
    )

    @pytest.fixture(scope="class")
    def result(self):
        return run_churn_study(self.CFG)

    def test_sweep_shape_and_control_column(self, result):
        assert len(result.points) == 4  # 2 mixes x 2 rates
        for p in result.points:
            if p.churn_rate == 0.0:
                # the static control: no events, views agree exactly
                assert p.events_applied == 0
                assert p.detection_maintained == p.detection_stale
                assert p.false_alarm_stale_strict == 0.0

    def test_maintained_view_holds_detection_under_churn(self, result):
        for p in result.points:
            assert p.detection_maintained >= 0.8  # planned alpha 0.9

    def test_stale_view_pages_after_decommission_churn(self, result):
        (point,) = [
            p
            for p in result.points
            if p.mix == "decommission" and p.churn_rate == 1.0
        ]
        # Every round expects at least one long-gone tag.
        assert point.false_alarm_stale_strict >= 0.8
        assert point.final_population == 300 - point.events_applied

    def test_replace_churn_is_all_plan_reuses(self, result):
        (point,) = [
            p
            for p in result.points
            if p.mix == "replace" and p.churn_rate == 1.0
        ]
        assert point.final_population == 300  # n is invariant
        assert point.replans == 1  # the epoch-0 plan, once
        assert point.plan_reuses >= point.events_applied

    def test_infeasible_decommission_cell_rejected(self):
        cfg = ChurnStudyConfig(
            population=20,
            tolerance=3,
            confidence=0.9,
            churn_rates=(2.0,),
            mixes=("decommission",),
            rounds=40,
            master_seed=5,
        )
        with pytest.raises(ValueError):
            run_churn_study(cfg)

    def test_report_renders(self, result):
        report = format_churn_result(result)
        assert "churn: detection confidence and false-alarm rate" in report
        assert "maintained detection floor:" in report
        assert "replace" in report and "decommission" in report
