"""Unit tests for the *collect all* baseline."""

import numpy as np
import pytest

from repro.aloha.framed_slotted import (
    CollectAllProtocol,
    simulate_collect_all_slots,
)
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation


class TestProtocol:
    def test_collects_every_tag(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        result = CollectAllProtocol(30).run(SlottedChannel(pop.tags), rng)
        assert result.complete
        assert sorted(result.collected_ids) == sorted(pop.ids.tolist())

    def test_no_duplicates(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        result = CollectAllProtocol(30).run(SlottedChannel(pop.tags), rng)
        assert len(result.collected_ids) == len(set(result.collected_ids))

    def test_tolerance_stops_early(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        result = CollectAllProtocol(30, tolerance=5).run(
            SlottedChannel(pop.tags), rng
        )
        assert result.complete
        assert len(result.collected_ids) >= 25

    def test_first_round_frame_is_n(self, rng):
        pop = TagPopulation.create(20, rng=rng)
        result = CollectAllProtocol(20).run(SlottedChannel(pop.tags), rng)
        assert result.total_slots >= 20  # first frame alone costs n

    def test_missing_tags_within_tolerance_still_complete(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        pop.remove_random(4, rng)
        result = CollectAllProtocol(30, tolerance=5).run(
            SlottedChannel(pop.tags), rng
        )
        assert result.complete
        assert len(result.collected_ids) >= 25

    def test_too_many_missing_reports_incomplete(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        pop.remove_random(10, rng)
        result = CollectAllProtocol(30, tolerance=5).run(
            SlottedChannel(pop.tags), rng
        )
        assert not result.complete
        assert len(result.collected_ids) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectAllProtocol(-1)
        with pytest.raises(ValueError):
            CollectAllProtocol(10, tolerance=11)

    def test_empty_set(self, rng):
        result = CollectAllProtocol(0).run(SlottedChannel([]), rng)
        assert result.complete and result.collected_ids == []


class TestVectorisedSimulation:
    def test_slots_at_least_n(self, rng):
        ids = TagPopulation.create(50, rng=rng).ids
        assert simulate_collect_all_slots(ids, 50, 0, rng) >= 50

    def test_matches_protocol_distribution(self):
        """Mean slot cost of the two implementations must agree."""
        n = 40
        proto_costs, vec_costs = [], []
        for seed in range(40):
            rng = np.random.default_rng(seed)
            pop = TagPopulation.create(n, rng=rng)
            proto_costs.append(
                CollectAllProtocol(n).run(SlottedChannel(pop.tags), rng).total_slots
            )
            rng2 = np.random.default_rng(1000 + seed)
            ids = TagPopulation.create(n, rng=rng2).ids
            vec_costs.append(simulate_collect_all_slots(ids, n, 0, rng2))
        # Both average near e*n; allow generous Monte Carlo slack.
        assert abs(np.mean(proto_costs) - np.mean(vec_costs)) < 0.35 * n

    def test_tolerance_reduces_cost(self, rng):
        ids = TagPopulation.create(200, rng=rng).ids
        strict = np.mean(
            [simulate_collect_all_slots(ids, 200, 0, np.random.default_rng(s)) for s in range(10)]
        )
        loose = np.mean(
            [simulate_collect_all_slots(ids, 200, 30, np.random.default_rng(s)) for s in range(10)]
        )
        assert loose < strict

    def test_unreachable_target_raises(self, rng):
        ids = TagPopulation.create(10, rng=rng).ids
        with pytest.raises(ValueError):
            simulate_collect_all_slots(ids[:5], 10, 2, rng)

    def test_cost_scales_roughly_linearly(self, rng):
        """Expected cost ~ e*n: double n, roughly double slots."""
        cost = {}
        for n in (100, 200):
            ids = TagPopulation.create(n, rng=rng).ids
            cost[n] = np.mean(
                [
                    simulate_collect_all_slots(ids, n, 0, np.random.default_rng(s))
                    for s in range(20)
                ]
            )
        ratio = cost[200] / cost[100]
        assert 1.6 < ratio < 2.4
