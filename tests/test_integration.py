"""End-to-end integration tests: the paper's story played out in full."""

import numpy as np

from repro.core.monitor import MonitoringServer
from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.rfid.reader import ScanResult
from repro.simulation.scenarios import deploy_with_collusion


class TestWarehouseStory:
    """A warehouse monitors 120 tagged items over a week of checks."""

    def test_full_lifecycle(self):
        rng = np.random.default_rng(2024)
        req = MonitorRequirement(population=120, tolerance=4, confidence=0.95)
        pop = TagPopulation.create(120, uses_counter=True, rng=rng)
        alerts = []
        server = MonitoringServer(
            req, rng=rng, counter_tags=True, on_alert=alerts.append
        )
        server.register(pop.ids.tolist())
        channel = SlottedChannel(pop.tags)

        # Day 1-3: routine checks, set intact — no alarms.
        for _ in range(3):
            assert server.check_trp(channel).intact
        assert server.check_utrp(channel).intact
        assert alerts == []

        # Day 4: two items legitimately misplaced (within tolerance m=4)
        # — monitoring may or may not see them; either way the operator
        # is only alerted if the bitstring differs, which is the designed
        # tolerance behaviour: mismatches at <= m missing are possible
        # but the *guarantee* is about > m.
        pop.remove_random(2, rng)
        channel = SlottedChannel(pop.tags)
        server.check_trp(channel)

        # Day 5: a real theft pushes the loss beyond tolerance.
        pop.remove_random(10, rng)
        channel = SlottedChannel(pop.tags)
        report = server.check_utrp(channel)
        assert not report.intact
        assert alerts and alerts[-1].protocol == "UTRP"

    def test_detection_guarantee_over_many_deployments(self):
        """> m missing must be caught in at least ~alpha of deployments."""
        caught = 0
        runs = 60
        for seed in range(runs):
            rng = np.random.default_rng(seed)
            req = MonitorRequirement(population=80, tolerance=3, confidence=0.95)
            pop = TagPopulation.create(80, uses_counter=True, rng=rng)
            server = MonitoringServer(req, rng=rng, counter_tags=True)
            server.register(pop.ids.tolist())
            pop.remove_random(4, rng)  # m + 1
            caught += not server.check_trp(SlottedChannel(pop.tags)).intact
        assert caught / runs > 0.85


class TestDishonestEmployeeStory:
    """The Sec. 5 storyline: insider + collaborator versus UTRP."""

    def test_collusion_is_usually_caught(self):
        caught = 0
        runs = 30
        for seed in range(runs):
            d = deploy_with_collusion(
                MonitorRequirement(population=60, tolerance=2, confidence=0.95),
                np.random.default_rng(seed),
                comm_budget=5,
            )

            def attack(challenge):
                forged = d.collusion.scan(
                    challenge.frame_size, list(challenge.seeds)
                )
                return (
                    ScanResult(
                        bitstring=forged.bitstring,
                        slots_used=challenge.frame_size,
                        seeds_used=0,
                    ),
                    0.0,
                )

            report = d.server.check_utrp(d.channel, scan_fn=attack)
            caught += not report.intact
        assert caught / runs > 0.8

    def test_unlimited_collusion_would_win(self):
        """Without the timer the same attack is invisible — the reason
        UTRP needs one."""
        d = deploy_with_collusion(
            MonitorRequirement(population=60, tolerance=2, confidence=0.95),
            np.random.default_rng(99),
            comm_budget=20,  # the server plans for c = 20 as usual...
        )
        d.collusion.budget = 10_000_000  # ...but nothing enforces it

        def attack(challenge):
            forged = d.collusion.scan(challenge.frame_size, list(challenge.seeds))
            return (
                ScanResult(
                    bitstring=forged.bitstring,
                    slots_used=challenge.frame_size,
                    seeds_used=0,
                ),
                0.0,
            )

        report = d.server.check_utrp(d.channel, scan_fn=attack)
        assert report.intact  # forged perfectly; only the timer stops this
