"""Unit tests for repro.core.utrp_analysis — Theorems 3-5, Eq. 3."""

import math

import pytest

from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.utrp_analysis import (
    DEFAULT_SLACK_SLOTS,
    CollusionBudget,
    expected_sync_slots,
    optimal_utrp_frame_size,
    utrp_detection_probability,
)


class TestCollusionBudget:
    def test_direct(self):
        assert CollusionBudget(20).sync_slots == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CollusionBudget(-1)

    def test_from_timing(self):
        b = CollusionBudget.from_timing(timer=100.0, min_scan_time=40.0, comm_time=3.0)
        assert b.sync_slots == 20

    def test_from_timing_timer_too_short(self):
        with pytest.raises(ValueError):
            CollusionBudget.from_timing(timer=10.0, min_scan_time=40.0, comm_time=3.0)

    def test_from_timing_bad_comm(self):
        with pytest.raises(ValueError):
            CollusionBudget.from_timing(timer=100.0, min_scan_time=40.0, comm_time=0.0)


class TestExpectedSyncSlots:
    def test_theorem3_formula(self):
        n, m, f, c = 500, 10, 400, 20
        p = math.exp(-(n - m - 1) / f)
        assert expected_sync_slots(n, m, f, c) == pytest.approx(c / p)

    def test_capped_at_frame(self):
        # Tiny frame, dense set: c/p blows past f and must clamp.
        assert expected_sync_slots(1000, 5, 50, 40) == 50.0

    def test_zero_budget(self):
        assert expected_sync_slots(500, 10, 400, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_sync_slots(100, 5, 0, 20)
        with pytest.raises(ValueError):
            expected_sync_slots(100, 5, 50, -1)


class TestDetectionProbability:
    def test_bounded(self):
        for f in (100, 300, 600):
            g = utrp_detection_probability(500, 10, f, 20)
            assert 0.0 <= g <= 1.0

    def test_zero_when_fully_synchronised(self):
        """Budget covering the whole frame means a perfect forgery."""
        assert utrp_detection_probability(100, 5, 120, 100_000) == 0.0

    def test_zero_budget_close_to_trp(self):
        """With c = 0 the adversary has no collaborator information, so
        detection should approach TRP's g at the same frame size."""
        n, m, f = 500, 10, 400
        utrp = utrp_detection_probability(n, m, f, 0)
        trp = detection_probability(n, m + 1, f)
        assert abs(utrp - trp) < 0.05

    def test_decreases_with_budget(self):
        n, m, f = 500, 10, 400
        values = [utrp_detection_probability(n, m, f, c) for c in (0, 10, 20, 50)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_increases_with_frame(self):
        values = [
            utrp_detection_probability(500, 10, f, 20) for f in (350, 450, 600, 900)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            utrp_detection_probability(10, 9, 50, 20)  # m + 1 >= n
        with pytest.raises(ValueError):
            utrp_detection_probability(100, 5, 0, 20)
        with pytest.raises(ValueError):
            utrp_detection_probability(100, 5, 50, -1)


class TestOptimalFrameSize:
    def test_satisfies_eq3(self):
        for n, m in [(100, 5), (500, 10), (1000, 20)]:
            f = optimal_utrp_frame_size(n, m, 0.95, 20, slack=0)
            assert utrp_detection_probability(n, m, f, 20) > 0.95

    def test_minimality_without_slack(self):
        for n, m in [(100, 5), (500, 10)]:
            f = optimal_utrp_frame_size(n, m, 0.95, 20, slack=0)
            assert utrp_detection_probability(n, m, f - 1, 20) <= 0.95

    def test_slack_added(self):
        base = optimal_utrp_frame_size(500, 10, 0.95, 20, slack=0)
        padded = optimal_utrp_frame_size(500, 10, 0.95, 20)
        assert padded == base + DEFAULT_SLACK_SLOTS

    def test_exceeds_trp_frame(self):
        """Fig. 6's claim: UTRP needs somewhat more slots than TRP."""
        for n, m in [(100, 5), (500, 10), (1000, 20), (2000, 30)]:
            trp = optimal_trp_frame_size(n, m, 0.95)
            utrp = optimal_utrp_frame_size(n, m, 0.95, 20)
            assert utrp > trp
            assert utrp - trp < 150  # "the overhead of UTRP over TRP is small"

    def test_grows_with_budget(self):
        frames = [optimal_utrp_frame_size(500, 10, 0.95, c) for c in (0, 20, 50)]
        assert frames == sorted(frames)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_utrp_frame_size(10, 9, 0.95, 20)
        with pytest.raises(ValueError):
            optimal_utrp_frame_size(100, 5, 0.95, 20, slack=-1)
