"""Tests for repro.fleet.rounds — the vectorised campaign round model."""

import numpy as np
import pytest

from repro.fleet.rounds import (
    AirTimeModel,
    detection_diagnostic,
    run_simulated_round,
)
from repro.rfid.hashing import slots_for_tags
from repro.rfid.ids import random_tag_ids
from repro.rfid.timing import GEN2_TYPICAL


def _population(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return random_tag_ids(n, rng), rng


class TestRunSimulatedRound:
    def test_intact_set_verifies(self):
        ids, _ = _population()
        outcome = run_simulated_round(
            ids, np.ones(ids.size, bool), frame_size=512, seed=42
        )
        assert outcome.result.intact
        assert outcome.mismatches == 0
        np.testing.assert_array_equal(outcome.observed, outcome.expected)

    def test_matches_reference_hash(self):
        """The expected bitstring is exactly the core slot mapping."""
        ids, _ = _population(50)
        outcome = run_simulated_round(
            ids, np.ones(ids.size, bool), frame_size=128, seed=9, counter=3
        )
        slots = slots_for_tags(ids, 9, 128, counter=3)
        reference = (np.bincount(slots, minlength=128) > 0).astype(np.uint8)
        np.testing.assert_array_equal(outcome.expected, reference)

    def test_missing_tags_usually_detected(self):
        """At the paper's sizing, a lone-slot theft shows as a mismatch."""
        ids, rng = _population(300)
        present = np.ones(ids.size, bool)
        present[:40] = False  # large theft, generous frame
        detected = 0
        for seed in range(20):
            outcome = run_simulated_round(ids, present, 1024, seed)
            detected += outcome.mismatches > 0
        assert detected >= 19

    def test_shape_mismatch_rejected(self):
        ids, _ = _population(10)
        with pytest.raises(ValueError):
            run_simulated_round(ids, np.ones(5, bool), 64, 1)

    def test_lossy_round_needs_rng(self):
        ids, _ = _population(10)
        with pytest.raises(ValueError):
            run_simulated_round(
                ids, np.ones(ids.size, bool), 64, 1, miss_rate=0.1
            )

    def test_lost_replies_counted(self):
        ids, rng = _population(400)
        outcome = run_simulated_round(
            ids,
            np.ones(ids.size, bool),
            1024,
            7,
            miss_rate=0.5,
            rng=rng,
        )
        assert outcome.lost_replies > 0
        # Benign losses surface as mismatches, same as the slow path.
        assert outcome.mismatches > 0


class TestAirTimeModel:
    def test_accounting(self):
        model = AirTimeModel(timing=GEN2_TYPICAL)
        air = model.round_air_us(frame_size=10, occupied_slots=4)
        t = GEN2_TYPICAL
        assert air == (
            t.seed_broadcast_us
            + 6 * t.empty_slot_us
            + 4 * (t.reply_slot_us + 16 * t.bit_us)
        )

    def test_zero_scale_never_sleeps(self):
        assert AirTimeModel(time_scale=0.0).wall_seconds(1e9) == 0.0

    def test_scaled_wall_clock(self):
        model = AirTimeModel(time_scale=10.0)
        assert model.wall_seconds(2_000_000) == pytest.approx(0.2)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            AirTimeModel(time_scale=-1.0)


class TestDetectionDiagnostic:
    def test_generous_frame_detects_reliably(self):
        ids, rng = _population(100)
        rate = detection_diagnostic(
            ids, frame_size=4096, critical_missing=6, trials=200, rng=rng
        )
        assert rate > 0.95

    def test_tiny_frame_detects_poorly(self):
        ids, rng = _population(100)
        rate = detection_diagnostic(
            ids, frame_size=2, critical_missing=1, trials=200, rng=rng
        )
        assert rate < 0.5

    def test_rate_is_a_probability(self):
        ids, rng = _population(64)
        rate = detection_diagnostic(ids, 256, 3, 50, rng)
        assert 0.0 <= rate <= 1.0

    def test_validation(self):
        ids, rng = _population(10)
        with pytest.raises(ValueError):
            detection_diagnostic(ids, 64, 0, 10, rng)
        with pytest.raises(ValueError):
            detection_diagnostic(ids, 64, 11, 10, rng)
        with pytest.raises(ValueError):
            detection_diagnostic(ids, 64, 1, 0, rng)
        with pytest.raises(ValueError):
            detection_diagnostic(ids, 0, 1, 10, rng)
