"""Tests for repro.shard.telemetry and the cluster metrics plumbing."""

import asyncio
import json

import pytest

from repro.obs.agg import (
    parse_prometheus_text,
    snapshot_registry,
    sum_family,
)
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.serve.server import BUDGET_BUCKETS, register_serve_metrics
from repro.shard import ShardConfig, write_snapshot
from repro.shard.failover import initial_snapshot
from repro.shard.telemetry import TelemetryServer, http_get, slo_summary
from repro.shard.worker import WorkerSupervisor


def run(coro):
    return asyncio.run(coro)


def _serving_registry(latencies=(100.0, 150.0, 400.0), ratios=(0.4, 0.8, 1.6)):
    registry = MetricsRegistry()
    register_serve_metrics(registry)
    verdicts = registry.counter(
        "serve_verdicts_total", "round verdicts by group and outcome",
        ("group", "verdict"),
    )
    for i, latency in enumerate(latencies):
        verdicts.labels(group=f"g{i}", verdict="intact").inc()
        registry.histogram(
            "serve_round_latency_us",
            "round latency in simulated microseconds",
            buckets=DEFAULT_BUCKETS,
            keep_samples=False,
        ).observe(latency)
    for ratio in ratios:
        registry.histogram(
            "serve_deadline_budget_ratio",
            "fraction of the UTRP timer budget one round consumed",
            buckets=BUDGET_BUCKETS,
            keep_samples=False,
        ).observe(ratio)
        if ratio > 1.0:
            registry.counter(
                "serve_late_rejections_total",
                "UTRP rounds rejected late (Theorem 5 path)",
            ).inc()
    return registry


class TestSloSummary:
    def test_budget_split_at_the_theorem5_cliff(self):
        doc = slo_summary(_serving_registry())
        assert doc["deadline_budget"]["within_budget"] == 2
        assert doc["deadline_budget"]["over_budget"] == 1
        assert doc["late_rejections_total"] == 1
        assert doc["deadline_budget"]["over_budget"] == doc[
            "late_rejections_total"
        ]
        assert doc["verdicts_total"] == 3

    def test_quantiles_are_bucket_interpolated(self):
        doc = slo_summary(_serving_registry())
        latency = doc["round_latency_us"]
        assert latency["count"] == 3
        assert 0.0 < latency["p50"] <= latency["p99"]

    def test_empty_registry_reports_zeroes(self):
        doc = slo_summary(MetricsRegistry())
        assert doc["verdicts_total"] == 0
        assert doc["round_latency_us"] == {
            "count": 0, "sum": 0.0, "p50": 0.0, "p99": 0.0,
        }


class _FakeSupervisor:
    """Just enough supervisor surface for TelemetryServer."""

    def __init__(self, registry, health):
        self._registry = registry
        self._health = health

    def cluster_registry(self):
        return self._registry

    def health(self):
        return self._health


def _fake(all_alive=True):
    health = {
        "w00": {"alive": True, "pid": 1, "sessions": 0},
        "w01": {"alive": all_alive, "pid": 2, "sessions": 0},
    }
    return _FakeSupervisor(_serving_registry(), health)


class TestEndpoints:
    def test_metrics_is_prometheus_text(self):
        async def scenario():
            async with TelemetryServer(_fake()) as server:
                return await http_get("127.0.0.1", server.port, "/metrics")

        status, body = run(scenario())
        assert status == 200
        samples = parse_prometheus_text(body)
        assert sum_family(samples, "serve_verdicts_total") == 3.0

    def test_healthz_flips_to_503_when_a_worker_is_down(self):
        async def scenario(all_alive):
            async with TelemetryServer(_fake(all_alive)) as server:
                return await http_get("127.0.0.1", server.port, "/healthz")

        status, body = run(scenario(True))
        assert status == 200
        assert json.loads(body)["status"] == "ok"

        status, body = run(scenario(False))
        assert status == 503
        doc = json.loads(body)
        assert doc["status"] == "degraded"
        assert doc["down"] == ["w01"]

    def test_slo_endpoint_matches_slo_summary(self):
        supervisor = _fake()

        async def scenario():
            async with TelemetryServer(supervisor) as server:
                return await http_get("127.0.0.1", server.port, "/slo")

        status, body = run(scenario())
        assert status == 200
        assert json.loads(body) == json.loads(
            json.dumps(slo_summary(supervisor.cluster_registry()))
        )

    def test_unknown_path_404_and_non_get_405(self):
        async def scenario():
            async with TelemetryServer(_fake()) as server:
                missing = await http_get("127.0.0.1", server.port, "/nope")
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return missing, raw

        (status, _), raw = run(scenario())
        assert status == 404
        assert raw.startswith(b"HTTP/1.0 405")


def _metrics_doc(source, seq, verdicts_by_group):
    registry = MetricsRegistry()
    counter = registry.counter(
        "serve_verdicts_total", "round verdicts by group and outcome",
        ("group", "verdict"),
    )
    for group, n in verdicts_by_group.items():
        counter.labels(group=group, verdict="intact").inc(n)
    return snapshot_registry(registry, seq=seq, source=source)


class TestSupervisorSnapshotHarvest:
    """worker_metric_snapshots over heartbeats + embedded snapshot docs."""

    def _supervisor(self, tmp_path, workers=2, groups=2):
        config = ShardConfig(
            workers=workers, groups=groups, population=20, tolerance=2, seed=3
        )
        return WorkerSupervisor(config, state_dir=str(tmp_path))

    def _write_group_snapshot(self, supervisor, group, metrics_by_source):
        spec = supervisor._specs[group]
        doc = initial_snapshot(spec)
        doc["metrics"] = metrics_by_source
        write_snapshot(supervisor.state_dir, doc)

    def test_max_seq_wins_never_sums(self, tmp_path):
        supervisor = self._supervisor(tmp_path)
        stale = _metrics_doc("w00", seq=3, verdicts_by_group={"g": 2})
        fresh = _metrics_doc("w00", seq=7, verdicts_by_group={"g": 5})
        names = sorted(supervisor._specs)
        self._write_group_snapshot(supervisor, names[0], {"w00": stale})
        self._write_group_snapshot(supervisor, names[1], {"w00": fresh})

        docs = supervisor.worker_metric_snapshots()
        assert [d["seq"] for d in docs] == [7]
        samples = parse_prometheus_text(
            prometheus_text(supervisor.cluster_registry())
        )
        # 5, not 2+5: snapshots are states, not increments.
        assert sum_family(samples, "serve_verdicts_total") == 5.0

    def test_inherited_docs_survive_their_dead_source(self, tmp_path):
        """A failover chain: w01's snapshot write carries the dead
        w00's registry copy; the supervisor still counts both."""
        supervisor = self._supervisor(tmp_path)
        name = sorted(supervisor._specs)[0]
        self._write_group_snapshot(
            supervisor,
            name,
            {
                "w00": _metrics_doc("w00", seq=9, verdicts_by_group={"a": 4}),
                "w01": _metrics_doc("w01", seq=2, verdicts_by_group={"b": 3}),
            },
        )
        docs = supervisor.worker_metric_snapshots()
        assert [d["source"] for d in docs] == ["w00", "w01"]
        samples = parse_prometheus_text(
            prometheus_text(supervisor.cluster_registry())
        )
        assert sum_family(samples, "serve_verdicts_total") == 7.0

    def test_heartbeat_and_embedded_candidates_compete_per_source(
        self, tmp_path
    ):
        supervisor = self._supervisor(tmp_path)
        name = sorted(supervisor._specs)[0]
        self._write_group_snapshot(
            supervisor,
            name,
            {"w00": _metrics_doc("w00", seq=5, verdicts_by_group={"a": 9})},
        )

        class _Handle:
            metrics = _metrics_doc("w00", seq=4, verdicts_by_group={"a": 6})
            prior_metrics: list = []

        supervisor.handles["w00"] = _Handle()
        docs = supervisor.worker_metric_snapshots()
        assert [d["seq"] for d in docs] == [5]  # embedded doc is fresher

    def test_unreadable_snapshot_files_are_tolerated(self, tmp_path):
        supervisor = self._supervisor(tmp_path)
        name = sorted(supervisor._specs)[0]
        from repro.shard.failover import snapshot_path

        with open(snapshot_path(supervisor.state_dir, name), "w") as fh:
            fh.write("{torn")
        assert supervisor.worker_metric_snapshots() == []
