"""Tests for the lossy-channel extension (reply loss on SlottedChannel)."""

import numpy as np
import pytest

from repro.core.monitor import MonitoringServer
from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlotOutcome, SlottedChannel
from repro.rfid.population import TagPopulation
from repro.rfid.tag import Tag, TagState


class TestConstruction:
    def test_miss_rate_bounds(self):
        with pytest.raises(ValueError):
            SlottedChannel([], miss_rate=-0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            SlottedChannel([], miss_rate=1.1, rng=np.random.default_rng(0))

    def test_lossy_channel_requires_rng(self):
        with pytest.raises(ValueError):
            SlottedChannel([], miss_rate=0.5)

    def test_perfect_channel_needs_no_rng(self):
        SlottedChannel([Tag(1)])  # must not raise


class TestLossSemantics:
    def test_total_loss_looks_empty(self):
        tag = Tag(1)
        channel = SlottedChannel(
            [tag], miss_rate=1.0, rng=np.random.default_rng(0)
        )
        channel.broadcast_seed(4, 0)
        obs = channel.poll_slot(tag.chosen_slot)
        assert obs.outcome is SlotOutcome.EMPTY

    def test_lost_reply_still_silences_tag(self):
        """The tag transmitted; it cannot know the reader missed it."""
        tag = Tag(1)
        channel = SlottedChannel(
            [tag], miss_rate=1.0, rng=np.random.default_rng(0)
        )
        channel.broadcast_seed(4, 0)
        channel.poll_slot(tag.chosen_slot)
        assert tag.state is TagState.SILENT

    def test_zero_loss_identical_to_default(self):
        pop_a = TagPopulation.create(20, rng=np.random.default_rng(1))
        pop_b = TagPopulation.create(20, rng=np.random.default_rng(1))
        a = SlottedChannel(pop_a.tags)
        b = SlottedChannel(pop_b.tags, miss_rate=0.0, rng=np.random.default_rng(2))
        from repro.rfid.reader import TrustedReader

        sa = TrustedReader().scan_trp(a, 30, 7)
        sb = TrustedReader().scan_trp(b, 30, 7)
        assert np.array_equal(sa.bitstring, sb.bitstring)

    def test_loss_rate_statistics(self):
        """Roughly miss_rate of singleton slots go quiet."""
        losses = 0
        trials = 400
        for seed in range(trials):
            tag = Tag(seed + 10)
            channel = SlottedChannel(
                [tag], miss_rate=0.3, rng=np.random.default_rng(seed)
            )
            channel.broadcast_seed(8, 99)
            obs = channel.poll_slot(tag.chosen_slot)
            losses += obs.outcome is SlotOutcome.EMPTY
        assert 0.2 < losses / trials < 0.4

    def test_partial_collision_loss_decays_to_singleton(self):
        """If one of two colliding replies fades, the reader decodes the
        survivor — the capture effect."""
        # Find two tags that collide under some seed.
        found = None
        for seed in range(3000):
            t1, t2 = Tag(1), Tag(2)
            t1.receive_seed(4, seed)
            t2.receive_seed(4, seed)
            if t1.chosen_slot == t2.chosen_slot:
                found = seed
                break
        assert found is not None
        outcomes = set()
        for trial in range(200):
            t1, t2 = Tag(1), Tag(2)
            channel = SlottedChannel(
                [t1, t2], miss_rate=0.5, rng=np.random.default_rng(trial)
            )
            channel.broadcast_seed(4, found)
            outcomes.add(channel.poll_slot(t1.chosen_slot).outcome)
        assert SlotOutcome.SINGLE in outcomes
        assert SlotOutcome.COLLISION in outcomes
        assert SlotOutcome.EMPTY in outcomes


class TestMonitoringUnderLoss:
    def test_lossy_intact_set_can_false_alarm(self):
        """Strict policy + lossy channel: mismatches appear without any
        theft — the Abl. G phenomenon at protocol level."""
        rng = np.random.default_rng(3)
        req = MonitorRequirement(population=200, tolerance=5, confidence=0.95)
        pop = TagPopulation.create(200, uses_counter=True, rng=rng)
        server = MonitoringServer(req, rng=rng, counter_tags=True)
        server.register(pop.ids.tolist())
        alarms = 0
        for trial in range(20):
            channel = SlottedChannel(
                pop.tags, miss_rate=0.05, rng=np.random.default_rng(trial)
            )
            report = server.check_trp(channel)
            alarms += not report.intact
        assert alarms > 10  # 5% loss on 200 tags ~ 10 lost replies/scan
