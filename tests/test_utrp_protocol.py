"""Protocol-level tests for UTRP (Algs. 5-7 end to end)."""

import numpy as np
import pytest

from repro.core.parameters import MonitorRequirement
from repro.core.utrp import estimate_scan_time_bounds, run_utrp_round
from repro.core.verification import Verdict
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.rfid.reader import ScanResult
from repro.rfid.bitstring import empty_bitstring
from repro.server.database import TagDatabase
from repro.server.seeds import SeedIssuer


def _setup(n=50, m=3, seed=1):
    rng = np.random.default_rng(seed)
    req = MonitorRequirement(population=n, tolerance=m, confidence=0.95)
    pop = TagPopulation.create(n, uses_counter=True, rng=rng)
    db = TagDatabase()
    db.register_set(pop.ids.tolist())
    return req, pop, db, SeedIssuer(rng)


class TestIntactRounds:
    def test_intact_set_verifies(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert report.intact

    def test_repeated_rounds_stay_in_sync(self):
        """Counters tick every round; mirror and hardware must agree."""
        req, pop, db, issuer = _setup()
        channel = SlottedChannel(pop.tags)
        for _ in range(4):
            assert run_utrp_round(db, issuer, req, channel).intact
        assert db.counters.tolist() == [t.counter for t in pop.tags]

    def test_counters_committed_after_round(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert db.counters[0] == report.seeds_consumed_expected

    def test_seed_list_covers_frame(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert len(report.challenge.seeds) == report.challenge.frame_size

    def test_frame_override(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(
            db, issuer, req, SlottedChannel(pop.tags), frame_size=140
        )
        assert report.challenge.frame_size == 140


class TestTheftDetection:
    def test_large_theft_detected(self):
        req, pop, db, issuer = _setup()
        pop.remove_random(25, np.random.default_rng(4))
        report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert report.result.verdict is Verdict.NOT_INTACT

    def test_worst_case_theft_detected_at_expected_rate(self):
        detected = 0
        rounds = 80
        for seed in range(rounds):
            req, pop, db, issuer = _setup(seed=seed)
            pop.remove_random(req.tolerance + 1, np.random.default_rng(seed + 7))
            report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
            detected += report.result.verdict is Verdict.NOT_INTACT
        assert detected / rounds > 0.88


class TestTimer:
    def test_late_proof_rejected(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(
            db, issuer, req, SlottedChannel(pop.tags), timer=1e-9
        )
        assert report.result.verdict is Verdict.REJECTED_LATE

    def test_default_timer_admits_honest_reader(self):
        req, pop, db, issuer = _setup()
        report = run_utrp_round(db, issuer, req, SlottedChannel(pop.tags))
        assert report.result.elapsed <= report.challenge.timer

    def test_scan_fn_injection_with_forged_elapsed(self):
        """A dishonest scan_fn that answers garbage quickly is caught by
        content, not timing."""
        req, pop, db, issuer = _setup()

        def forge(challenge):
            return (
                ScanResult(
                    bitstring=empty_bitstring(challenge.frame_size),
                    slots_used=0,
                    seeds_used=0,
                ),
                0.0,
            )

        report = run_utrp_round(
            db, issuer, req, SlottedChannel(pop.tags), scan_fn=forge
        )
        assert report.result.verdict is Verdict.NOT_INTACT


class TestScanTimeBounds:
    def test_min_below_max(self):
        st_min, st_max = estimate_scan_time_bounds(100, 50)
        assert st_min <= st_max

    def test_min_is_empty_frame(self):
        from repro.rfid.timing import UNIT_SLOTS

        st_min, _ = estimate_scan_time_bounds(100, 50, UNIT_SLOTS)
        assert st_min == 100.0  # unit model: f empty slots, free broadcast

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_scan_time_bounds(0, 10)
        with pytest.raises(ValueError):
            estimate_scan_time_bounds(10, -1)


class TestValidation:
    def test_population_mismatch(self):
        req, pop, db, issuer = _setup()
        wrong = MonitorRequirement(population=51, tolerance=3, confidence=0.95)
        with pytest.raises(ValueError):
            run_utrp_round(db, issuer, wrong, SlottedChannel(pop.tags))
