"""Unit tests for repro.rfid.channel — slot semantics and metering."""

import pytest

from repro.rfid.channel import ChannelStats, SlotOutcome, SlottedChannel
from repro.rfid.tag import Tag, TagState


def _channel_with_forced_slots(frame_size, slot_map):
    """Build a channel whose tags land in prescribed slots by searching
    seeds — keeps tests independent of hash internals."""
    tags = [Tag(tid) for tid in slot_map]
    channel = SlottedChannel(tags)
    for seed in range(100_000):
        channel.power_cycle()
        channel.broadcast_seed(frame_size, seed)
        if all(t.chosen_slot == s for t, s in zip(tags, slot_map.values())):
            return channel
    raise AssertionError("no seed realises the requested slot map")


class TestOutcomes:
    def test_empty_slot(self):
        channel = SlottedChannel([Tag(1)])
        channel.broadcast_seed(4, 0)
        empty = next(s for s in range(4) if s != channel.tags[0].chosen_slot)
        obs = channel.poll_slot(empty)
        assert obs.outcome is SlotOutcome.EMPTY
        assert not obs.outcome.occupied
        assert obs.payload_bits is None and obs.decoded_id is None

    def test_single_slot(self):
        channel = SlottedChannel([Tag(1)])
        channel.broadcast_seed(4, 0)
        obs = channel.poll_slot(channel.tags[0].chosen_slot)
        assert obs.outcome is SlotOutcome.SINGLE
        assert obs.outcome.occupied
        assert obs.payload_bits is not None
        assert obs.decoded_id is None  # TRP mode never reveals IDs

    def test_collision_slot(self):
        channel = _channel_with_forced_slots(2, {1: 0, 2: 0})
        obs = channel.poll_slot(0)
        assert obs.outcome is SlotOutcome.COLLISION
        assert obs.payload_bits is None
        assert len(obs.replies) == 2

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            SlottedChannel([]).poll_slot(-1)


class TestIdsOnAir:
    def test_singleton_decodes_id(self):
        channel = SlottedChannel([Tag(42)])
        channel.broadcast_seed(4, 0)
        obs = channel.poll_slot(channel.tags[0].chosen_slot, ids_on_air=True)
        assert obs.decoded_id == 42

    def test_collision_garbles_ids_but_rearms_tags(self):
        channel = _channel_with_forced_slots(2, {1: 0, 2: 0})
        obs = channel.poll_slot(0, ids_on_air=True)
        assert obs.decoded_id is None
        assert all(t.state is TagState.IDLE for t in channel.tags)

    def test_collision_without_ids_keeps_tags_silent(self):
        channel = _channel_with_forced_slots(2, {1: 0, 2: 0})
        channel.poll_slot(0, ids_on_air=False)
        assert all(t.state is TagState.SILENT for t in channel.tags)

    def test_id_transmissions_metered(self):
        channel = _channel_with_forced_slots(2, {1: 0, 2: 0})
        channel.poll_slot(0, ids_on_air=True)
        assert channel.stats.id_transmissions == 2


class TestStats:
    def test_slot_mix_accounting(self):
        channel = _channel_with_forced_slots(3, {1: 0, 2: 0, 3: 2})
        for s in range(3):
            channel.poll_slot(s)
        st = channel.stats
        assert st.slots_polled == 3
        assert st.collision_slots == 1
        assert st.singleton_slots == 1
        assert st.empty_slots == 1
        assert st.seed_broadcasts >= 1

    def test_payload_bits_counted_for_trp_singletons(self):
        channel = SlottedChannel([Tag(1)])
        channel.broadcast_seed(4, 0)
        channel.poll_slot(channel.tags[0].chosen_slot)
        assert channel.stats.reply_payload_bits == 16

    def test_merge(self):
        a = ChannelStats(seed_broadcasts=1, slots_polled=2, empty_slots=1)
        b = ChannelStats(seed_broadcasts=3, slots_polled=4, collision_slots=2)
        merged = a.merge(b)
        assert merged.seed_broadcasts == 4
        assert merged.slots_polled == 6
        assert merged.empty_slots == 1
        assert merged.collision_slots == 2

    def test_power_cycle_resets_tags_not_stats(self):
        channel = SlottedChannel([Tag(1)])
        channel.broadcast_seed(4, 0)
        channel.poll_slot(0)
        polled = channel.stats.slots_polled
        channel.power_cycle()
        assert channel.tags[0].state is TagState.IDLE
        assert channel.stats.slots_polled == polled


class TestBroadcast:
    def test_broadcast_reaches_every_tag(self):
        tags = [Tag(i) for i in range(5)]
        channel = SlottedChannel(tags)
        channel.broadcast_seed(8, 3)
        assert all(t.state is TagState.SEEDED for t in tags)

    def test_broadcast_counts(self):
        channel = SlottedChannel([Tag(1)])
        channel.broadcast_seed(8, 3)
        channel.broadcast_seed(7, 4)
        assert channel.stats.seed_broadcasts == 2


class TestFlakyChannel:
    def test_certain_outage_always_raises(self):
        import numpy as np

        from repro.rfid.channel import ChannelOutage, FlakyChannel

        channel = FlakyChannel(
            [Tag(1)], outage_rate=1.0, rng=np.random.default_rng(0)
        )
        for _ in range(3):
            with pytest.raises(ChannelOutage):
                channel.broadcast_seed(8, 3)
        assert channel.outages == 3
        # The outage struck before the field came up: tags untouched.
        assert channel.tags[0].state is TagState.IDLE
        assert channel.stats.seed_broadcasts == 0

    def test_zero_rate_behaves_like_plain_channel(self):
        from repro.rfid.channel import FlakyChannel

        channel = FlakyChannel([Tag(1), Tag(2)], outage_rate=0.0)
        channel.broadcast_seed(8, 3)
        assert all(t.state is TagState.SEEDED for t in channel.tags)
        assert channel.outages == 0

    def test_outage_rate_validated(self):
        from repro.rfid.channel import FlakyChannel

        with pytest.raises(ValueError):
            FlakyChannel([Tag(1)], outage_rate=1.5)
        with pytest.raises(ValueError):
            FlakyChannel([Tag(1)], outage_rate=0.5)  # needs an rng

    def test_surviving_session_still_loses_replies(self):
        import numpy as np

        from repro.rfid.channel import FlakyChannel

        rng = np.random.default_rng(1)
        channel = FlakyChannel(
            [Tag(i) for i in range(40)],
            outage_rate=0.0,
            miss_rate=1.0,
            rng=rng,
        )
        channel.broadcast_seed(4, 0)
        assert all(
            not channel.poll_slot(s).outcome.occupied for s in range(4)
        )
