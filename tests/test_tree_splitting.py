"""Tests for repro.aloha.tree_splitting — binary splitting inventory."""

import numpy as np
import pytest

from repro.aloha.tree_splitting import simulate_tree_splitting
from repro.rfid.ids import random_tag_ids, sequential_tag_ids


class TestCorrectness:
    def test_collects_every_tag(self):
        ids = random_tag_ids(100, np.random.default_rng(0))
        result = simulate_tree_splitting(ids, np.random.default_rng(1))
        assert sorted(result.collected_ids) == sorted(ids.tolist())

    def test_no_duplicates(self):
        ids = random_tag_ids(80, np.random.default_rng(2))
        result = simulate_tree_splitting(ids, np.random.default_rng(3))
        assert len(result.collected_ids) == len(set(result.collected_ids))

    def test_sequential_ids_also_resolve(self):
        """Adjacent IDs stress the per-level hash coins."""
        ids = sequential_tag_ids(64)
        result = simulate_tree_splitting(ids, np.random.default_rng(4))
        assert sorted(result.collected_ids) == ids.tolist()

    def test_empty_population(self):
        result = simulate_tree_splitting(
            np.array([], dtype=np.uint64), np.random.default_rng(0)
        )
        assert result.collected_ids == []
        assert result.total_slots == 1  # the initial probe slot

    def test_single_tag(self):
        result = simulate_tree_splitting(
            np.array([42], dtype=np.uint64), np.random.default_rng(0)
        )
        assert result.collected_ids == [42]
        assert result.total_slots == 1


class TestCost:
    def test_cost_close_to_theory(self):
        """Binary splitting costs ~2.9 slots per tag on average."""
        rng = np.random.default_rng(5)
        costs = []
        for seed in range(30):
            ids = random_tag_ids(200, np.random.default_rng(seed))
            costs.append(
                simulate_tree_splitting(ids, np.random.default_rng(seed)).total_slots
            )
        per_tag = np.mean(costs) / 200
        assert 2.3 < per_tag < 3.5

    def test_depth_is_logarithmic_plus_slack(self):
        ids = random_tag_ids(256, np.random.default_rng(6))
        result = simulate_tree_splitting(ids, np.random.default_rng(7))
        assert result.max_depth < 40  # ~log2(256) + collision slack

    def test_cost_grows_linearly(self):
        cost = {}
        for n in (100, 200):
            samples = [
                simulate_tree_splitting(
                    random_tag_ids(n, np.random.default_rng(s)),
                    np.random.default_rng(100 + s),
                ).total_slots
                for s in range(15)
            ]
            cost[n] = np.mean(samples)
        assert 1.6 < cost[200] / cost[100] < 2.4

    def test_deterministic_given_rngs(self):
        ids = random_tag_ids(50, np.random.default_rng(8))
        a = simulate_tree_splitting(ids, np.random.default_rng(9))
        b = simulate_tree_splitting(ids, np.random.default_rng(9))
        assert a.total_slots == b.total_slots
        assert a.collected_ids == b.collected_ids
