"""Tests for repro.obs.events — the typed event bus."""

import threading

import numpy as np

from repro.obs.events import EventBus, ObsEvent


class TestEmit:
    def test_assigns_per_scope_indices(self):
        bus = EventBus()
        bus.emit("a", scope="s1")
        bus.emit("b", scope="s1")
        bus.emit("c", scope="s2")
        indices = {(e.scope, e.index) for e in bus.events()}
        assert indices == {("s1", 0), ("s1", 1), ("s2", 0)}

    def test_default_scope(self):
        bus = EventBus()
        event = bus.emit("tick")
        assert event.scope == "main"
        assert event.index == 0

    def test_fields_survive(self):
        bus = EventBus()
        event = bus.emit("round", scope="s", group="g1", frame=128)
        assert event.fields == {"group": "g1", "frame": 128}

    def test_numpy_fields_coerced_to_builtin(self):
        bus = EventBus()
        event = bus.emit(
            "x",
            count=np.int64(3),
            rate=np.float64(0.5),
            flag=np.bool_(True),
            arr=np.array([1, 2]),
        )
        assert event.fields["count"] == 3 and type(event.fields["count"]) is int
        assert type(event.fields["rate"]) is float
        assert type(event.fields["flag"]) is bool
        assert event.fields["arr"] == [1, 2]

    def test_wall_clock_recorded(self):
        bus = EventBus()
        assert bus.emit("x").wall_ns > 0


class TestOrdering:
    def test_canonical_order_is_scope_then_index(self):
        bus = EventBus()
        bus.emit("late", scope="zz")
        bus.emit("early", scope="aa")
        bus.emit("late2", scope="zz")
        names = [e.name for e in bus.events()]
        assert names == ["early", "late", "late2"]

    def test_concurrent_publishers_get_deterministic_order(self):
        # Each thread owns one scope (the obs contract); whatever the
        # interleaving, the canonical order is identical.
        def run_once():
            bus = EventBus()

            def publish(scope):
                for i in range(50):
                    bus.emit("e", scope=scope, i=i)

            threads = [
                threading.Thread(target=publish, args=(f"s{k}",))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return [(e.scope, e.index, e.fields["i"]) for e in bus.events()]

        assert run_once() == run_once()

    def test_filter_by_name(self):
        bus = EventBus()
        bus.emit("keep", scope="s")
        bus.emit("drop", scope="s")
        bus.emit("keep", scope="s")
        assert [e.index for e in bus.events("keep")] == [0, 2]


class TestSubscribe:
    def test_subscriber_sees_every_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.name))
        bus.emit("a")
        bus.emit("b")
        assert seen == ["a", "b"]

    def test_len_and_clear(self):
        bus = EventBus()
        bus.emit("a")
        bus.emit("b", scope="other")
        assert len(bus) == 2
        assert bus.scopes() == ["main", "other"]
        bus.clear()
        assert len(bus) == 0
        # Scope counters reset too: indices restart at zero.
        assert bus.emit("a").index == 0


class TestDeterministicDict:
    def test_excludes_wall_clock(self):
        event = ObsEvent(name="x", scope="s", index=0, fields={"a": 1}, wall_ns=99)
        payload = event.deterministic_dict()
        assert "wall_ns" not in payload
        assert payload == {"name": "x", "scope": "s", "index": 0, "fields": {"a": 1}}
