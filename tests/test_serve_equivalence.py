"""Wire-path vs in-process equivalence (the serve layer's core claim).

Moving a round onto the network must change *nothing* about its
cryptographic content: for identical ``(master_seed, group, f, r)`` the
networked path and the in-process path must issue the same challenge
seeds, elicit the same bitstrings, and reach the same verdicts. These
tests build twin deployments — one driven through a loopback
``MonitoringService`` + ``ReaderClient``, one through the classic
``MonitoringServer.check_*`` calls — and compare round by round.

Also pinned here (the companion refactor): the serve layer's UTRP
deadline comes from :func:`repro.core.utrp.default_timer`, the *same*
helper the in-process path now uses, so the two paths cannot drift.
"""

import asyncio

import numpy as np

from repro.core import MonitoringServer, MonitorRequirement, default_timer
from repro.core.utrp import UNIT_SLOTS, estimate_scan_time_bounds
from repro.rfid.channel import SlottedChannel
from repro.serve import MonitoringService, ReaderClient

POP = 60
TOL = 2
ALPHA = 0.9
SEED = 21


def _inprocess_rounds(protocol: str, rounds: int):
    """The classic single-interpreter deployment, round by round."""
    requirement = MonitorRequirement(POP, TOL, ALPHA)
    monitor = MonitoringServer(
        requirement,
        rng=np.random.default_rng(SEED + 1),
        counter_tags=True,
        comm_budget=20,
    )
    from repro.rfid.population import TagPopulation

    tags = TagPopulation.create(
        POP, uses_counter=True, rng=np.random.default_rng(SEED)
    )
    monitor.register(tags.ids.tolist())
    channel = SlottedChannel(tags.tags)
    reports = []
    for _ in range(rounds):
        if protocol == "trp":
            reports.append(monitor.check_trp(channel))
        else:
            reports.append(monitor.check_utrp(channel))
    return reports


def _wire_rounds(
    protocol: str, rounds: int, wire_version: int = 1, pipeline_depth: int = 1
):
    """The same deployment split across a loopback wire."""

    async def scenario():
        svc = MonitoringService()
        svc.create_group("g", POP, TOL, ALPHA, seed=SEED, counter_tags=True)
        async with svc:
            population = MonitoringService.build_population_for(
                POP, seed=SEED, counter_tags=True
            )
            channel = SlottedChannel(population.tags)
            client = ReaderClient(
                "127.0.0.1",
                svc.port,
                channel,
                wire_version=wire_version,
                pipeline_depth=pipeline_depth,
            )
            async with client:
                assert client.negotiated_version == wire_version
                outcomes = await client.run_rounds("g", rounds, protocol)
            return outcomes, list(svc.groups["g"].reports)

    return asyncio.run(scenario())


class TestTrpEquivalence:
    def test_verdicts_seeds_and_bitstrings_match(self):
        rounds = 4
        local = _inprocess_rounds("trp", rounds)
        outcomes, remote = _wire_rounds("trp", rounds)
        assert len(remote) == rounds
        for lo, ro in zip(local, remote):
            assert ro.challenge.seed == lo.challenge.seed
            assert ro.challenge.frame_size == lo.challenge.frame_size
            np.testing.assert_array_equal(ro.scan.bitstring, lo.scan.bitstring)
            assert ro.result.verdict == lo.result.verdict
            assert ro.result.mismatched_slots == lo.result.mismatched_slots
        for outcome, lo in zip(outcomes, local):
            assert outcome.verdict == lo.result.verdict.value


class TestUtrpEquivalence:
    def test_verdicts_seeds_and_bitstrings_match(self):
        rounds = 3
        local = _inprocess_rounds("utrp", rounds)
        outcomes, remote = _wire_rounds("utrp", rounds)
        assert len(remote) == rounds
        for lo, ro in zip(local, remote):
            assert tuple(ro.challenge.seeds) == tuple(lo.challenge.seeds)
            assert ro.challenge.frame_size == lo.challenge.frame_size
            np.testing.assert_array_equal(ro.scan.bitstring, lo.scan.bitstring)
            assert ro.result.verdict == lo.result.verdict
            assert ro.scan.seeds_used == lo.scan.seeds_used
        for outcome, lo in zip(outcomes, local):
            assert outcome.verdict == lo.result.verdict.value

    def test_theft_detected_identically(self):
        # Same theft on both sides: same mismatched slot sets.
        def steal(population):
            population.remove_random(
                5, rng=np.random.default_rng(123)
            )

        requirement = MonitorRequirement(POP, TOL, ALPHA)
        monitor = MonitoringServer(
            requirement,
            rng=np.random.default_rng(SEED + 1),
            counter_tags=True,
        )
        from repro.rfid.population import TagPopulation

        tags = TagPopulation.create(
            POP, uses_counter=True, rng=np.random.default_rng(SEED)
        )
        monitor.register(tags.ids.tolist())
        steal(tags)
        local = monitor.check_utrp(SlottedChannel(tags.tags))

        async def scenario():
            svc = MonitoringService()
            svc.create_group("g", POP, TOL, ALPHA, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                steal(population)
                channel = SlottedChannel(population.tags)
                async with ReaderClient("127.0.0.1", svc.port, channel) as c:
                    await c.run_round("g", "utrp")
                return svc.groups["g"].reports[0]

        remote = asyncio.run(scenario())
        assert remote.result.verdict == local.result.verdict
        assert remote.result.verdict.value == "not-intact"
        assert (
            remote.result.mismatched_slots == local.result.mismatched_slots
        )


class TestWireV2Equivalence:
    """The tentpole claim: the negotiated binary framing — pipelined or
    not — changes *nothing* about a round's cryptographic content.

    Every (wire_version, pipeline_depth) mode must produce verdict,
    seed and bitstring sequences bit-for-bit identical to plain v1 and
    to the in-process reference, for TRP and for timer-enforced UTRP.
    """

    MODES = [(2, 1), (2, 2), (2, 4)]

    def _assert_reports_match(self, protocol, local, remote):
        assert len(remote) == len(local)
        for lo, ro in zip(local, remote):
            if protocol == "trp":
                assert ro.challenge.seed == lo.challenge.seed
            else:
                assert tuple(ro.challenge.seeds) == tuple(lo.challenge.seeds)
                assert ro.challenge.timer == lo.challenge.timer
            assert ro.challenge.frame_size == lo.challenge.frame_size
            np.testing.assert_array_equal(ro.scan.bitstring, lo.scan.bitstring)
            assert ro.result.verdict == lo.result.verdict
            assert ro.result.mismatched_slots == lo.result.mismatched_slots

    def test_trp_modes_match_inprocess_and_v1(self):
        rounds = 4
        local = _inprocess_rounds("trp", rounds)
        _, v1_reports = _wire_rounds("trp", rounds)
        self._assert_reports_match("trp", local, v1_reports)
        for wire_version, depth in self.MODES:
            outcomes, reports = _wire_rounds(
                "trp", rounds, wire_version=wire_version, pipeline_depth=depth
            )
            self._assert_reports_match("trp", local, reports)
            assert [o.round_index for o in outcomes] == list(range(rounds))
            for outcome, lo in zip(outcomes, local):
                assert outcome.verdict == lo.result.verdict.value

    def test_utrp_modes_match_inprocess_and_v1(self):
        # UTRP pins timer parity too: the v2 CHALLENGE carries the
        # timer as a binary f64 and the verdicts must stay identical.
        rounds = 3
        local = _inprocess_rounds("utrp", rounds)
        _, v1_reports = _wire_rounds("utrp", rounds)
        self._assert_reports_match("utrp", local, v1_reports)
        for wire_version, depth in self.MODES:
            outcomes, reports = _wire_rounds(
                "utrp", rounds, wire_version=wire_version, pipeline_depth=depth
            )
            self._assert_reports_match("utrp", local, reports)
            for outcome, lo in zip(outcomes, local):
                assert outcome.verdict == lo.result.verdict.value


class TestTimerParity:
    """Satellite pin: the serve path and the in-process path compute
    the UTRP deadline with the same helper, for the same population."""

    def test_default_timer_is_the_stmax_upper_bound(self):
        for f, n in [(50, 30), (137, 50), (400, 200)]:
            assert default_timer(f, n) == (
                estimate_scan_time_bounds(f, n, UNIT_SLOTS)[1]
            )

    def test_wire_challenge_timer_equals_default_timer(self):
        async def scenario():
            from repro.serve import protocol

            svc = MonitoringService()
            svc.create_group("g", POP, TOL, ALPHA, seed=SEED, counter_tags=True)
            group = svc.groups["g"]
            async with svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(writer, protocol.reseed("g", "utrp"))
                challenge = await protocol.read_frame(reader)
                writer.close()
            return challenge, group

        challenge, group = asyncio.run(scenario())
        assert challenge.type == "CHALLENGE"
        expected = default_timer(
            group.monitor.utrp_frame_size,
            POP,
            group.monitor.timing,
        )
        assert challenge["timer_us"] == expected

    def test_in_process_round_uses_default_timer(self):
        # The refactor's contract: run_utrp_round with no explicit
        # timer issues exactly default_timer(f, n).
        local = _inprocess_rounds("utrp", 1)[0]
        assert local.challenge.timer == default_timer(
            local.challenge.frame_size, POP
        )
