"""Tests for the mismatch-count and false-alarm kernels."""

import numpy as np
import pytest

from repro.core.estimation import expected_mismatch_slots
from repro.simulation.fastpath import (
    trp_false_alarm_trials,
    trp_mismatch_count_trials,
)


class TestMismatchCountKernel:
    def test_zero_missing_zero_mismatches(self):
        rng = np.random.default_rng(0)
        counts = trp_mismatch_count_trials(100, 0, 120, 20, rng)
        assert (counts == 0).all()

    def test_mean_matches_closed_form(self):
        n, x, f = 400, 20, 300
        rng = np.random.default_rng(1)
        counts = trp_mismatch_count_trials(n, x, f, 1500, rng)
        assert abs(counts.mean() - expected_mismatch_slots(n, x, f)) < 0.3

    def test_counts_bounded_by_missing(self):
        rng = np.random.default_rng(2)
        counts = trp_mismatch_count_trials(100, 7, 200, 100, rng)
        assert (counts <= 7).all() and (counts >= 0).all()

    def test_more_missing_more_mismatches(self):
        rng = np.random.default_rng(3)
        small = trp_mismatch_count_trials(300, 5, 250, 300, rng).mean()
        big = trp_mismatch_count_trials(300, 40, 250, 300, rng).mean()
        assert big > small

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            trp_mismatch_count_trials(10, 11, 20, 5, rng)
        with pytest.raises(ValueError):
            trp_mismatch_count_trials(10, 1, 20, 0, rng)


class TestFalseAlarmKernel:
    def test_perfect_channel_no_mismatches(self):
        rng = np.random.default_rng(0)
        counts = trp_false_alarm_trials(100, 120, 0.0, 20, rng)
        assert (counts == 0).all()

    def test_total_loss_mismatches_every_expected_slot(self):
        """With every reply lost, every expected-occupied slot reads 0."""
        rng = np.random.default_rng(1)
        counts = trp_false_alarm_trials(50, 200, 1.0, 10, rng)
        # ~50 tags in 200 slots: expected occupied slots close to 50
        # (collisions shave a few), and every one mismatches.
        assert (counts > 35).all()

    def test_mismatches_scale_with_loss(self):
        rng = np.random.default_rng(2)
        low = trp_false_alarm_trials(500, 400, 0.005, 200, rng).mean()
        high = trp_false_alarm_trials(500, 400, 0.05, 200, rng).mean()
        assert high > low

    def test_loss_rate_magnitude(self):
        """~eps*n lost replies, most in singleton slots -> ~mismatches."""
        rng = np.random.default_rng(3)
        counts = trp_false_alarm_trials(1000, 700, 0.01, 400, rng)
        assert 1.0 < counts.mean() < 10.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            trp_false_alarm_trials(10, 20, -0.1, 5, rng)
        with pytest.raises(ValueError):
            trp_false_alarm_trials(10, 20, 1.1, 5, rng)
        with pytest.raises(ValueError):
            trp_false_alarm_trials(10, 20, 0.5, 0, rng)


class TestTimerDesignAblation:
    def test_rows_and_monotonicity(self):
        from repro.experiments.ablations import run_timer_design

        rows = run_timer_design(
            n=300, tolerance=5, comm_latencies_us=(1_000.0, 100_000.0)
        )
        assert len(rows) == 2
        assert rows[0].budget > rows[1].budget
        assert rows[0].utrp_frame >= rows[1].utrp_frame
        for r in rows:
            assert r.utrp_frame > r.trp_frame

    def test_latency_validation(self):
        from repro.experiments.ablations import run_timer_design

        with pytest.raises(ValueError):
            run_timer_design(comm_latencies_us=(0.0,))
