"""Doc-rot guard: module paths named in the docs must exist.

DESIGN.md, README.md and docs/ refer to `repro.*` modules and
`benchmarks/...` files by name. This test extracts those references
and imports/stats them, so renaming a module without updating the
documentation fails CI instead of misleading a reader.
"""

import importlib
import os
import re

import pytest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    os.path.join("docs", "PROTOCOLS.md"),
    os.path.join("docs", "API.md"),
    os.path.join("docs", "PERFORMANCE.md"),
    os.path.join("docs", "ROBUSTNESS.md"),
    os.path.join("docs", "SERVING.md"),
    os.path.join("docs", "SHARDING.md"),
    os.path.join("docs", "OBSERVABILITY.md"),
    os.path.join("docs", "POPULATION.md"),
]

_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
_BENCH_RE = re.compile(r"`(benchmarks/[a-z0-9_]+\.py)`")
_EXAMPLE_RE = re.compile(r"`(examples/[a-z0-9_]+\.py)`")


def _doc_text():
    chunks = []
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        assert os.path.isfile(path), f"documented file missing: {rel}"
        chunks.append(open(path).read())
    return "\n".join(chunks)


class TestDocReferences:
    def test_module_references_import(self):
        text = _doc_text()
        modules = sorted(set(_MODULE_RE.findall(text)))
        assert modules, "expected module references in the docs"
        for name in modules:
            try:
                importlib.import_module(name)
            except ModuleNotFoundError:
                # `pkg.module.symbol` references: the tail must be an
                # attribute of the importable prefix.
                prefix, _, symbol = name.rpartition(".")
                module = importlib.import_module(prefix)
                assert hasattr(module, symbol), f"dangling doc reference {name}"

    def test_bench_references_exist(self):
        text = _doc_text()
        benches = sorted(set(_BENCH_RE.findall(text)))
        assert benches
        for rel in benches:
            assert os.path.isfile(os.path.join(REPO, rel)), rel

    def test_example_references_exist(self):
        text = _doc_text()
        examples = sorted(set(_EXAMPLE_RE.findall(text)))
        assert examples
        for rel in examples:
            assert os.path.isfile(os.path.join(REPO, rel)), rel

    def test_core_docs_exist(self):
        for rel in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert os.path.isfile(os.path.join(REPO, rel))

    def test_experiments_md_covers_every_figure(self):
        text = open(os.path.join(REPO, "EXPERIMENTS.md")).read()
        for fig in ("Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"):
            assert fig in text

    def test_experiments_md_covers_every_ablation(self):
        text = open(os.path.join(REPO, "EXPERIMENTS.md")).read()
        for letter in "ABCDEFGHIJK":
            assert f"Abl. {letter}" in text, f"Abl. {letter} undocumented"
