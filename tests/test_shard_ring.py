"""Tests for repro.shard.ring — the consistent-hash group placement.

The ring's contract is what makes re-sharding cheap and failover
bounded: placement is a pure function of ``(nodes, replicas, seed)``
(so every process — gateway, supervisor, tests — computes the same
owner without coordination), and removing one node only moves that
node's keys (so a worker death re-homes its shard and nothing else).
"""

import json
import math
import subprocess
import sys

import pytest

from repro.shard import HashRing

GROUPS = [f"group-{i:03d}" for i in range(40)]
WORKERS = [f"w{i:02d}" for i in range(5)]


def _placement(nodes, keys, replicas=64, seed=0):
    ring = HashRing(nodes, replicas=replicas, seed=seed)
    return {key: ring.owner(key) for key in keys}


class TestDeterminism:
    def test_same_inputs_same_placement(self):
        assert _placement(WORKERS, GROUPS) == _placement(WORKERS, GROUPS)

    def test_node_insertion_order_is_irrelevant(self):
        assert _placement(WORKERS, GROUPS) == _placement(
            list(reversed(WORKERS)), GROUPS
        )

    def test_seed_changes_placement(self):
        # Not a hard guarantee per key, but across 40 keys the two
        # seeds must not agree everywhere — otherwise seed is dead.
        a = _placement(WORKERS, GROUPS, seed=0)
        b = _placement(WORKERS, GROUPS, seed=1)
        assert a != b

    def test_identical_across_processes(self):
        # The cross-process pin: a fresh interpreter computes the very
        # same placement (no PYTHONHASHSEED dependence — blake2b only).
        script = (
            "import json;from repro.shard import HashRing;"
            f"ring = HashRing({WORKERS!r}, replicas=64, seed=0);"
            f"print(json.dumps({{k: ring.owner(k) for k in {GROUPS!r}}}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(out.stdout) == _placement(WORKERS, GROUPS)


class TestStability:
    def test_removing_one_node_moves_only_its_keys(self):
        before = _placement(WORKERS, GROUPS)
        survivors = WORKERS[:-1]
        after = _placement(survivors, GROUPS)
        moved = [k for k in GROUPS if before[k] != after[k]]
        # Exactly the dead node's keys move; every survivor's keys stay.
        assert set(moved) == {k for k in GROUPS if before[k] == WORKERS[-1]}

    def test_adding_one_node_moves_a_bounded_fraction(self):
        before = _placement(WORKERS, GROUPS)
        after = _placement(WORKERS + ["w05"], GROUPS)
        moved = [k for k in GROUPS if before[k] != after[k]]
        # The newcomer should claim about 1/(N+1) of the keys; allow
        # 2x slack over the ideal share for hash-placement variance.
        bound = 2 * math.ceil(len(GROUPS) / (len(WORKERS) + 1))
        assert len(moved) <= bound
        # And everything that moved, moved *onto* the newcomer.
        assert all(after[k] == "w05" for k in moved)

    def test_every_node_owns_something_at_scale(self):
        ring = HashRing(WORKERS, replicas=64, seed=0)
        assignments = ring.assignments(GROUPS)
        assert set(assignments) == set(WORKERS)
        assert sum(len(v) for v in assignments.values()) == len(GROUPS)


class TestRejoinStability:
    """The self-healing contract: a restarted worker re-enters the ring
    exactly where it left, so hand-back re-homes precisely the groups
    failover moved away — nothing else ever migrates."""

    def test_remove_then_re_add_restores_original_placement(self):
        # Placement is a pure function of the node *set*: the ring a
        # rejoined worker re-enters is bit-identical to one that never
        # saw the death, so every adopted group's home owner is again
        # its pre-kill owner.
        reference = _placement(WORKERS, GROUPS)
        ring = HashRing(WORKERS, replicas=64, seed=0)
        ring.remove("w02")
        ring.add("w02")
        assert {k: ring.owner(k) for k in GROUPS} == reference

    def test_down_window_movement_is_bounded_to_dead_nodes_keys(self):
        # During the whole down window, the only keys whose owner
        # differs from the steady state are the dead node's own — the
        # rejoin hand-back set equals the failover adoption set.
        before = _placement(WORKERS, GROUPS)
        ring = HashRing(WORKERS, replicas=64, seed=0)
        ring.remove("w02")
        during = {k: ring.owner(k) for k in GROUPS}
        moved = {k for k in GROUPS if during[k] != before[k]}
        assert moved == {k for k in GROUPS if before[k] == "w02"}
        # No moved key landed on the dead node, obviously — and each
        # went to a then-live survivor.
        assert all(during[k] != "w02" for k in moved)
        ring.add("w02")
        after = {k: ring.owner(k) for k in GROUPS}
        handback = {k for k in GROUPS if after[k] != during[k]}
        assert handback == moved

    def test_repeated_bounce_is_idempotent(self):
        ring = HashRing(WORKERS, replicas=64, seed=0)
        reference = {k: ring.owner(k) for k in GROUPS}
        for _ in range(3):
            ring.remove("w04")
            ring.add("w04")
        assert {k: ring.owner(k) for k in GROUPS} == reference


class TestApi:
    def test_add_remove_contains(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and len(ring) == 2
        ring.add("c")
        assert ring.nodes == ("a", "b", "c")
        ring.remove("b")
        assert "b" not in ring
        assert all(ring.owner(k) in ("a", "c") for k in GROUPS)

    def test_duplicate_add_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).add("a")

    def test_unknown_remove_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).remove("b")

    def test_empty_ring_has_no_owner(self):
        ring = HashRing(["a"])
        ring.remove("a")
        with pytest.raises(LookupError):
            ring.owner("group-000")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=True)
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing([""])
