"""Tests for repro.experiments.export — CSV output."""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7
from repro.experiments.export import figure_rows, rows_to_csv, write_csv
from repro.experiments.grid import ExperimentGrid

TINY = ExperimentGrid(
    populations=(100,), tolerances=(5,), trials=20, cost_trials=2,
    master_seed=3,
)


class TestRowsToCsv:
    def test_header_and_rows(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_quoting(self):
        text = rows_to_csv(["x"], [["has,comma"]])
        assert '"has,comma"' in text

    def test_width_checked(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a", "b"], [[1]])

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["n"], [[1], [2]])
        assert open(path).read().splitlines() == ["n", "1", "2"]


class TestFigureRows:
    def test_fig4(self):
        headers, rows = figure_rows(fig4.run(TINY))
        assert headers[0] == "n" and "collect_all_slots" in headers
        assert len(rows) == 1

    def test_fig5(self):
        headers, rows = figure_rows(fig5.run(TINY))
        assert "detection_rate" in headers
        assert 0.0 <= rows[0][3] <= 1.0

    def test_fig6(self):
        headers, rows = figure_rows(fig6.run(TINY))
        assert "utrp_slots" in headers
        assert rows[0][3] > rows[0][2]  # UTRP > TRP

    def test_fig7(self):
        headers, rows = figure_rows(fig7.run(TINY))
        assert "trials" in headers
        assert rows[0][6] == TINY.trials

    def test_csv_round_trip(self):
        import csv as csv_mod
        import io

        headers, rows = figure_rows(fig6.run(TINY))
        text = rows_to_csv(headers, rows)
        parsed = list(csv_mod.reader(io.StringIO(text)))
        assert parsed[0] == list(headers)
        assert len(parsed) == len(rows) + 1

    def test_unexportable_rejected(self):
        class Empty:
            rows = []

        with pytest.raises(TypeError):
            figure_rows(Empty())

        class Odd:
            rows = [object()]

        with pytest.raises(TypeError):
            figure_rows(Odd())


class TestCliCsv:
    def test_fig6_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "fig6.csv")
        assert main(["fig6", "--trials", "1", "--csv", path]) == 0
        lines = open(path).read().splitlines()
        assert lines[0].startswith("n,m,")
        assert len(lines) > 1
