"""Smoke tests: every example script must run clean, start to finish.

Examples are documentation that executes; a broken one is a broken
promise to the first user. Each runs in a subprocess with the repo's
interpreter and must exit 0 with its headline output present.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "examples")
)

CASES = [
    ("quickstart.py", "alerts raised"),
    ("warehouse_monitoring.py", "pages sent to the operator"),
    ("deployment_planner.py", "planning sheet"),
    ("multi_group_store.py", "total alerts"),
    ("missing_tag_forensics.py", "confirmed missing items"),
    ("protocol_trace_walkthrough.py", "tag counters after the scan"),
    ("dishonest_reader_audit.py", "forged UTRP proofs caught"),
    ("warehouse_remote_readers.py", "UTRP timer alarms: 1 of 3 docks"),
]


def test_every_example_has_a_smoke_case():
    on_disk = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert on_disk == {name for name, _ in CASES}


@pytest.mark.parametrize("script,marker", CASES)
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout
