"""Tests for repro.shard failover: snapshots, restore, the kill drill.

The failover substrate's contract: a group restored from its snapshot
onto a *different* service continues exactly where the dead one
stopped — same challenge stream (RNG replay), same counters, same
verdicts — so a reader that reconnects cannot tell a failover happened.
"""

import asyncio
import json

import pytest

from repro.serve import MonitoringService, ReaderClient
from repro.shard.failover import reconcile_snapshots
from repro.shard import (
    ShardConfig,
    ShardGroupSpec,
    initial_snapshot,
    load_snapshot,
    restore_group,
    run_drill,
    snapshot_path,
    write_snapshot,
)
from repro.shard.worker import ShardWorkerService
from repro.rfid.channel import SlottedChannel

POP = 30
SEED = 23


def _spec(counter_tags=False):
    return ShardGroupSpec(
        name="g", population=POP, tolerance=2, confidence=0.9,
        seed=SEED, counter_tags=counter_tags,
    )


def _channel(counter_tags=False):
    population = MonitoringService.build_population_for(
        POP, seed=SEED, counter_tags=counter_tags
    )
    return SlottedChannel(population.tags)


async def _run_rounds(service, channel, rounds, protocol):
    async with ReaderClient("127.0.0.1", service.port, channel) as client:
        return [await client.run_round("g", protocol) for _ in range(rounds)]


def _outcome_key(outcome):
    return (
        outcome.round_index,
        outcome.verdict,
        outcome.frame_size,
        outcome.mismatched_slots,
    )


class TestRestoreContinuation:
    """Kill-and-adopt equals never-killed, round for round."""

    def _reference(self, protocol, counter_tags, rounds, tmp_path):
        async def scenario():
            service = ShardWorkerService(state_dir=str(tmp_path / "ref"))
            (tmp_path / "ref").mkdir(exist_ok=True)
            service.host_spec(_spec(counter_tags))
            channel = _channel(counter_tags)
            async with service:
                return await _run_rounds(service, channel, rounds, protocol)

        return asyncio.run(scenario())

    def _interrupted(self, protocol, counter_tags, split, rounds, tmp_path):
        state_dir = str(tmp_path / "state")
        (tmp_path / "state").mkdir(exist_ok=True)

        async def scenario():
            channel = _channel(counter_tags)
            first = ShardWorkerService(state_dir=state_dir)
            first.host_spec(_spec(counter_tags))
            async with first:
                outcomes = await _run_rounds(first, channel, split, protocol)
            # "first" is gone; a survivor adopts from the snapshot it
            # wrote before flushing its last VERDICT frame.
            second = ShardWorkerService(state_dir=state_dir)
            doc = load_snapshot(state_dir, "g")
            rounds_verified, last_verdict = second.adopt(doc)
            assert rounds_verified == split
            assert last_verdict is not None
            assert last_verdict["round"] == split - 1
            async with second:
                outcomes += await _run_rounds(
                    second, channel, rounds - split, protocol
                )
            return outcomes

        return asyncio.run(scenario())

    def test_trp_continuation_is_bit_identical(self, tmp_path):
        reference = self._reference("trp", False, 4, tmp_path)
        interrupted = self._interrupted("trp", False, 2, 4, tmp_path)
        assert list(map(_outcome_key, interrupted)) == list(
            map(_outcome_key, reference)
        )

    def test_utrp_counter_continuation_is_bit_identical(self, tmp_path):
        # The stateful case: counters advanced on both sides before the
        # kill; the snapshot's counter overlay must line back up with
        # the reader's own (uninterrupted) counter state.
        reference = self._reference("utrp", True, 4, tmp_path)
        interrupted = self._interrupted("utrp", True, 2, 4, tmp_path)
        assert list(map(_outcome_key, interrupted)) == list(
            map(_outcome_key, reference)
        )
        assert all(o.verdict == "intact" for o in interrupted)


class TestSnapshotValidation:
    def test_initial_snapshot_roundtrips_through_disk(self, tmp_path):
        spec = _spec()
        write_snapshot(str(tmp_path), initial_snapshot(spec))
        doc = load_snapshot(str(tmp_path), "g")
        assert doc["spec"] == spec.to_dict()
        assert doc["rounds_verified"] == 0
        assert doc["state"] is None

    def test_missing_snapshot_is_none(self, tmp_path):
        assert load_snapshot(str(tmp_path), "nope") is None

    def test_write_creates_missing_state_dir(self, tmp_path):
        # A user-supplied --state-dir need not exist yet; the first
        # snapshot write must create it instead of crashing the worker.
        state_dir = str(tmp_path / "not" / "yet" / "there")
        write_snapshot(state_dir, initial_snapshot(_spec()))
        assert load_snapshot(state_dir, "g")["rounds_verified"] == 0

    def test_wrong_format_is_corrupt_not_fatal(self, tmp_path):
        # A foreign document must not raise out of a failover path:
        # the caller falls back to the initial snapshot and the
        # corruption callback ticks the counter.
        path = snapshot_path(str(tmp_path), "g")
        with open(path, "w") as fh:
            json.dump({"format": "other", "group": "g"}, fh)
        seen = []
        assert (
            load_snapshot(
                str(tmp_path), "g", on_corrupt=lambda g, e: seen.append((g, e))
            )
            is None
        )
        assert len(seen) == 1 and seen[0][0] == "g"
        assert isinstance(seen[0][1], ValueError)

    def test_bad_protocol_history_is_corrupt_not_fatal(self, tmp_path):
        doc = initial_snapshot(_spec())
        doc["protocol_history"] = ["trp", "quantum"]
        write_snapshot(str(tmp_path), doc)
        seen = []
        assert (
            load_snapshot(
                str(tmp_path), "g", on_corrupt=lambda g, e: seen.append(g)
            )
            is None
        )
        assert seen == ["g"]

    def test_seed_mismatch_rejected_on_restore(self, tmp_path):
        # A snapshot whose persisted tag IDs disagree with the spec's
        # deterministic rebuild (here: the spec seed was tampered with)
        # must be refused, not silently adopted.
        state_dir = str(tmp_path)

        async def scenario():
            first = ShardWorkerService(state_dir=state_dir)
            first.host_spec(_spec())
            channel = _channel()
            async with first:
                await _run_rounds(first, channel, 1, "trp")

        asyncio.run(scenario())
        doc = load_snapshot(state_dir, "g")
        doc["spec"]["seed"] = SEED + 999
        second = ShardWorkerService(state_dir=str(tmp_path / "other"))
        (tmp_path / "other").mkdir()
        with pytest.raises(ValueError, match="deterministic rebuild"):
            restore_group(second, doc)


class TestSnapshotCorruption:
    """Torn, truncated and half-replaced files must read as None."""

    def test_truncation_mid_json_reads_as_none(self, tmp_path):
        write_snapshot(str(tmp_path), initial_snapshot(_spec()))
        path = snapshot_path(str(tmp_path), "g")
        with open(path) as fh:
            payload = fh.read()
        with open(path, "w") as fh:
            fh.write(payload[: len(payload) // 2])
        seen = []
        assert (
            load_snapshot(str(tmp_path), "g", on_corrupt=lambda g, e: seen.append(g)) is None
        )
        assert seen == ["g"]

    def test_empty_file_reads_as_none(self, tmp_path):
        path = snapshot_path(str(tmp_path), "g")
        open(path, "w").close()
        assert load_snapshot(str(tmp_path), "g") is None

    def test_non_object_document_reads_as_none(self, tmp_path):
        path = snapshot_path(str(tmp_path), "g")
        with open(path, "w") as fh:
            json.dump(["not", "a", "snapshot"], fh)
        seen = []
        assert (
            load_snapshot(str(tmp_path), "g", on_corrupt=lambda g, e: seen.append(g)) is None
        )
        assert seen == ["g"]

    def test_injected_torn_write_caught_at_read_back(self, tmp_path):
        # A torn write never replaces the good snapshot: read-back
        # verification detects the truncation before the atomic rename.
        write_snapshot(str(tmp_path), initial_snapshot(_spec()))
        doc = initial_snapshot(_spec())
        doc["protocol_history"] = ["trp"]
        doc["rounds_verified"] = 1
        with pytest.raises(OSError, match="read-back"):
            write_snapshot(str(tmp_path), doc, fault="torn-write")
        assert load_snapshot(str(tmp_path), "g")["rounds_verified"] == 0
        assert not (tmp_path / "g.snapshot.json.tmp").exists()

    def test_injected_short_write_caught_at_read_back(self, tmp_path):
        with pytest.raises(OSError, match="read-back"):
            write_snapshot(
                str(tmp_path), initial_snapshot(_spec()), fault="short-write"
            )
        assert load_snapshot(str(tmp_path), "g") is None
        assert not (tmp_path / "g.snapshot.json.tmp").exists()

    def test_injected_enospc_keeps_previous_snapshot(self, tmp_path):
        write_snapshot(str(tmp_path), initial_snapshot(_spec()))
        doc = initial_snapshot(_spec())
        doc["protocol_history"] = ["trp"]
        doc["rounds_verified"] = 1
        with pytest.raises(OSError):
            write_snapshot(str(tmp_path), doc, fault="enospc")
        # The failed write never touched the good file.
        assert load_snapshot(str(tmp_path), "g")["rounds_verified"] == 0

    def test_injected_fsync_fail_keeps_previous_snapshot(self, tmp_path):
        write_snapshot(str(tmp_path), initial_snapshot(_spec()))
        with pytest.raises(OSError):
            write_snapshot(
                str(tmp_path), initial_snapshot(_spec()), fault="fsync-fail"
            )
        assert load_snapshot(str(tmp_path), "g") is not None
        # ... and left no temp file behind to confuse a later replace.
        assert not (tmp_path / "g.snapshot.json.tmp").exists()

    def test_concurrent_second_writer_last_replace_wins(self, tmp_path):
        # Two writers racing the same group: each write is tmp+replace,
        # so the reader sees one complete document or the other, never
        # an interleaving — and a leftover stale tmp file is inert.
        older = initial_snapshot(_spec())
        newer = initial_snapshot(_spec())
        newer["protocol_history"] = ["trp"]
        newer["rounds_verified"] = 1
        write_snapshot(str(tmp_path), older)
        with open(snapshot_path(str(tmp_path), "g") + ".tmp", "w") as fh:
            fh.write(json.dumps(older)[:10])  # a torn write in flight
        write_snapshot(str(tmp_path), newer)
        doc = load_snapshot(str(tmp_path), "g")
        assert doc is not None and doc["rounds_verified"] == 1

    def test_unknown_fault_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="disk-fault"):
            write_snapshot(
                str(tmp_path), initial_snapshot(_spec()), fault="gamma-ray"
            )


class TestReleaseHandback:
    """The anti-entropy hand-back: release -> handback continues the
    verdict sequence exactly where the survivor stopped."""

    def test_release_then_handback_is_bit_identical(self, tmp_path):
        rounds, split = 4, 2

        def reference():
            async def scenario():
                (tmp_path / "ref").mkdir(exist_ok=True)
                service = ShardWorkerService(state_dir=str(tmp_path / "ref"))
                service.host_spec(_spec())
                channel = _channel()
                async with service:
                    return await _run_rounds(service, channel, rounds, "trp")

            return asyncio.run(scenario())

        def handed_back():
            state_dir = str(tmp_path / "state")
            (tmp_path / "state").mkdir(exist_ok=True)

            async def scenario():
                channel = _channel()
                survivor = ShardWorkerService(state_dir=state_dir)
                survivor.host_spec(_spec())
                async with survivor:
                    outcomes = await _run_rounds(
                        survivor, channel, split, "trp"
                    )
                    # The home worker rejoined: the survivor releases
                    # the group (final snapshot, stops serving it) ...
                    doc = await survivor.release_group("g")
                    assert "g" not in survivor.groups
                # ... and the rejoined worker picks it up via handback.
                home = ShardWorkerService(state_dir=state_dir)
                rounds_verified, last_verdict = home.handback(doc)
                assert rounds_verified == split
                assert last_verdict is not None
                async with home:
                    outcomes += await _run_rounds(
                        home, channel, rounds - split, "trp"
                    )
                return outcomes

            return asyncio.run(scenario())

        assert list(map(_outcome_key, handed_back())) == list(
            map(_outcome_key, reference())
        )

    def test_release_unknown_group_raises(self, tmp_path):
        async def scenario():
            service = ShardWorkerService(state_dir=str(tmp_path))
            with pytest.raises(ValueError, match="not hosted"):
                await service.release_group("ghost")

        asyncio.run(scenario())


class TestKillDrill:
    """The acceptance drill at test scale: zero lost verdicts."""

    def test_drill_passes_with_zero_loss(self):
        config = ShardConfig(
            workers=2,
            groups=6,
            population=POP,
            tolerance=2,
            seed=SEED,
            heartbeat_interval_s=0.2,
        )
        result = run_drill(config, rounds=2, kill_fraction=0.3, concurrency=4)
        assert result.killed_worker, "drill never killed a worker"
        assert result.failovers >= 1
        assert result.groups_resharded >= 1
        assert result.lost_verdicts == 0
        assert result.protocol_errors == 0
        assert result.mismatches == []
        assert result.verdicts_completed == result.expected_verdicts
        assert result.ok

    def test_drill_forces_counter_free_groups(self):
        # counter_tags on the config must not break the bit-identity
        # claim — run_drill replaces it.
        config = ShardConfig(
            workers=2, groups=4, population=POP, tolerance=2,
            seed=SEED, counter_tags=True, heartbeat_interval_s=0.2,
        )
        result = run_drill(config, rounds=2, kill_fraction=0.4, concurrency=4)
        assert result.lost_verdicts == 0
        assert result.ok

    def test_drill_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            run_drill(kill_fraction=0.0)
        with pytest.raises(ValueError):
            run_drill(kill_fraction=1.0)
        with pytest.raises(ValueError):
            run_drill(rounds=0)
        with pytest.raises(ValueError):
            run_drill(concurrency=0)


class TestChurnContinuation:
    """Failover under live membership (repro.population).

    A worker that dies after membership deltas must be adopted at the
    *latest* population epoch: the snapshot carries the membership log,
    restore replays it interleaved with the protocol history, and the
    continued rounds are bit-identical to a never-killed worker serving
    the same churned group.
    """

    FRESH = 0x5EED_1000

    async def _churned_rounds(self, service, channel, kill_after=None):
        """2 rounds, a replace + a commission, 2 more rounds; returns
        (outcomes, epoch). With kill_after, stop after that many rounds
        (post-churn kill point is between rounds 3 and 4)."""
        from repro.rfid.tag import Tag

        outcomes = []
        async with ReaderClient("127.0.0.1", service.port, channel) as client:
            for _ in range(2):
                outcomes.append(await client.run_round("g", "trp"))
            victim = channel.tags[0]
            await client.update_membership(
                "g", "replace", [victim.tag_id],
                replacement_ids=[self.FRESH],
            )
            channel.tags.remove(victim)
            channel.tags.append(Tag(self.FRESH))
            await client.update_membership(
                "g", "commission", [self.FRESH + 1]
            )
            channel.tags.append(Tag(self.FRESH + 1))
            remaining = 2 if kill_after is None else kill_after - 2
            for _ in range(remaining):
                outcomes.append(await client.run_round("g", "trp"))
        return outcomes

    def _reference(self, tmp_path):
        async def scenario():
            state_dir = tmp_path / "ref"
            state_dir.mkdir(exist_ok=True)
            service = ShardWorkerService(state_dir=str(state_dir))
            service.host_spec(_spec())
            channel = _channel()
            async with service:
                return await self._churned_rounds(service, channel)

        return asyncio.run(scenario())

    def test_post_churn_failover_is_bit_identical(self, tmp_path):
        state_dir = str(tmp_path / "state")
        (tmp_path / "state").mkdir(exist_ok=True)

        async def interrupted():
            channel = _channel()
            first = ShardWorkerService(state_dir=state_dir)
            first.host_spec(_spec())
            async with first:
                outcomes = await self._churned_rounds(
                    first, channel, kill_after=3
                )
            # first is dead; the survivor adopts the churned snapshot.
            second = ShardWorkerService(state_dir=state_dir)
            doc = load_snapshot(state_dir, "g")
            assert doc["population_epoch"] == 2
            assert len(doc["membership_log"]) == 2
            rounds_verified, _ = second.adopt(doc)
            assert rounds_verified == 3
            monitor = second.groups["g"].monitor
            assert monitor.population_epoch == 2
            assert monitor.requirement.population == POP + 1
            async with second:
                async with ReaderClient(
                    "127.0.0.1", second.port, channel
                ) as client:
                    outcomes.append(await client.run_round("g", "trp"))
            return outcomes

        reference = self._reference(tmp_path)
        restored = asyncio.run(interrupted())
        assert list(map(_outcome_key, restored)) == list(
            map(_outcome_key, reference)
        )
        assert all(o.verdict == "intact" for o in restored)

    def test_membership_log_restores_with_original_round_stamps(
        self, tmp_path
    ):
        state_dir = str(tmp_path / "state")
        (tmp_path / "state").mkdir(exist_ok=True)

        async def scenario():
            channel = _channel()
            first = ShardWorkerService(state_dir=state_dir)
            first.host_spec(_spec())
            async with first:
                await self._churned_rounds(first, channel, kill_after=4)
            second = ShardWorkerService(state_dir=state_dir)
            second.adopt(load_snapshot(state_dir, "g"))
            return (
                load_snapshot(state_dir, "g")["membership_log"],
                second.groups["g"].monitor.membership_log,
            )

        persisted, restored = asyncio.run(scenario())
        # Replay must not re-stamp at_round: a second failover of the
        # restored worker depends on the original interleave points.
        assert restored == persisted
        assert all(entry["at_round"] == 2 for entry in persisted)

    def test_pre_churn_snapshots_omit_population_keys(self, tmp_path):
        # Byte-level equivalence: a never-churned group's snapshot has
        # no population_epoch / membership_log keys at all.
        doc = initial_snapshot(_spec())
        assert "population_epoch" not in doc
        assert "membership_log" not in doc

    def test_reconcile_prefers_higher_epoch_at_equal_rounds(self):
        stale = {"rounds_verified": 5}
        churned = {"rounds_verified": 5, "population_epoch": 3,
                   "membership_log": []}
        assert reconcile_snapshots(stale, churned) == churned
        assert reconcile_snapshots(churned, stale) == churned
        # ...but verdict history still dominates the epoch.
        longer = {"rounds_verified": 6}
        assert reconcile_snapshots(longer, churned) == longer
