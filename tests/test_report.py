"""Tests for repro.experiments.report — text rendering."""

import pytest

from repro.experiments.report import render_bar, render_series, render_table


class TestTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [(1, 2), (30, 40)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["x"], [(0.123456,)])
        assert "0.1235" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_alignment(self):
        text = render_table(["num"], [(5,), (500,)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("5") and rows[1].endswith("500")


class TestBar:
    def test_full_and_empty(self):
        assert render_bar(1.0, 0.0, 1.0, width=10) == "#" * 10
        assert render_bar(0.0, 0.0, 1.0, width=10) == "." * 10

    def test_midpoint(self):
        bar = render_bar(0.5, 0.0, 1.0, width=10)
        assert bar.count("#") == 5

    def test_clipping(self):
        assert render_bar(2.0, 0.0, 1.0, width=4) == "####"
        assert render_bar(-1.0, 0.0, 1.0, width=4) == "...."

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bar(0.5, 1.0, 1.0)


class TestSeries:
    def test_one_line_per_value(self):
        text = render_series([100, 200], [0.95, 0.96], 0.9, 1.0)
        assert len(text.splitlines()) == 2

    def test_title_line(self):
        text = render_series([1], [0.5], 0.0, 1.0, title="panel")
        assert text.splitlines()[0] == "panel"

    def test_values_printed(self):
        text = render_series([1], [0.9512], 0.9, 1.0)
        assert "0.9512" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [0.5], 0.0, 1.0)
