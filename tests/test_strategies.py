"""Tests for repro.adversary.strategies — pluggable collusion play."""

import numpy as np
import pytest

from repro.adversary.collusion import simulate_colluding_utrp_scan
from repro.adversary.strategies import (
    EagerStrategy,
    RandomStrategy,
    ReserveStrategy,
    SpreadStrategy,
    SyncContext,
    simulate_strategy_collusion,
)
from repro.server.verifier import expected_utrp_bitstring


def _case(n=40, stolen=6, f=60, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 1 << 62, size=n).astype(np.uint64)
    counters = np.zeros(n, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    mask[rng.choice(n, stolen, replace=False)] = True
    seeds = rng.integers(0, 1 << 62, size=f).tolist()
    return ids, counters, mask, seeds


class TestStrategyDecisions:
    def _ctx(self, **kw):
        defaults = dict(global_slot=0, frame_size=100, budget_left=5,
                        empties_seen=0)
        defaults.update(kw)
        return SyncContext(**defaults)

    def test_eager_spends_while_budget(self):
        s = EagerStrategy()
        assert s.spend(self._ctx(budget_left=1))
        assert not s.spend(self._ctx(budget_left=0))

    def test_spread_period(self):
        s = SpreadStrategy(period=3)
        assert s.spend(self._ctx(empties_seen=0))
        assert not s.spend(self._ctx(empties_seen=1))
        assert not s.spend(self._ctx(empties_seen=2))
        assert s.spend(self._ctx(empties_seen=3))

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            SpreadStrategy(period=0)

    def test_reserve_waits(self):
        s = ReserveStrategy(start_fraction=0.5)
        assert not s.spend(self._ctx(global_slot=10, frame_size=100))
        assert s.spend(self._ctx(global_slot=60, frame_size=100))

    def test_reserve_validation(self):
        with pytest.raises(ValueError):
            ReserveStrategy(start_fraction=1.0)

    def test_random_extremes(self):
        rng = np.random.default_rng(0)
        always = RandomStrategy(1.0, rng)
        never = RandomStrategy(0.0, rng)
        assert always.spend(self._ctx())
        assert not never.spend(self._ctx())

    def test_random_validation(self):
        with pytest.raises(ValueError):
            RandomStrategy(1.5, np.random.default_rng(0))


class TestSimulation:
    @pytest.mark.parametrize("seed", range(10))
    def test_eager_reproduces_paper_kernel(self, seed):
        """EagerStrategy must be bit-identical to the Sec. 5.4 kernel."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 50))
        stolen = int(rng.integers(1, min(7, n - 1)))
        f = int(rng.integers(n, 2 * n))
        budget = int(rng.integers(0, 15))
        ids, counters, mask, seeds = _case(n, stolen, f, seed + 100)
        old = simulate_colluding_utrp_scan(ids, counters, mask, f, seeds, budget)
        new = simulate_strategy_collusion(
            ids, counters, mask, f, seeds, budget, EagerStrategy()
        )
        assert np.array_equal(old.bitstring, new.bitstring)
        assert old.comms_used == new.comms_used

    def test_unlimited_eager_is_perfect_forgery(self):
        ids, counters, mask, seeds = _case()
        forged = simulate_strategy_collusion(
            ids, counters, mask, 60, seeds, 10_000, EagerStrategy()
        )
        pred = expected_utrp_bitstring(ids, counters, 60, seeds)
        assert np.array_equal(forged.bitstring, pred.bitstring)

    def test_budget_respected_by_all_strategies(self):
        ids, counters, mask, seeds = _case()
        rng = np.random.default_rng(1)
        for strategy in (
            EagerStrategy(),
            SpreadStrategy(2),
            ReserveStrategy(0.3),
            RandomStrategy(0.5, rng),
        ):
            forged = simulate_strategy_collusion(
                ids, counters, mask, 60, seeds, 7, strategy
            )
            assert forged.comms_used <= 7

    def test_validation(self):
        ids, counters, mask, seeds = _case()
        with pytest.raises(ValueError):
            simulate_strategy_collusion(
                ids, counters, mask, 60, seeds[:10], 5, EagerStrategy()
            )
        with pytest.raises(ValueError):
            simulate_strategy_collusion(
                ids, counters, mask, 60, seeds, -1, EagerStrategy()
            )
        with pytest.raises(ValueError):
            simulate_strategy_collusion(
                ids, counters[:-1], mask, 60, seeds, 5, EagerStrategy()
            )

    def test_strategies_produce_different_forgeries(self):
        """With a constrained budget, schedules genuinely differ."""
        ids, counters, mask, seeds = _case(n=50, stolen=8, f=80, seed=5)
        eager = simulate_strategy_collusion(
            ids, counters, mask, 80, seeds, 5, EagerStrategy()
        )
        reserve = simulate_strategy_collusion(
            ids, counters, mask, 80, seeds, 5, ReserveStrategy(0.5)
        )
        assert not np.array_equal(eager.bitstring, reserve.bitstring)
