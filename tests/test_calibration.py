"""Tests for repro.core.calibration — empirical frame sizing."""

import numpy as np
import pytest

from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.calibration import calibrate_trp_frame_size


class TestCalibration:
    def test_agrees_with_eq2(self):
        """Measurement and Theorem 1 must land in the same place."""
        rng = np.random.default_rng(0)
        result = calibrate_trp_frame_size(500, 10, 0.95, rng)
        analytic = optimal_trp_frame_size(500, 10, 0.95)
        # Monte Carlo bisection is fuzzy near the threshold; agreement
        # within ~10% of the analytic frame validates both ends.
        assert abs(result.frame_size - analytic) < 0.12 * analytic

    def test_calibrated_frame_actually_detects(self):
        rng = np.random.default_rng(1)
        result = calibrate_trp_frame_size(300, 5, 0.95, rng)
        g = detection_probability(300, 6, result.frame_size)
        assert g > 0.93

    def test_reports_measurement_with_ci(self):
        rng = np.random.default_rng(2)
        result = calibrate_trp_frame_size(200, 5, 0.95, rng)
        assert result.ci_low <= result.measured_rate <= result.ci_high
        assert result.trials_spent > 0
        assert len(result.probes) >= 2

    def test_reproducible_given_rng(self):
        a = calibrate_trp_frame_size(200, 5, 0.95, np.random.default_rng(3))
        b = calibrate_trp_frame_size(200, 5, 0.95, np.random.default_rng(3))
        assert a.frame_size == b.frame_size

    def test_higher_alpha_bigger_frame(self):
        lo = calibrate_trp_frame_size(300, 5, 0.90, np.random.default_rng(4))
        hi = calibrate_trp_frame_size(300, 5, 0.99, np.random.default_rng(4))
        assert hi.frame_size > lo.frame_size

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            calibrate_trp_frame_size(10, 10, 0.95, rng)
        with pytest.raises(ValueError):
            calibrate_trp_frame_size(100, 5, 0.95, rng, trials_per_probe=0)
        with pytest.raises(ValueError):
            calibrate_trp_frame_size(
                100, 5, 0.95, rng, confirmation_trials=0
            )
