"""Tests for repro.server.state — persistence across restarts."""

import numpy as np
import pytest

from repro.server.database import TagDatabase
from repro.server.seeds import SeedIssuer
from repro.server.state import (
    export_state,
    import_population_epoch,
    import_state,
    load_state,
    save_state,
)


def _database(n=10, counters=None):
    db = TagDatabase()
    db.register_set(list(range(100, 100 + n)), labels=[f"item-{i}" for i in range(n)])
    if counters is not None:
        db.set_counters(np.asarray(counters))
    return db


class TestRoundTrip:
    def test_ids_and_counters_survive(self):
        db = _database(5, counters=[3, 1, 4, 1, 5])
        restored, _ = import_state(export_state(db))
        assert restored.ids.tolist() == db.ids.tolist()
        assert restored.counters.tolist() == [3, 1, 4, 1, 5]

    def test_labels_survive(self):
        db = _database(3)
        restored, _ = import_state(export_state(db))
        assert restored.record(101).label == "item-1"

    def test_issuer_history_survives(self):
        db = _database()
        issuer = SeedIssuer(np.random.default_rng(0))
        seen = {issuer.trp_challenge(10).seed for _ in range(50)}
        _, restored_issuer = import_state(export_state(db, issuer))
        # The restored issuer must never re-issue a pre-restart seed.
        fresh = {restored_issuer.trp_challenge(10).seed for _ in range(500)}
        assert not (seen & fresh)

    def test_document_is_json_clean(self):
        import json

        doc = export_state(_database(), SeedIssuer(np.random.default_rng(0)))
        json.dumps(doc)  # must not raise


class TestFiles:
    def test_save_and_load(self, tmp_path):
        db = _database(4, counters=[7, 7, 7, 7])
        path = str(tmp_path / "state.json")
        save_state(path, db)
        restored, _ = load_state(path)
        assert restored.counters.tolist() == [7, 7, 7, 7]

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        import os

        path = str(tmp_path / "state.json")
        save_state(path, _database())
        assert not os.path.exists(path + ".tmp")


class TestMidCampaignRoundtrip:
    """Satellite pin: a state file written *mid-deployment* — counter
    resync still incomplete, a UTRP round in flight with its deadline
    armed — restores into a server that (a) knows recovery was
    mid-flight, (b) never re-issues the in-flight challenge's seeds,
    and (c) carries the exact pre-verification counter mirror."""

    def test_incomplete_resync_and_inflight_round_survive(self, tmp_path):
        import asyncio
        import json

        from repro.core.utrp import ResyncReport
        from repro.serve import MonitoringService, SessionConfig
        from repro.serve import protocol
        from repro.server.state import import_resync

        path = str(tmp_path / "state.json")
        resync = ResyncReport(
            rounds_run=2,
            frame_size=16,
            recovered={101: 3},
            unresolved=[103, 107],
            ambiguous=[105],
        )
        assert not resync.complete

        async def scenario():
            # wall_us_per_s arms a real wall-clock deadline per round.
            svc = MonitoringService(
                session_config=SessionConfig(wall_us_per_s=5_000_000.0)
            )
            svc.create_group("g", 30, 2, 0.9, seed=5, counter_tags=True)
            monitor = svc.groups["g"].monitor
            async with svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await protocol.write_frame(writer, protocol.reseed("g", "utrp"))
                challenge = await protocol.read_frame(reader)
                # Mid-round: challenge issued, deadline ticking, no
                # verdict yet. Snapshot exactly here.
                save_state(path, monitor.database, monitor.issuer, resync=resync)
                counters = monitor.database.counters.tolist()
                writer.close()
            return challenge, counters

        challenge, counters_at_snapshot = asyncio.run(scenario())
        assert challenge.type == "CHALLENGE"
        assert challenge["timer_us"] > 0  # the deadline was armed

        database, issuer = load_state(path)
        # (c) the pre-verification counter mirror, exactly.
        assert database.counters.tolist() == counters_at_snapshot
        # (b) every in-flight challenge seed is burned forever.
        inflight = {int(s) for s in challenge["seeds"]}
        assert inflight <= issuer._issued
        fresh = {issuer.trp_challenge(16).seed for _ in range(300)}
        assert not (inflight & fresh)
        # (a) the restored operator sees the unfinished recovery.
        with open(path) as fh:
            doc = json.load(fh)
        restored = import_resync(doc)
        assert restored is not None
        assert not restored.complete
        assert restored.unresolved == [103, 107]
        assert restored.ambiguous == [105]
        assert restored.recovered == {101: 3}
        assert restored.rounds_run == 2
        assert restored.frame_size == 16

    def test_complete_resync_is_not_persisted(self):
        from repro.core.utrp import ResyncReport
        from repro.server.seeds import SeedIssuer
        from repro.server.state import import_resync

        done = ResyncReport(
            rounds_run=1, frame_size=8, recovered={101: 1},
            unresolved=[], ambiguous=[],
        )
        assert done.complete
        doc = export_state(
            _database(), SeedIssuer(np.random.default_rng(0)), resync=done
        )
        assert "resync" not in doc
        assert import_resync(doc) is None


class TestValidation:
    def test_wrong_format(self):
        with pytest.raises(ValueError):
            import_state({"format": "something-else", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(ValueError):
            import_state({"format": "repro-rfid-server-state", "version": 99})

    def test_missing_tags(self):
        with pytest.raises(ValueError):
            import_state({"format": "repro-rfid-server-state", "version": 1})

    def test_restored_database_is_sealed(self):
        restored, _ = import_state(export_state(_database()))
        with pytest.raises(RuntimeError):
            restored.register_set([1])


class TestPopulationEpochV3:
    """Version 3: snapshots carry the membership epoch (repro.population)."""

    def test_export_stamps_version_3_and_epoch(self):
        doc = export_state(_database(), population_epoch=4)
        assert doc["version"] == 3
        assert doc["population_epoch"] == 4
        assert import_population_epoch(doc) == 4

    def test_epoch_defaults_to_zero(self):
        assert export_state(_database())["population_epoch"] == 0

    def test_pre_v3_documents_load_with_epoch_zero(self):
        """The v2 -> v3 migration: an old snapshot has no epoch key and
        must restore as a never-churned (epoch 0) set."""
        doc = export_state(_database(5, counters=[1, 2, 3, 4, 5]))
        del doc["population_epoch"]
        doc["version"] = 2
        restored, _ = import_state(doc)
        assert restored.counters.tolist() == [1, 2, 3, 4, 5]
        assert import_population_epoch(doc) == 0
        doc["version"] = 1
        restored, _ = import_state(doc)
        assert restored.ids.size == 5

    def test_epoch_round_trips_through_files(self, tmp_path):
        path = str(tmp_path / "state.json")
        save_state(path, _database(), population_epoch=7)
        import json

        with open(path) as fh:
            doc = json.load(fh)
        assert import_population_epoch(doc) == 7

    def test_malformed_epoch_rejected(self):
        base = {"format": "repro-rfid-server-state", "version": 3}
        for bad in (-1, "3", True, 1.5):
            with pytest.raises(ValueError):
                import_population_epoch({**base, "population_epoch": bad})
