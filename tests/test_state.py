"""Tests for repro.server.state — persistence across restarts."""

import numpy as np
import pytest

from repro.server.database import TagDatabase
from repro.server.seeds import SeedIssuer
from repro.server.state import export_state, import_state, load_state, save_state


def _database(n=10, counters=None):
    db = TagDatabase()
    db.register_set(list(range(100, 100 + n)), labels=[f"item-{i}" for i in range(n)])
    if counters is not None:
        db.set_counters(np.asarray(counters))
    return db


class TestRoundTrip:
    def test_ids_and_counters_survive(self):
        db = _database(5, counters=[3, 1, 4, 1, 5])
        restored, _ = import_state(export_state(db))
        assert restored.ids.tolist() == db.ids.tolist()
        assert restored.counters.tolist() == [3, 1, 4, 1, 5]

    def test_labels_survive(self):
        db = _database(3)
        restored, _ = import_state(export_state(db))
        assert restored.record(101).label == "item-1"

    def test_issuer_history_survives(self):
        db = _database()
        issuer = SeedIssuer(np.random.default_rng(0))
        seen = {issuer.trp_challenge(10).seed for _ in range(50)}
        _, restored_issuer = import_state(export_state(db, issuer))
        # The restored issuer must never re-issue a pre-restart seed.
        fresh = {restored_issuer.trp_challenge(10).seed for _ in range(500)}
        assert not (seen & fresh)

    def test_document_is_json_clean(self):
        import json

        doc = export_state(_database(), SeedIssuer(np.random.default_rng(0)))
        json.dumps(doc)  # must not raise


class TestFiles:
    def test_save_and_load(self, tmp_path):
        db = _database(4, counters=[7, 7, 7, 7])
        path = str(tmp_path / "state.json")
        save_state(path, db)
        restored, _ = load_state(path)
        assert restored.counters.tolist() == [7, 7, 7, 7]

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        import os

        path = str(tmp_path / "state.json")
        save_state(path, _database())
        assert not os.path.exists(path + ".tmp")


class TestValidation:
    def test_wrong_format(self):
        with pytest.raises(ValueError):
            import_state({"format": "something-else", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(ValueError):
            import_state({"format": "repro-rfid-server-state", "version": 99})

    def test_missing_tags(self):
        with pytest.raises(ValueError):
            import_state({"format": "repro-rfid-server-state", "version": 1})

    def test_restored_database_is_sealed(self):
        restored, _ = import_state(export_state(_database()))
        with pytest.raises(RuntimeError):
            restored.register_set([1])
