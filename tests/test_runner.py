"""Tests for repro.simulation.runner — the Monte Carlo harness."""

import numpy as np
import pytest

from repro.simulation.runner import MonteCarloRunner


class TestBooleanRuns:
    def test_outcomes_and_summary(self):
        runner = MonteCarloRunner(master_seed=1)
        batch = runner.run_boolean(lambda g: bool(g.integers(0, 2)), trials=200)
        assert batch.outcomes.shape == (200,)
        assert batch.summary is not None
        assert 0.3 < batch.summary.rate < 0.7

    def test_reproducible(self):
        a = MonteCarloRunner(5).run_boolean(lambda g: bool(g.integers(0, 2)), 50)
        b = MonteCarloRunner(5).run_boolean(lambda g: bool(g.integers(0, 2)), 50)
        assert np.array_equal(a.outcomes, b.outcomes)

    def test_seed_changes_outcomes(self):
        a = MonteCarloRunner(5).run_boolean(lambda g: bool(g.integers(0, 2)), 50)
        b = MonteCarloRunner(6).run_boolean(lambda g: bool(g.integers(0, 2)), 50)
        assert not np.array_equal(a.outcomes, b.outcomes)

    def test_progress_callback(self):
        calls = []
        runner = MonteCarloRunner(1, progress=lambda d, t: calls.append((d, t)))
        runner.run_boolean(lambda g: True, trials=5)
        assert calls == [(i, 5) for i in range(1, 6)]

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(1).run_boolean(lambda g: True, 0)


class TestNumericRuns:
    def test_mean_and_std(self):
        runner = MonteCarloRunner(3)
        batch = runner.run_numeric(lambda g: float(g.normal(10, 1)), trials=500)
        assert abs(batch.mean - 10) < 0.3
        assert 0.7 < batch.std < 1.3
        assert batch.summary is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(1).run_numeric(lambda g: 1.0, -3)


class TestVectorisedRuns:
    def test_boolean_kernel_summarised(self):
        def kernel(trials, gen):
            return gen.integers(0, 2, size=trials).astype(bool)

        batch = MonteCarloRunner(2).run_vectorised(kernel, 100)
        assert batch.summary is not None
        assert batch.outcomes.shape == (100,)

    def test_numeric_kernel_not_summarised(self):
        def kernel(trials, gen):
            return gen.normal(size=trials)

        batch = MonteCarloRunner(2).run_vectorised(kernel, 10)
        assert batch.summary is None

    def test_shape_enforced(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(2).run_vectorised(lambda t, g: np.zeros(t + 1), 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(2).run_vectorised(lambda t, g: np.zeros(t), 0)
