"""Unit tests for repro.rfid.ids — identifier generation."""

import numpy as np
import pytest

from repro.rfid.ids import TagId, TagIdGenerator, random_tag_ids, sequential_tag_ids


class TestTagId:
    def test_build_round_trips_fields(self):
        tag = TagId.build(manager=0x1F, item_class=0xABCDE, serial=123456789)
        assert tag.manager == 0x1F
        assert tag.item_class == 0xABCDE
        assert tag.serial == 123456789

    def test_build_rejects_oversized_manager(self):
        with pytest.raises(ValueError):
            TagId.build(manager=256, item_class=0, serial=0)

    def test_build_rejects_oversized_item_class(self):
        with pytest.raises(ValueError):
            TagId.build(manager=0, item_class=1 << 20, serial=0)

    def test_build_rejects_oversized_serial(self):
        with pytest.raises(ValueError):
            TagId.build(manager=0, item_class=0, serial=1 << 36)

    def test_build_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            TagId.build(manager=-1, item_class=0, serial=0)

    def test_str_is_urn_like(self):
        tag = TagId.build(manager=1, item_class=2, serial=3)
        assert str(tag).startswith("urn:epc:")

    def test_distinct_serials_distinct_values(self):
        a = TagId.build(1, 1, 1)
        b = TagId.build(1, 1, 2)
        assert a.value != b.value


class TestTagIdGenerator:
    def test_sequential_ids_are_unique_and_ordered(self):
        gen = TagIdGenerator(np.random.default_rng(0))
        tags = gen.sequential(10)
        serials = [t.serial for t in tags]
        assert serials == list(range(10))

    def test_sequential_continues_across_calls(self):
        gen = TagIdGenerator(np.random.default_rng(0))
        first = gen.sequential(3)
        second = gen.sequential(3)
        assert second[0].serial == first[-1].serial + 1

    def test_random_ids_unique(self):
        gen = TagIdGenerator(np.random.default_rng(0))
        tags = gen.random(500)
        assert len({t.value for t in tags}) == 500

    def test_iterator_protocol(self):
        gen = TagIdGenerator(np.random.default_rng(0))
        it = iter(gen)
        assert next(it).value != next(it).value


class TestFastPaths:
    def test_random_tag_ids_unique(self):
        ids = random_tag_ids(1000, np.random.default_rng(1))
        assert len(np.unique(ids)) == 1000

    def test_random_tag_ids_dtype(self):
        assert random_tag_ids(5, np.random.default_rng(1)).dtype == np.uint64

    def test_random_tag_ids_reproducible(self):
        a = random_tag_ids(50, np.random.default_rng(7))
        b = random_tag_ids(50, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_sequential_tag_ids(self):
        ids = sequential_tag_ids(5, start=10)
        assert ids.tolist() == [10, 11, 12, 13, 14]

    def test_sequential_rejects_negative_count(self):
        with pytest.raises(ValueError):
            sequential_tag_ids(-1)

    def test_zero_counts(self):
        assert len(random_tag_ids(0, np.random.default_rng(0))) == 0
        assert len(sequential_tag_ids(0)) == 0
