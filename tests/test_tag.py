"""Unit tests for repro.rfid.tag — the tag state machine."""

import pytest

from repro.rfid.hashing import slot_for_tag
from repro.rfid.tag import Tag, TagState


class TestSeeding:
    def test_starts_idle(self):
        assert Tag(1).state is TagState.IDLE

    def test_seed_moves_to_seeded(self):
        tag = Tag(1)
        tag.receive_seed(10, 99)
        assert tag.state is TagState.SEEDED

    def test_chosen_slot_matches_trp_hash(self):
        tag = Tag(42)
        tag.receive_seed(16, 7)
        assert tag.chosen_slot == slot_for_tag(42, 7, 16)

    def test_chosen_slot_matches_utrp_hash_with_counter(self):
        tag = Tag(42, uses_counter=True, counter=5)
        tag.receive_seed(16, 7)
        # receive_seed increments before hashing (Alg. 7 line 1-2)
        assert tag.chosen_slot == slot_for_tag(42, 7, 16, counter=6)

    def test_chosen_slot_none_when_not_seeded(self):
        assert Tag(1).chosen_slot is None

    def test_reseed_changes_slot_choice(self):
        tag = Tag(42)
        tag.receive_seed(64, 1)
        first = tag.chosen_slot
        tag.receive_seed(64, 2)
        assert tag.chosen_slot == slot_for_tag(42, 2, 64)
        # (may rarely coincide, but must be recomputed, not cached)
        assert tag.chosen_slot != first or slot_for_tag(42, 1, 64) == slot_for_tag(42, 2, 64)

    def test_rejects_nonpositive_frame(self):
        with pytest.raises(ValueError):
            Tag(1).receive_seed(0, 5)


class TestCounter:
    def test_plain_tag_never_increments(self):
        tag = Tag(1, uses_counter=False)
        for _ in range(3):
            tag.receive_seed(10, 1)
        assert tag.counter == 0

    def test_counter_tag_increments_every_seed(self):
        tag = Tag(1, uses_counter=True)
        for _ in range(3):
            tag.receive_seed(10, 1)
        assert tag.counter == 3

    def test_silent_tag_still_increments(self):
        """Silent tags hear broadcasts; the hardware still ticks (Sec. 5.3)."""
        tag = Tag(1, uses_counter=True)
        tag.receive_seed(10, 1)
        tag.poll(tag.chosen_slot)
        assert tag.state is TagState.SILENT
        tag.receive_seed(9, 2)
        assert tag.counter == 2

    def test_counter_survives_power_cycle(self):
        tag = Tag(1, uses_counter=True)
        tag.receive_seed(10, 1)
        tag.power_cycle()
        assert tag.counter == 1
        assert tag.state is TagState.IDLE


class TestPolling:
    def test_replies_only_in_chosen_slot(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        chosen = tag.chosen_slot
        for slot in range(8):
            reply = tag.poll(slot)
            if slot == chosen:
                assert reply is not None and reply.tag_id == 7
            else:
                assert reply is None

    def test_silent_after_reply(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        assert tag.poll(tag.chosen_slot) is not None
        assert tag.state is TagState.SILENT

    def test_no_second_reply_even_same_slot(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        chosen = tag.chosen_slot
        tag.poll(chosen)
        assert tag.poll(chosen) is None

    def test_idle_tag_never_replies(self):
        assert Tag(7).poll(0) is None

    def test_silent_tag_ignores_reseed_slot_choice(self):
        """A silent tag must not re-enter the frame on later seeds."""
        tag = Tag(7)
        tag.receive_seed(8, 3)
        tag.poll(tag.chosen_slot)
        tag.receive_seed(8, 4)
        assert tag.state is TagState.SILENT
        assert all(tag.poll(s) is None for s in range(8))

    def test_reply_bits_fit_width(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        reply = tag.poll(tag.chosen_slot)
        assert 0 <= reply.bits < (1 << 16)

    def test_reply_bits_deterministic_per_seed(self):
        a, b = Tag(7), Tag(7)
        a.receive_seed(8, 3)
        b.receive_seed(8, 3)
        assert a.poll(a.chosen_slot).bits == b.poll(b.chosen_slot).bits

    def test_reply_bits_vary_with_seed(self):
        bits = set()
        for seed in range(20):
            tag = Tag(7)
            tag.receive_seed(8, seed)
            bits.add(tag.poll(tag.chosen_slot).bits)
        assert len(bits) > 1


class TestCollisionRearm:
    def test_mark_collided_returns_to_idle(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        tag.poll(tag.chosen_slot)
        tag.mark_collided()
        assert tag.state is TagState.IDLE

    def test_rearmed_tag_reseeds_and_replies_again(self):
        tag = Tag(7)
        tag.receive_seed(8, 3)
        tag.poll(tag.chosen_slot)
        tag.mark_collided()
        tag.receive_seed(8, 5)
        assert tag.state is TagState.SEEDED
        assert tag.poll(tag.chosen_slot) is not None
