"""Tests for the experiment manifest — the executable DESIGN.md index."""

import os

import pytest

from repro.experiments.manifest import (
    EXPERIMENTS,
    all_experiment_ids,
    experiment,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)


class TestRegistry:
    def test_all_paper_figures_present(self):
        for fig in ("fig4", "fig5", "fig6", "fig7"):
            assert fig in EXPERIMENTS

    def test_every_bench_file_exists(self):
        """The manifest must never point at a deleted bench."""
        for exp in EXPERIMENTS.values():
            path = os.path.join(REPO_ROOT, exp.bench)
            assert os.path.isfile(path), f"{exp.experiment_id}: {exp.bench}"

    def test_every_bench_file_is_registered(self):
        """Conversely: every figure/ablation bench appears in the
        manifest (micro-benches and validation excluded)."""
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        registered = {os.path.basename(e.bench) for e in EXPERIMENTS.values()}
        exempt = {
            "conftest.py",
            "test_microbench_kernels.py",
            "test_validation_fidelity.py",
            "test_inventory_families.py",
        }
        for name in os.listdir(bench_dir):
            if not name.startswith("test_"):
                continue
            assert name in registered or name in exempt, (
                f"bench {name} missing from the manifest"
            )

    def test_runners_are_callable(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.runner)

    def test_ids_sorted_and_unique(self):
        ids = all_experiment_ids()
        assert ids == sorted(set(ids))

    def test_lookup(self):
        assert experiment("fig5").paper_source == "Fig. 5"

    def test_unknown_lookup_lists_known(self):
        with pytest.raises(KeyError, match="fig4"):
            experiment("fig99")

    def test_grid_runners_run(self):
        """Every grid-based runner accepts a tiny grid."""
        from repro.experiments.grid import ExperimentGrid

        tiny = ExperimentGrid(
            populations=(100,), tolerances=(5,), trials=5, cost_trials=1
        )
        for exp in EXPERIMENTS.values():
            if exp.grid_based:
                result = exp.runner(tiny)
                assert result is not None
