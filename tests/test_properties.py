"""Property-based tests (hypothesis) on the library's core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import detection_probability
from repro.rfid.bitstring import bitwise_or, differing_slots, from_slots
from repro.rfid.channel import SlottedChannel
from repro.rfid.hashing import MASK64, slot_for_tag, slots_for_tags, splitmix64
from repro.rfid.population import TagPopulation
from repro.rfid.reader import TrustedReader
from repro.server.verifier import expected_trp_bitstring, expected_utrp_bitstring
from repro.simulation.metrics import wilson_interval

ids_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 62)), min_size=1, max_size=40,
    unique=True,
)


class TestHashProperties:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_splitmix_stays_in_range(self, value):
        assert 0 <= splitmix64(value) <= MASK64

    @given(
        st.integers(min_value=0, max_value=MASK64),
        st.integers(min_value=0, max_value=MASK64),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_slot_in_frame(self, tag_id, seed, frame):
        assert 0 <= slot_for_tag(tag_id, seed, frame) < frame

    @given(ids_strategy, st.integers(min_value=0, max_value=MASK64),
           st.integers(min_value=1, max_value=500))
    def test_vector_scalar_agreement(self, ids, seed, frame):
        arr = np.array(ids, dtype=np.uint64)
        vec = slots_for_tags(arr, seed, frame)
        for tid, s in zip(ids, vec.tolist()):
            assert slot_for_tag(tid, seed, frame) == s


class TestBitstringProperties:
    slots_lists = st.lists(st.integers(min_value=0, max_value=29), max_size=30)

    @given(slots_lists, slots_lists)
    def test_or_commutative(self, a, b):
        x, y = from_slots(30, a), from_slots(30, b)
        assert np.array_equal(bitwise_or(x, y), bitwise_or(y, x))

    @given(slots_lists, slots_lists)
    def test_differing_slots_symmetric(self, a, b):
        x, y = from_slots(30, a), from_slots(30, b)
        assert differing_slots(x, y) == differing_slots(y, x)

    @given(slots_lists)
    def test_or_identity(self, a):
        x = from_slots(30, a)
        zero = from_slots(30, [])
        assert np.array_equal(bitwise_or(x, zero), x)


class TestDetectionProbabilityProperties:
    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=2000),
    )
    def test_in_unit_interval(self, n, x, f):
        x = min(x, n)
        g = detection_probability(n, x, f)
        assert 0.0 <= g <= 1.0

    @given(
        st.integers(min_value=3, max_value=200),
        st.integers(min_value=1, max_value=50),
    )
    def test_lemma1_random_spots(self, n, f):
        """g is non-decreasing in x at arbitrary (n, f)."""
        xs = sorted({1, n // 2 or 1, n})
        values = [detection_probability(n, x, f) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestProtocolInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ids_strategy, st.integers(min_value=0, max_value=(1 << 62)),
           st.integers(min_value=1, max_value=120))
    def test_trp_honest_scan_always_verifies(self, ids, seed, frame):
        """THE core soundness property: an intact set always verifies."""
        pop = TagPopulation([__import__("repro.rfid.tag", fromlist=["Tag"]).Tag(i)
                             for i in ids])
        scan = TrustedReader().scan_trp(SlottedChannel(pop.tags), frame, seed)
        pred = expected_trp_bitstring(np.array(ids, dtype=np.uint64), frame, seed)
        assert np.array_equal(scan.bitstring, pred)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ids_strategy, st.integers(min_value=0, max_value=1000))
    def test_utrp_honest_scan_always_verifies(self, ids, seed_base):
        from repro.rfid.tag import Tag

        frame = max(4, 2 * len(ids))
        pop = TagPopulation([Tag(i, uses_counter=True) for i in ids])
        seeds = [seed_base + 31 * k for k in range(frame)]
        scan = TrustedReader().scan_utrp(SlottedChannel(pop.tags), frame, seeds)
        pred = expected_utrp_bitstring(
            np.array(ids, dtype=np.uint64),
            np.zeros(len(ids), dtype=np.int64),
            frame,
            seeds,
        )
        assert np.array_equal(scan.bitstring, pred.bitstring)
        assert pred.counters.tolist() == [t.counter for t in pop.tags]


class TestWilsonProperties:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=500))
    def test_interval_valid(self, successes, trials):
        successes = min(successes, trials)
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= successes / trials <= hi <= 1.0
