"""Failure-injection tests: malformed inputs and hostile edge cases.

Verifies the library degrades loudly and safely — wrong-length proofs,
garbage bitstrings, desynchronised counters, exhausted books — rather
than silently accepting or crashing.
"""

import numpy as np
import pytest

from repro.core.monitor import MonitoringServer
from repro.core.parameters import MonitorRequirement
from repro.core.verification import Verdict
from repro.rfid.bitstring import empty_bitstring
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.rfid.reader import ScanResult


def _deploy(n=50, m=3, seed=0):
    rng = np.random.default_rng(seed)
    req = MonitorRequirement(population=n, tolerance=m, confidence=0.95)
    pop = TagPopulation.create(n, uses_counter=True, rng=rng)
    server = MonitoringServer(req, rng=rng, counter_tags=True)
    server.register(pop.ids.tolist())
    return server, pop


class TestMalformedProofs:
    def test_wrong_length_bitstring_rejected(self):
        server, pop = _deploy()

        def truncated(challenge):
            return (
                ScanResult(
                    bitstring=empty_bitstring(challenge.frame_size - 3),
                    slots_used=0,
                    seeds_used=0,
                ),
                0.0,
            )

        report = server.check_utrp(SlottedChannel(pop.tags), scan_fn=truncated)
        assert report.result.verdict is Verdict.REJECTED_MALFORMED
        assert len(server.alerts) == 1

    def test_all_ones_bitstring_rejected(self):
        """Claiming every slot occupied cannot pass: the server expects
        specific empties."""
        server, pop = _deploy()

        def all_ones(challenge):
            bs = empty_bitstring(challenge.frame_size)
            bs[:] = 1
            return ScanResult(bitstring=bs, slots_used=0, seeds_used=0), 0.0

        report = server.check_utrp(SlottedChannel(pop.tags), scan_fn=all_ones)
        assert report.result.verdict is Verdict.NOT_INTACT

    def test_random_bitstring_rejected(self):
        server, pop = _deploy()
        rng = np.random.default_rng(9)

        def noise(challenge):
            bs = rng.integers(0, 2, size=challenge.frame_size).astype(np.uint8)
            return ScanResult(bitstring=bs, slots_used=0, seeds_used=0), 0.0

        report = server.check_utrp(SlottedChannel(pop.tags), scan_fn=noise)
        assert not report.intact

    def test_late_and_wrong_rejected_as_late(self):
        """Timer enforcement runs first: a garbage proof that is also
        late is rejected for lateness (no content oracle leaks)."""
        server, pop = _deploy()

        def late_garbage(challenge):
            return (
                ScanResult(
                    bitstring=empty_bitstring(challenge.frame_size),
                    slots_used=0,
                    seeds_used=0,
                ),
                challenge.timer + 1.0,
            )

        report = server.check_utrp(
            SlottedChannel(pop.tags), scan_fn=late_garbage
        )
        assert report.result.verdict is Verdict.REJECTED_LATE


class TestCounterDesync:
    def test_out_of_band_scan_breaks_utrp(self):
        """A foreign reader seeding the tags desynchronises the mirror;
        the next UTRP round must fail loudly, not falsely verify."""
        server, pop = _deploy()
        channel = SlottedChannel(pop.tags)
        assert server.check_utrp(channel).intact
        # A rogue inventory gun sweeps the shelf:
        channel.broadcast_seed(64, 0xBAD5EED)
        report = server.check_utrp(channel)
        assert not report.intact

    def test_mirror_resync_recovers(self):
        server, pop = _deploy()
        channel = SlottedChannel(pop.tags)
        channel.broadcast_seed(64, 0xBAD5EED)  # desync before first round
        assert not server.check_utrp(channel).intact
        # Operator re-provisions: align the mirror with ground truth.
        server.database.set_counters(
            np.array([t.counter for t in pop.tags], dtype=np.int64)
        )
        assert server.check_utrp(channel).intact


class TestHostileInputs:
    def test_population_of_one(self):
        server, pop = _deploy(n=2, m=0)
        assert server.check_trp(SlottedChannel(pop.tags)).intact

    def test_huge_tolerance_tiny_frame(self):
        rng = np.random.default_rng(2)
        req = MonitorRequirement(population=100, tolerance=98, confidence=0.95)
        pop = TagPopulation.create(100, uses_counter=True, rng=rng)
        server = MonitoringServer(req, rng=rng, counter_tags=True)
        server.register(pop.ids.tolist())
        report = server.check_trp(SlottedChannel(pop.tags))
        assert report.intact

    def test_scan_of_someone_elses_tags(self):
        """A channel full of unregistered tags must alarm (ghost
        occupancy), not verify."""
        server, _ = _deploy(n=50)
        stranger_pop = TagPopulation.create(
            50, uses_counter=True, rng=np.random.default_rng(77)
        )
        report = server.check_trp(SlottedChannel(stranger_pop.tags))
        assert not report.intact

    def test_empty_channel_scan(self):
        """Everything stolen: maximal mismatch, certain detection."""
        server, pop = _deploy(n=50)
        report = server.check_trp(SlottedChannel([]))
        assert not report.intact
        assert report.scan.bitstring.sum() == 0
