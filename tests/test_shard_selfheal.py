"""Tests for the self-healing shard machinery (restart / rejoin / chaos).

Three layers, bottom up: the pure pieces (deterministic restart
backoff, the circuit breaker against a fake clock, the seeded disk
fault injector), one end-to-end kill → restart → rejoin → hand-back
scenario pinned bit-identical to a fault-free run, and the bundled
chaos drill's own exit gate.
"""

import asyncio
import json

import pytest

from repro.faults import DISK_FAULT_KINDS, DiskFaultInjector, FaultPlan, FaultSpec
from repro.fleet import RemoteCampaignConfig, drive_remote_campaign_async
from repro.obs import ObsContext
from repro.shard import (
    CircuitBreaker,
    ShardCluster,
    ShardConfig,
    default_chaos_plan,
    restart_backoff_s,
    run_chaos_drill,
)
from repro.shard.telemetry import http_get

POP = 30
SEED = 17


class TestRestartBackoff:
    """restart_backoff_s is pure: the whole restart timeline of a
    chaos drill replays exactly under a fixed master seed."""

    def test_deterministic(self):
        a = restart_backoff_s(1, "w01", 3, 0.1, 5.0)
        b = restart_backoff_s(1, "w01", 3, 0.1, 5.0)
        assert a == b

    def test_jitter_stays_in_half_open_band(self):
        # Jitter scales the raw exponential by [0.5, 1.0): never less
        # than half the nominal delay, never at or above it.
        for attempt in range(1, 8):
            raw = min(5.0, 0.1 * 2 ** (attempt - 1))
            value = restart_backoff_s(SEED, "w00", attempt, 0.1, 5.0)
            assert 0.5 * raw <= value < raw

    def test_cap_bounds_every_attempt(self):
        assert restart_backoff_s(SEED, "w00", 40, 0.1, 5.0) < 5.0

    def test_distinct_workers_desynchronise(self):
        # The point of jitter: two workers respawning after the same
        # failure must not thunder in lockstep.
        values = {
            restart_backoff_s(SEED, f"w{i:02d}", 1, 0.1, 5.0)
            for i in range(8)
        }
        assert len(values) == 8

    def test_distinct_attempts_draw_fresh_jitter(self):
        # Attempts 1 and 2 differ by more than the pure doubling.
        first = restart_backoff_s(SEED, "w00", 1, 0.1, 5.0)
        second = restart_backoff_s(SEED, "w00", 2, 0.1, 5.0)
        assert second != 2 * first

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            restart_backoff_s(SEED, "w00", 0, 0.1, 5.0)


def _clocked_breaker(threshold=3, open_s=10.0):
    now = [0.0]
    breaker = CircuitBreaker(threshold, open_s, clock=lambda: now[0])
    return breaker, now


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker, _ = _clocked_breaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker, _ = _clocked_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_threshold_failures_open(self):
        breaker, _ = _clocked_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_streak(self):
        breaker, _ = _clocked_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_decays_to_half_open_after_open_s(self):
        breaker, now = _clocked_breaker(threshold=1, open_s=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 9.9
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.state == "half-open"

    def test_half_open_success_closes(self):
        breaker, now = _clocked_breaker(threshold=1, open_s=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_the_clock(self):
        breaker, now = _clocked_breaker(threshold=3, open_s=10.0)
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()  # half-open probe
        breaker.record_failure()  # probe failed: one strike re-opens
        assert breaker.state == "open"
        assert breaker.opens == 2
        now[0] = 19.9
        assert not breaker.allow()
        now[0] = 20.0
        assert breaker.allow()

    def test_reset_returns_to_closed(self):
        breaker, _ = _clocked_breaker(threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0.0)


class TestDiskFaultInjector:
    def _plan(self, *specs):
        return FaultPlan(name="t", description="test plan", specs=list(specs))

    def test_pinned_spec_hits_exactly_its_coordinates(self):
        plan = self._plan(
            FaultSpec(
                "disk-fault", groups=["g0"], at_tick=2, mode="torn-write"
            )
        )
        injector = DiskFaultInjector(plan, master_seed=SEED)
        assert injector.fault_for("g0", 2) == "torn-write"
        assert injector.fault_for("g0", 1) is None
        assert injector.fault_for("g0", 3) is None
        assert injector.fault_for("g1", 2) is None

    def test_schedule_replays_exactly(self):
        plan = self._plan(
            FaultSpec("disk-fault", probability=0.3),
            FaultSpec("disk-fault", groups=["g1"], at_tick=0, mode="enospc"),
        )
        grid = [
            (f"g{g}", i) for g in range(4) for i in range(12)
        ]
        first = [
            DiskFaultInjector(plan, master_seed=SEED).fault_for(*coord)
            for coord in grid
        ]
        second = [
            DiskFaultInjector(plan, master_seed=SEED).fault_for(*coord)
            for coord in grid
        ]
        assert first == second
        # A different master seed reshuffles the probabilistic draws.
        other = [
            DiskFaultInjector(plan, master_seed=SEED + 1).fault_for(*coord)
            for coord in grid
        ]
        assert first != other

    def test_certain_probability_always_fires_a_known_kind(self):
        plan = self._plan(FaultSpec("disk-fault", probability=1.0))
        injector = DiskFaultInjector(plan, master_seed=SEED)
        modes = {injector.fault_for("g0", i) for i in range(16)}
        assert None not in modes
        assert modes <= set(DISK_FAULT_KINDS)

    def test_negative_write_index_rejected(self):
        injector = DiskFaultInjector(self._plan(), master_seed=SEED)
        with pytest.raises(ValueError, match="write_index"):
            injector.fault_for("g0", -1)


def _campaign_config(port, groups, rounds) -> RemoteCampaignConfig:
    return RemoteCampaignConfig(
        host="127.0.0.1",
        port=port,
        groups=groups,
        rounds=rounds,
        protocol="trp",
        population=POP,
        tolerance=2,
        confidence=0.9,
        seed=SEED,
        counter_tags=False,
        concurrency=4,
    )


class TestSelfHealingEndToEnd:
    def test_kill_restart_rejoin_handback_bit_identical(self):
        groups, half = 4, 2
        config = ShardConfig(
            workers=2,
            groups=groups,
            population=POP,
            tolerance=2,
            seed=SEED,
            heartbeat_interval_s=0.2,
            restart_max_attempts=2,
        )

        async def healed_run():
            async with ShardCluster(
                config, obs=ObsContext(), telemetry_port=0
            ) as cluster:
                supervisor = cluster.supervisor
                first = await drive_remote_campaign_async(
                    _campaign_config(cluster.port, groups, half)
                )
                # Kill the busiest owner so at least one group must be
                # adopted, then handed back on rejoin.
                victim = max(
                    supervisor.handles,
                    key=lambda wid: sum(
                        1 for o in supervisor.owners.values() if o == wid
                    ),
                )
                owned_before = sorted(
                    n for n, o in supervisor.owners.items() if o == victim
                )
                assert owned_before  # the premise of the hand-back
                supervisor.kill_worker(victim)
                deadline = asyncio.get_running_loop().time() + 25.0
                while asyncio.get_running_loop().time() < deadline:
                    healed = (
                        supervisor.restarts >= 1
                        and supervisor.handles[victim].is_running()
                        and not supervisor._restart_tasks
                        and not supervisor._migrations
                        and sorted(
                            n
                            for n, o in supervisor.owners.items()
                            if o == victim
                        )
                        == owned_before
                    )
                    if healed:
                        break
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("cluster did not heal within 25s")
                second = await drive_remote_campaign_async(
                    _campaign_config(cluster.port, groups, half)
                )
                status, body = await http_get(
                    "127.0.0.1", cluster.telemetry.port, "/healthz"
                )
                return {
                    "first": first,
                    "second": second,
                    "victim": victim,
                    "restarts": supervisor.restarts,
                    "handbacks": supervisor.handbacks,
                    "breakers": dict(cluster.gateway.breaker_states()),
                    "health": (status, json.loads(body)),
                }

        async def reference_run():
            async with ShardCluster(config) as cluster:
                return await drive_remote_campaign_async(
                    _campaign_config(cluster.port, groups, 2 * half)
                )

        healed = asyncio.run(healed_run())
        reference = asyncio.run(reference_run())

        assert healed["first"].protocol_errors == []
        assert healed["second"].protocol_errors == []
        assert reference.protocol_errors == []
        assert healed["restarts"] >= 1
        assert healed["handbacks"] >= 1
        # The spliced sequence (before-kill + after-heal) is the
        # fault-free sequence: restart, rejoin and hand-back are
        # invisible at the wire.
        for name in sorted(reference.per_group):
            spliced = (
                healed["first"].per_group[name]
                + healed["second"].per_group[name]
            )
            assert spliced == reference.per_group[name], name
        # And the control plane agrees: healthy fleet, closed breaker
        # for the rejoined worker, breaker states on /healthz.
        status, doc = healed["health"]
        assert status == 200
        assert healed["breakers"][healed["victim"]] == "closed"
        assert doc["breakers"][healed["victim"]] == "closed"

    def test_restart_cap_parks_worker_permanently_down(self):
        config = ShardConfig(
            workers=2,
            groups=2,
            population=POP,
            tolerance=2,
            seed=SEED,
            heartbeat_interval_s=0.2,
            restart_max_attempts=0,
        )

        async def scenario():
            async with ShardCluster(config) as cluster:
                supervisor = cluster.supervisor
                await drive_remote_campaign_async(
                    _campaign_config(cluster.port, 2, 1)
                )
                victim = sorted(supervisor.handles)[0]
                supervisor.kill_worker(victim)
                await supervisor.worker_failed(victim)
                # restart_max_attempts=0 disables self-healing: no
                # restart is ever scheduled for the dead worker.
                await asyncio.sleep(0.3)
                return (
                    supervisor.restarts,
                    dict(supervisor._restart_tasks),
                    supervisor.handles[victim].is_running(),
                )

        restarts, tasks, running = asyncio.run(scenario())
        assert restarts == 0
        assert tasks == {}
        assert not running


class TestChaosDrill:
    def test_default_plan_is_deterministic_and_ordered(self):
        config = ShardConfig(
            workers=2, groups=6, population=POP, tolerance=2, seed=SEED
        )
        a = default_chaos_plan(config, 4)
        b = default_chaos_plan(config, 4)
        assert a.specs == b.specs
        ticks = [
            s.at_tick
            for s in a.specs
            if s.fault in ("worker-kill", "upstream-stall")
        ]
        assert ticks == sorted(ticks)
        assert len(ticks) == len(set(ticks))

    def test_air_interface_faults_rejected(self):
        config = ShardConfig(
            workers=2, groups=2, population=POP, tolerance=2, seed=SEED
        )
        plan = FaultPlan(
            name="bad",
            description="an air fault has no place in the chaos drill",
            specs=[
                FaultSpec("burst-loss", intensity=0.2, probability=0.5)
            ],
        )
        with pytest.raises(ValueError, match="air-interface"):
            run_chaos_drill(config, plan=plan, rounds=2)

    def test_small_drill_meets_the_exit_gate(self):
        config = ShardConfig(
            workers=2,
            groups=6,
            population=POP,
            tolerance=2,
            seed=SEED,
            heartbeat_interval_s=0.2,
        )
        result = run_chaos_drill(
            config, rounds=4, concurrency=4, obs=ObsContext()
        )
        assert result.ok, result.mismatches
        assert result.lost_verdicts == 0
        assert result.protocol_errors == 0
        assert result.digest_match
        assert result.health_status == 200
        assert result.kills  # at least one kill actually fired
        assert result.worker_restarts >= 1
        assert result.handbacks >= 1
        assert result.disk_faults >= 1
        assert result.permanently_down == []
        # The result round-trips through its JSON form (the CI gate
        # parses exactly this).
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["ok"] is True
        assert doc["digest"] == result.digest
