"""Tests for repro.adversary.replay — the recorded-bitstring attack."""

import numpy as np

from repro.adversary.replay import ReplayAttacker
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.server.verifier import expected_trp_bitstring


def _setup(n=40, seed=1):
    rng = np.random.default_rng(seed)
    pop = TagPopulation.create(n, rng=rng)
    return pop, SlottedChannel(pop.tags)


class TestRecording:
    def test_record_returns_honest_scan(self):
        pop, channel = _setup()
        attacker = ReplayAttacker()
        scan = attacker.record(channel, 60, 12345)
        assert np.array_equal(
            scan.bitstring, expected_trp_bitstring(pop.ids, 60, 12345)
        )
        assert attacker.recorded_challenges == 1


class TestReplaySuccess:
    def test_replay_beats_seed_reuse(self):
        """If the server reuses (f, r), the stale recording verifies even
        after a theft — the vulnerability of Sec. 5.1."""
        pop, channel = _setup()
        original_ids = pop.ids.copy()
        attacker = ReplayAttacker()
        attacker.record(channel, 60, 777)
        pop.remove_random(10, np.random.default_rng(2))
        replayed = attacker.replay(60, 777)
        # The server reusing the same (f, r) would predict the original
        # set's bitstring — which the replay matches exactly.
        reused_expected = expected_trp_bitstring(original_ids, 60, 777)
        assert np.array_equal(replayed.bitstring, reused_expected)


class TestReplayFailure:
    def test_fresh_seed_defeats_replay(self):
        """With a fresh r the stale bitstring (almost surely) mismatches —
        the paper's counter-measure."""
        pop, channel = _setup()
        attacker = ReplayAttacker()
        attacker.record(channel, 60, 777)
        fresh_expected = expected_trp_bitstring(pop.ids, 60, 778)
        replayed = attacker.replay(60, 778)  # best effort: stale bitstring
        assert replayed is not None
        assert not np.array_equal(replayed.bitstring, fresh_expected)

    def test_nothing_recorded_returns_none(self):
        attacker = ReplayAttacker()
        assert attacker.replay(60, 1) is None

    def test_wrong_frame_size_returns_none(self):
        pop, channel = _setup()
        attacker = ReplayAttacker()
        attacker.record(channel, 60, 777)
        assert attacker.replay(61, 777) is None

    def test_fresh_seed_defeat_rate_is_high(self):
        """Across many fresh seeds, replay essentially never verifies."""
        pop, channel = _setup()
        attacker = ReplayAttacker()
        attacker.record(channel, 80, 0)
        hits = 0
        for seed in range(1, 101):
            expected = expected_trp_bitstring(pop.ids, 80, seed)
            if np.array_equal(attacker.replay(80, seed).bitstring, expected):
                hits += 1
        assert hits == 0
