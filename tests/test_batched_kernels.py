"""Cross-validation of the trial-batched Monte Carlo kernels.

Two contracts, per the module's design:

* **exact** — a batched trial's inputs can be reconstructed and
  replayed through the scalar kernels bit-for-bit (the scalar path is
  the oracle);
* **distributional** — at matched parameters the batched and scalar
  kernels estimate the same quantity (checked against each other and,
  where the paper gives one, against the analytic value).

Plus the operational guarantee the experiments lean on: results are
invariant to ``batch_size``.
"""

import numpy as np
import pytest

from repro.core.analysis import detection_probability
from repro.simulation import batched, fastpath

SEED = 20080617


class TestTrpExactEquality:
    def test_every_trial_matches_the_scalar_oracle(self):
        n, missing, f, trials = 150, 6, 120, 64
        verdicts = batched.trp_detection_trials_batched(
            n, missing, f, trials, SEED, batch_size=16
        )
        for t in range(trials):
            inputs = batched.trp_trial_inputs(SEED, t, n, missing)
            assert inputs.tag_ids.shape == (n,)
            assert int(inputs.stolen_mask.sum()) == missing
            oracle = fastpath.trp_trial_detected(
                inputs.tag_ids, inputs.stolen_mask, f, inputs.frame_seed
            )
            assert bool(verdicts[t]) == oracle

    def test_reconstruction_is_stable(self):
        a = batched.trp_trial_inputs(SEED, 9, 50, 3)
        b = batched.trp_trial_inputs(SEED, 9, 50, 3)
        assert np.array_equal(a.tag_ids, b.tag_ids)
        assert np.array_equal(a.stolen_mask, b.stolen_mask)
        assert a.frame_seed == b.frame_seed

    def test_trials_are_mutually_independent_streams(self):
        a = batched.trp_trial_inputs(SEED, 0, 50, 3)
        b = batched.trp_trial_inputs(SEED, 1, 50, 3)
        assert not np.array_equal(a.tag_ids, b.tag_ids)
        assert a.frame_seed != b.frame_seed


class TestUtrpExactEquality:
    def test_every_trial_matches_the_scalar_oracle(self):
        n, stolen, f, budget, trials = 80, 4, 70, 10, 32
        verdicts = batched.utrp_collusion_detection_trials_batched(
            n, stolen, f, budget, trials, SEED, batch_size=8
        )
        counters = np.zeros(n, dtype=np.int64)
        for t in range(trials):
            inputs = batched.utrp_trial_inputs(SEED, t, n, stolen, f)
            assert inputs.seeds.shape == (f,)
            oracle = fastpath.utrp_collusion_detected(
                inputs.tag_ids,
                counters,
                inputs.stolen_mask,
                f,
                inputs.seeds,
                budget,
            )
            assert bool(verdicts[t]) == oracle


class TestBatchSizeInvariance:
    def test_trp_detection(self):
        ref = batched.trp_detection_trials_batched(100, 5, 80, 70, SEED)
        for bs in (1, 3, 64, 70, 1000):
            out = batched.trp_detection_trials_batched(
                100, 5, 80, 70, SEED, batch_size=bs
            )
            assert np.array_equal(ref, out)

    def test_trp_mismatch_counts(self):
        ref = batched.trp_mismatch_count_trials_batched(100, 5, 80, 50, SEED)
        for bs in (7, 50, 256):
            out = batched.trp_mismatch_count_trials_batched(
                100, 5, 80, 50, SEED, batch_size=bs
            )
            assert np.array_equal(ref, out)

    def test_trp_false_alarms(self):
        ref = batched.trp_false_alarm_trials_batched(100, 80, 0.05, 50, SEED)
        for bs in (7, 50, 256):
            out = batched.trp_false_alarm_trials_batched(
                100, 80, 0.05, 50, SEED, batch_size=bs
            )
            assert np.array_equal(ref, out)

    def test_utrp_collusion(self):
        ref = batched.utrp_collusion_detection_trials_batched(
            60, 3, 50, 8, 30, SEED
        )
        for bs in (1, 13, 30):
            out = batched.utrp_collusion_detection_trials_batched(
                60, 3, 50, 8, 30, SEED, batch_size=bs
            )
            assert np.array_equal(ref, out)

    def test_collect_all(self):
        ref = batched.collect_all_slots_trials_batched(
            60, 4, 20, SEED, missing=2
        )
        for bs in (1, 7, 64):
            out = batched.collect_all_slots_trials_batched(
                60, 4, 20, SEED, missing=2, batch_size=bs
            )
            assert np.array_equal(ref, out)


class TestDistributionalAgreement:
    """Batched and scalar kernels sample the same model from different
    streams; with the trial counts below, the acceptance thresholds sit
    beyond four standard errors of the true gaps (deterministic seeds,
    so these never flake)."""

    def test_trp_detection_rate_matches_theorem_1(self):
        n, m, trials = 400, 10, 3000
        f = 300
        g = detection_probability(n, m + 1, f)
        rate = batched.trp_detection_trials_batched(
            n, m + 1, f, trials, SEED
        ).mean()
        sigma = np.sqrt(g * (1 - g) / trials)
        assert abs(rate - g) < 5 * sigma

    def test_trp_detection_rate_matches_scalar(self):
        n, missing, f, trials = 300, 8, 200, 3000
        rate_b = batched.trp_detection_trials_batched(
            n, missing, f, trials, SEED
        ).mean()
        rate_s = fastpath.trp_detection_trials(
            n, missing, f, trials, np.random.default_rng(SEED)
        ).mean()
        assert abs(rate_b - rate_s) < 0.05

    def test_mismatch_count_distribution_matches_scalar(self):
        n, missing, f, trials = 300, 10, 200, 2000
        counts_b = batched.trp_mismatch_count_trials_batched(
            n, missing, f, trials, SEED
        )
        counts_s = fastpath.trp_mismatch_count_trials(
            n, missing, f, trials, np.random.default_rng(SEED)
        )
        assert abs(counts_b.mean() - counts_s.mean()) < 0.25
        # KS-style check over the (small, discrete) support.
        hi = int(max(counts_b.max(), counts_s.max())) + 1
        cdf_b = np.cumsum(np.bincount(counts_b, minlength=hi)) / trials
        cdf_s = np.cumsum(np.bincount(counts_s, minlength=hi)) / trials
        assert np.max(np.abs(cdf_b - cdf_s)) < 0.05

    def test_false_alarm_distribution_matches_scalar(self):
        n, f, rate, trials = 300, 200, 0.03, 2000
        counts_b = batched.trp_false_alarm_trials_batched(
            n, f, rate, trials, SEED
        )
        counts_s = fastpath.trp_false_alarm_trials(
            n, f, rate, trials, np.random.default_rng(SEED)
        )
        assert abs(counts_b.mean() - counts_s.mean()) < 0.3

    def test_utrp_detection_rate_matches_scalar(self):
        n, stolen, f, budget, trials = 100, 5, 90, 15, 800
        rate_b = batched.utrp_collusion_detection_trials_batched(
            n, stolen, f, budget, trials, SEED
        ).mean()
        rate_s = fastpath.utrp_collusion_detection_trials(
            n, stolen, f, budget, trials, np.random.default_rng(SEED)
        ).mean()
        assert abs(rate_b - rate_s) < 0.08

    def test_collect_all_cost_matches_scalar(self):
        n, tol, trials = 200, 5, 300
        slots_b = batched.collect_all_slots_trials_batched(
            n, tol, trials, SEED
        )
        slots_s = fastpath.collect_all_slots_trials(
            n, tol, trials, np.random.default_rng(SEED)
        )
        assert abs(slots_b.mean() - slots_s.mean()) / slots_s.mean() < 0.05


class TestEdgeCasesAndValidation:
    def test_no_theft_is_never_detected(self):
        out = batched.trp_detection_trials_batched(50, 0, 40, 20, SEED)
        assert not out.any()
        counts = batched.trp_mismatch_count_trials_batched(
            50, 0, 40, 20, SEED
        )
        assert (counts == 0).all()

    def test_perfect_channel_never_false_alarms(self):
        counts = batched.trp_false_alarm_trials_batched(
            100, 80, 0.0, 30, SEED
        )
        assert (counts == 0).all()

    def test_dead_channel_mismatches_every_expected_slot(self):
        counts = batched.trp_false_alarm_trials_batched(
            100, 80, 1.0, 10, SEED
        )
        assert (counts > 0).all()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            batched.trp_detection_trials_batched(10, 11, 8, 5, SEED)
        with pytest.raises(ValueError):
            batched.trp_detection_trials_batched(10, 2, 8, 0, SEED)
        with pytest.raises(ValueError):
            batched.trp_detection_trials_batched(10, 2, 8, 5, SEED, batch_size=0)
        with pytest.raises(ValueError):
            batched.trp_false_alarm_trials_batched(10, 8, 1.5, 5, SEED)
        with pytest.raises(ValueError):
            batched.utrp_collusion_detection_trials_batched(
                10, 10, 8, 2, 5, SEED
            )
        with pytest.raises(ValueError):
            batched.collect_all_slots_trials_batched(10, 2, 5, SEED, missing=3)
        with pytest.raises(ValueError):
            batched.trp_trial_inputs(SEED, -1, 10, 2)
        with pytest.raises(ValueError):
            batched.utrp_trial_inputs(SEED, -1, 10, 2, 8)

    def test_batched_theft_detected_validates_shapes(self):
        slots = np.zeros((4, 6), dtype=np.int64)
        with pytest.raises(ValueError):
            batched.batched_theft_detected(
                slots, np.zeros((4, 5), dtype=bool), 8, 1
            )
        ragged = np.zeros((4, 6), dtype=bool)
        ragged[0, :2] = True  # trial 0 steals 2, others steal 0
        with pytest.raises(ValueError):
            batched.batched_theft_detected(slots, ragged, 8, 1)

    def test_seed_stream_prefix_stability(self):
        from repro.simulation.rng import trial_seed_stream

        long = trial_seed_stream(SEED, 100)
        short = trial_seed_stream(SEED, 10)
        assert np.array_equal(long[:10], short)
        assert (long < (1 << 62)).all()
        with pytest.raises(ValueError):
            trial_seed_stream(SEED, 0)


class TestFleetDiagnosticSharedHelper:
    def test_detection_diagnostic_uses_batched_helper(self):
        """The fleet diagnostic rides the same verified detection math."""
        from repro.fleet.rounds import detection_diagnostic

        ids = np.random.default_rng(3).integers(
            0, 1 << 63, size=120, dtype=np.uint64
        )
        rate = detection_diagnostic(
            ids, 100, 6, 400, np.random.default_rng(11)
        )
        g = detection_probability(120, 6, 100)
        assert abs(rate - g) < 0.12
