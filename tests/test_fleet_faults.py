"""Campaign-level fault-injection tests: determinism under faults,
degraded groups instead of aborts, salvage/vote/resync end to end, and
the CLI chaos gate."""

import pytest

from repro.cli import main
from repro.faults import FaultPlan, FaultSpec, example_plan
from repro.fleet import (
    CampaignConfig,
    FleetRegistry,
    FleetScenario,
    GroupSpec,
    TheftEvent,
    default_scenario,
    run_campaign,
)
from repro.obs import ObsContext
from repro.obs.exporters import trace_digest


def _one_group_scenario(**spec_kwargs):
    kwargs = dict(name="zone", population=400, tolerance=5)
    kwargs.update(spec_kwargs)
    return FleetScenario(registry=FleetRegistry([GroupSpec(**kwargs)]))


def _chaos_config(**overrides):
    kwargs = dict(
        ticks=6,
        master_seed=17,
        fault_plan=example_plan(),
        vote_quorum=2,
        vote_window=3,
        salvage_partial=True,
        auto_resync=True,
    )
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestConfigValidation:
    def test_vote_params_must_come_together(self):
        with pytest.raises(ValueError):
            CampaignConfig(vote_quorum=2)
        with pytest.raises(ValueError):
            CampaignConfig(vote_window=3)
        with pytest.raises(ValueError):
            CampaignConfig(vote_quorum=4, vote_window=3)
        CampaignConfig(vote_quorum=3, vote_window=3)


class TestFaultedDeterminism:
    def test_jobs_do_not_change_the_faulted_journal(self):
        scenario = default_scenario(groups=5)
        serial = run_campaign(scenario, _chaos_config(jobs=1))
        threaded = run_campaign(scenario, _chaos_config(jobs=4))
        assert serial.journal.records == threaded.journal.records
        assert serial.journal.digest() == threaded.journal.digest()
        assert serial.journal.faulted()  # the plan actually fired

    def test_jobs_do_not_change_the_faulted_trace(self):
        scenario = default_scenario(groups=4)
        digests = []
        for jobs in (1, 3):
            obs = ObsContext()
            run_campaign(scenario, _chaos_config(jobs=jobs), obs=obs)
            digests.append(trace_digest(obs.bus.events()))
        assert digests[0] == digests[1]

    def test_out_of_scope_plan_leaves_the_campaign_untouched(self):
        """An attached-but-dormant injector must not perturb anything."""
        scenario = default_scenario(groups=4)
        bare = run_campaign(
            scenario, CampaignConfig(ticks=4, master_seed=23)
        )
        dormant_plan = FaultPlan(
            specs=[FaultSpec("outage", at_tick=10_000)]
        )
        dormant = run_campaign(
            scenario,
            CampaignConfig(
                ticks=4, master_seed=23, fault_plan=dormant_plan
            ),
        )
        assert bare.journal.digest() == dormant.journal.digest()

    def test_fault_events_replay_on_the_obs_bus(self):
        obs = ObsContext()
        result = run_campaign(
            default_scenario(groups=4), _chaos_config(), obs=obs
        )
        kinds = {e.name for e in obs.bus.events()}
        assert "fleet.fault" in kinds
        assert "fleet.retry" in kinds
        faults_in_journal = len(result.journal.faulted())
        fault_events = [
            e for e in obs.bus.events() if e.name == "fleet.fault"
        ]
        assert len(fault_events) == faults_in_journal


class TestDegradedGroups:
    def test_exhausted_retries_degrade_instead_of_aborting(self):
        """Composed failure axes: outages + reply loss + a real fleet."""
        scenario = FleetScenario(
            registry=FleetRegistry(
                [
                    GroupSpec(
                        name="doomed",
                        population=300,
                        tolerance=5,
                        outage_rate=0.97,
                        miss_rate=0.01,
                    ),
                    GroupSpec(name="fine", population=300, tolerance=5),
                ]
            )
        )
        result = run_campaign(
            scenario, CampaignConfig(ticks=5, master_seed=2)
        )
        doomed = result.journal.for_group("doomed")
        failed = [r for r in doomed if r.verdict == "failed"]
        assert failed, "expected retry exhaustion under 97% outage rate"
        # The group is marked degraded on the transition, exactly once
        # per unbroken failure streak, and the campaign kept running.
        assert failed[0].degraded
        assert failed[0].failure is not None
        assert failed[0].retry_errors
        fine = result.journal.for_group("fine")
        assert len(fine) == 5
        assert all(r.verdict == "intact" for r in fine)

    def test_degraded_clears_on_recovery(self):
        plan = FaultPlan(
            specs=[
                FaultSpec("outage", at_tick=1),
                FaultSpec("outage", at_tick=2),
            ]
        )
        scenario = _one_group_scenario()
        result = run_campaign(
            scenario,
            CampaignConfig(
                ticks=5, master_seed=3, fault_plan=plan
            ),
        )
        records = result.journal.for_group("zone")
        verdicts = [r.verdict for r in records]
        assert verdicts.count("failed") == 2
        # Only the first failure of the streak flags the transition.
        flagged = [r.tick for r in records if r.degraded]
        assert flagged == [1]
        assert records[-1].verdict == "intact"


class TestGracefulDegradation:
    def test_salvage_and_suppression_reach_the_journal(self):
        result = run_campaign(
            default_scenario(groups=4), _chaos_config(ticks=8)
        )
        salvaged = result.journal.salvages()
        assert salvaged
        for record in salvaged:
            assert 0 < record.polled_slots < record.frame_size
            assert record.achieved_confidence is not None
            assert 0.0 < record.achieved_confidence < 1.0
        assert result.journal.suppressed()
        totals = result.metrics.totals()
        assert totals.rounds_salvaged == len(salvaged)
        assert totals.alarms_suppressed == len(
            result.journal.suppressed()
        )
        assert totals.faults_injected >= len(result.journal.faulted())
        assert totals.replies_lost > 0

    def test_vote_suppresses_pages_but_keeps_sustained_theft(self):
        scenario = _one_group_scenario(tolerant_alarms=True)
        scenario.events.append(TheftEvent(group="zone", tick=1, count=40))
        voted = run_campaign(
            scenario,
            CampaignConfig(
                ticks=5, master_seed=5, vote_quorum=2, vote_window=3
            ),
        )
        records = voted.journal.for_group("zone")
        # Sustained theft: raw alarms every round from tick 1; the vote
        # pages on the quorum round, not the first.
        assert not records[0].alarmed
        assert records[1].vote_suppressed
        assert any(r.alarmed for r in records)

    def test_seed_loss_desync_is_resynced_and_alarm_withdrawn(self):
        """A desync-only alarm should be explained away, not paged."""
        plan = FaultPlan(
            specs=[FaultSpec("seed-loss", intensity=0.15, at_tick=1)]
        )
        scenario = _one_group_scenario(trusted_reader=False)
        result = run_campaign(
            scenario,
            CampaignConfig(
                ticks=5,
                master_seed=7,
                fault_plan=plan,
                auto_resync=True,
            ),
        )
        records = result.journal.for_group("zone")
        struck = records[1]
        assert struck.seed is not None
        resynced = [r for r in records if r.resync_recovered > 0]
        assert resynced, "expected the handshake to recover offsets"
        for r in resynced:
            assert r.resync_unresolved == 0
            assert not r.alarmed  # fully explained -> page withdrawn
        # Once the mirror learned the lag, later rounds verify clean.
        assert records[-1].verdict == "intact"
        assert not records[-1].alarmed

    def test_real_theft_survives_the_resync(self):
        """Resync must never absorb genuinely missing tags."""
        scenario = _one_group_scenario(trusted_reader=False)
        scenario.events.append(TheftEvent(group="zone", tick=1, count=30))
        result = run_campaign(
            scenario,
            CampaignConfig(ticks=3, master_seed=9, auto_resync=True),
        )
        alarming = [
            r for r in result.journal.for_group("zone") if r.alarmed
        ]
        assert alarming
        for record in alarming:
            assert record.resync_unresolved > 0


class TestChaosExperiment:
    def _config(self, **overrides):
        from repro.experiments.chaos import ChaosConfig

        kwargs = dict(
            population=200,
            tolerance=5,
            theft_size=12,
            trials=80,
            burst_lengths=(1.0, 8.0),
        )
        kwargs.update(overrides)
        return ChaosConfig(**kwargs)

    def test_sweep_structure_and_determinism(self):
        from repro.experiments.chaos import format_chaos_result, run_chaos

        a = run_chaos(self._config())
        b = run_chaos(self._config())
        assert [p.__dict__ for p in a.points] == [
            p.__dict__ for p in b.points
        ]
        assert len(a.points) == 2
        for point in a.points:
            assert 0.0 <= point.per_round_fa <= 1.0
            assert point.voted_fa_binomial <= point.per_round_fa + 1e-12
            assert point.voted_detection >= point.per_round_detection - 0.2
        table = format_chaos_result(a)
        assert "burst" in table and "det voted" in table

    def test_config_validation(self):
        from repro.experiments.chaos import ChaosConfig

        with pytest.raises(ValueError):
            ChaosConfig(marginal_loss=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(vote_quorum=5, vote_window=4)
        with pytest.raises(ValueError):
            ChaosConfig(theft_size=0)
        with pytest.raises(ValueError):
            ChaosConfig(trials=2, vote_window=4)


class TestChaosCli:
    def test_verdict_sequence_matches_the_checked_in_baseline(
        self, tmp_path, capsys
    ):
        """The CI chaos gate, runnable locally: default seed, bundled
        plan, byte-for-byte verdict sequence."""
        import os

        out = tmp_path / "verdicts.txt"
        assert main(["chaos", "--verdicts-out", str(out)]) == 0
        capsys.readouterr()
        baseline = os.path.join(
            os.path.dirname(__file__), "baselines", "chaos_verdicts.txt"
        )
        assert out.read_bytes() == open(baseline, "rb").read()

    def test_fleet_accepts_a_fault_plan_file(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        example_plan().save(str(path))
        code = main(
            [
                "fleet",
                "--groups",
                "2",
                "--rounds",
                "3",
                "--seed",
                "5",
                "--time-scale",
                "0",
                "--fault-plan",
                str(path),
                "--vote",
                "2",
                "3",
                "--salvage",
                "--resync",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fault injection:" in printed

    def test_chaos_sweep_smoke(self, capsys):
        assert main(["chaos", "--sweep", "--trials", "24"]) == 0
        printed = capsys.readouterr().out
        assert "burstiness" in printed
