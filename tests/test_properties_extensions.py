"""Property-based tests over the extension modules."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimation import (
    estimate_missing_count,
    expected_mismatch_slots,
)
from repro.core.identification import identification_probability
from repro.core.rounds import repeated_detection_probability
from repro.aloha.tree_splitting import simulate_tree_splitting
from repro.experiments.report import render_bar, render_table


class TestEstimationProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=1000),
    )
    def test_expected_mismatches_bounded_by_x_and_f(self, n, x, f):
        x = min(x, n)
        val = expected_mismatch_slots(n, x, f)
        assert 0.0 <= val <= min(x, f) + 1e-9

    @given(
        st.integers(min_value=2, max_value=400),
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=0, max_value=50),
    )
    def test_estimate_monotone_and_bounded(self, n, f, mism):
        lo = estimate_missing_count(mism, n, f)
        hi = estimate_missing_count(mism + 1, n, f)
        assert 0.0 <= lo <= hi <= n

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=10, max_value=800),
    )
    def test_estimator_inverts_its_forward_model(self, n, x, f):
        x = min(x, n)
        forward = expected_mismatch_slots(n, x, f)
        if 1.0 <= forward < expected_mismatch_slots(n, n, f):
            back = estimate_missing_count(int(round(forward)), n, f)
            # Rounding the forward value costs at most the local slope.
            assert abs(back - x) <= max(4.0, 0.35 * x)


class TestRoundsProperties:
    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=6),
    )
    def test_repeated_probability_valid_and_monotone(self, n, x, f, r):
        x = min(x, n)
        p_r = repeated_detection_probability(n, x, f, r)
        p_r1 = repeated_detection_probability(n, x, f, r + 1)
        assert 0.0 <= p_r <= p_r1 <= 1.0


class TestIdentificationProperties:
    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=800),
        st.integers(min_value=0, max_value=20),
    )
    def test_probability_valid_and_monotone_in_rounds(self, n, x, f, r):
        x = min(x, n)
        p = identification_probability(n, x, f, r)
        p_next = identification_probability(n, x, f, r + 1)
        assert 0.0 <= p <= p_next <= 1.0


class TestTreeSplittingProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 62)),
            min_size=0,
            max_size=60,
            unique=True,
        ),
        st.integers(min_value=0, max_value=1 << 30),
    )
    def test_always_collects_exactly_the_population(self, ids, seed):
        arr = np.array(ids, dtype=np.uint64)
        result = simulate_tree_splitting(arr, np.random.default_rng(seed))
        assert sorted(result.collected_ids) == sorted(ids)
        assert result.total_slots >= max(1, len(ids))


class TestReportProperties:
    @given(st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_bar_width_fixed(self, value):
        bar = render_bar(value, 0.0, 1.0, width=12)
        assert len(bar) == 12
        assert set(bar) <= {"#", "."}

    @given(
        st.lists(
            st.tuples(st.integers(-10**6, 10**6), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=8,
        )
    )
    def test_table_row_count(self, pairs):
        text = render_table(["a", "b"], pairs)
        assert len(text.splitlines()) == 2 + len(pairs)
