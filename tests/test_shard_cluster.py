"""Tests for repro.shard — config guards, gateway equivalence, metrics.

The core claim mirrors (and chains with) ``test_serve_equivalence``:
PR 5 pinned wire ≡ in-process; these tests pin sharded-wire ≡ wire.
A reader driving the gateway must see byte-identical rounds to one
driving a single ``MonitoringService`` hosting the same specs — the
sharding is invisible.
"""

import asyncio
import math

import pytest

from repro.fleet import RemoteCampaignConfig, drive_remote_campaign_async
from repro.serve import MonitoringService
from repro.shard import ShardCluster, ShardConfig, ShardGroupSpec
from repro.shard.worker import WorkerSpec

POP = 30
SEED = 17


class TestConfigValidation:
    """Satellite: invalid knobs die as ValueError at startup, never
    mid-campaign — the ``server.seeds`` non-finite-timer philosophy."""

    def test_rejects_bad_counts(self):
        for kwargs in (
            {"workers": 0},
            {"workers": True},
            {"groups": 0},
            {"population": 0},
            {"tolerance": -1},
            {"max_round_retries": 0},
            {"ring_replicas": 0},
            {"max_sessions": 0},
        ):
            with pytest.raises(ValueError):
                ShardConfig(**kwargs)

    def test_rejects_bad_ports(self):
        for port in (-1, 65536, 2.5, "7781"):
            with pytest.raises(ValueError):
                ShardConfig(port=port)

    def test_rejects_nonfinite_intervals(self):
        for kwargs in (
            {"heartbeat_interval_s": float("nan")},
            {"heartbeat_interval_s": float("inf")},
            {"heartbeat_interval_s": 0.0},
            {"start_timeout_s": float("nan")},
            {"failover_timeout_s": 0.0},
            {"upstream_timeout_s": float("-inf")},
            {"timer_scale": float("nan")},
            {"timer_scale": -1.0},
        ):
            with pytest.raises(ValueError):
                ShardConfig(**kwargs)

    def test_rejects_bad_selfheal_knobs(self):
        # Satellite: the self-healing knobs fail loudly at startup too.
        for kwargs in (
            {"restart_max_attempts": -1},
            {"restart_max_attempts": True},
            {"restart_backoff_base_s": 0.0},
            {"restart_backoff_base_s": float("nan")},
            {"restart_backoff_cap_s": float("inf")},
            # cap below base: the backoff schedule would be nonsense.
            {"restart_backoff_base_s": 1.0, "restart_backoff_cap_s": 0.5},
            {"breaker_failure_threshold": 0},
            {"breaker_open_s": 0.0},
            {"breaker_open_s": float("nan")},
            {"round_deadline_s": 0.0},
            {"round_deadline_s": float("-inf")},
            {"drain_timeout_s": 0.0},
            {"frame_idle_timeout_s": 0.0},
            {"frame_idle_timeout_s": float("nan")},
            {"chaos_seed": 1.5},
            {"chaos_seed": "42"},
            {"chaos_seed": 2**63},
        ):
            with pytest.raises(ValueError):
                ShardConfig(**kwargs)

    def test_selfheal_defaults_are_off_and_none_ok(self):
        # Auto-restart defaults OFF (the kill drill's degraded-health
        # contract depends on it); None disables the idle timeout.
        config = ShardConfig(frame_idle_timeout_s=None)
        assert config.restart_max_attempts == 0
        assert config.frame_idle_timeout_s is None
        assert config.chaos_seed is None

    def test_rejects_bad_confidence(self):
        for alpha in (0.0, 1.0, float("nan"), math.inf):
            with pytest.raises(ValueError):
                ShardConfig(confidence=alpha)

    def test_rejects_empty_names(self):
        with pytest.raises(ValueError):
            ShardConfig(host="")
        with pytest.raises(ValueError):
            ShardConfig(group_prefix="")

    def test_group_spec_validation(self):
        with pytest.raises(ValueError):
            ShardGroupSpec(name="", population=10, tolerance=1)
        with pytest.raises(ValueError):
            ShardGroupSpec(name="g", population=0, tolerance=1)
        with pytest.raises(ValueError):
            ShardGroupSpec(name="g", population=10, tolerance=1, confidence=1.5)
        with pytest.raises(ValueError):
            ShardGroupSpec.from_dict({"name": "g"})  # missing keys

    def test_worker_spec_validation(self):
        good = dict(
            worker_id="w00",
            control_host="127.0.0.1",
            control_port=9999,
            state_dir="/tmp",
            groups=(),
        )
        WorkerSpec(**good)  # baseline: constructible
        for override in (
            {"worker_id": ""},
            {"control_host": ""},
            {"control_port": 0},
            {"control_port": 70000},
            {"heartbeat_interval_s": float("nan")},
            {"heartbeat_interval_s": 0.0},
            {"timer_scale": float("inf")},
            {"max_sessions": 0},
        ):
            with pytest.raises(ValueError):
                WorkerSpec(**{**good, **override})

    def test_spec_roundtrip(self):
        spec = ShardGroupSpec(
            name="g", population=10, tolerance=1, seed=5, counter_tags=True
        )
        assert ShardGroupSpec.from_dict(spec.to_dict()) == spec

    def test_group_specs_follow_seed_plus_index(self):
        config = ShardConfig(workers=2, groups=3, seed=100)
        assert [s.seed for s in config.group_specs()] == [100, 101, 102]
        assert [s.name for s in config.group_specs()] == [
            "group-000",
            "group-001",
            "group-002",
        ]


def _campaign_config(
    port: int,
    groups: int,
    rounds: int,
    wire_version: int = 1,
    pipeline_depth: int = 1,
) -> RemoteCampaignConfig:
    return RemoteCampaignConfig(
        host="127.0.0.1",
        port=port,
        groups=groups,
        rounds=rounds,
        protocol="trp",
        population=POP,
        tolerance=2,
        confidence=0.9,
        seed=SEED,
        counter_tags=False,
        concurrency=4,
        wire_version=wire_version,
        pipeline_depth=pipeline_depth,
    )


class TestGatewayEquivalence:
    """Sharded-wire ≡ wire, round by round, bit for bit."""

    def test_verdict_sequences_match_single_process_serve(self):
        groups, rounds = 4, 3
        config = ShardConfig(
            workers=2, groups=groups, population=POP, tolerance=2, seed=SEED
        )

        async def sharded():
            async with ShardCluster(config) as cluster:
                return await drive_remote_campaign_async(
                    _campaign_config(cluster.port, groups, rounds)
                )

        async def single():
            service = MonitoringService()
            for spec in config.group_specs():
                service.create_group(
                    spec.name,
                    spec.population,
                    spec.tolerance,
                    spec.confidence,
                    seed=spec.seed,
                    counter_tags=spec.counter_tags,
                    comm_budget=spec.comm_budget,
                )
            async with service:
                return await drive_remote_campaign_async(
                    _campaign_config(service.port, groups, rounds)
                )

        sharded_result = asyncio.run(sharded())
        single_result = asyncio.run(single())
        assert sharded_result.protocol_errors == []
        assert single_result.protocol_errors == []
        assert sharded_result.rounds_completed == groups * rounds
        for name in sorted(single_result.per_group):
            # RemoteRound is frozen and carries round index, verdict,
            # frame size, mismatched slots and alarm — the whole wire
            # outcome must be identical, group by group.
            assert (
                sharded_result.per_group[name] == single_result.per_group[name]
            ), name

    def test_v2_pipelined_reader_matches_v1_through_gateway(self):
        # The wire-v2 leg of the chain: a pipelining binary-framing
        # reader crossing the gateway (which negotiates v2 upstream to
        # its workers by default) sees the identical rounds a plain v1
        # reader does.
        groups, rounds = 4, 3
        config = ShardConfig(
            workers=2, groups=groups, population=POP, tolerance=2, seed=SEED
        )

        async def campaign(wire_version, pipeline_depth):
            async with ShardCluster(config) as cluster:
                return await drive_remote_campaign_async(
                    _campaign_config(
                        cluster.port,
                        groups,
                        rounds,
                        wire_version=wire_version,
                        pipeline_depth=pipeline_depth,
                    )
                )

        v1 = asyncio.run(campaign(1, 1))
        v2 = asyncio.run(campaign(2, 2))
        assert v1.protocol_errors == []
        assert v2.protocol_errors == []
        assert v2.rounds_completed == groups * rounds
        for name in sorted(v1.per_group):
            assert v2.per_group[name] == v1.per_group[name], name

    def test_v1_only_cluster_still_serves_v2_readers(self):
        # wire_versions=(1,) pins every hop to JSON framing; a v2
        # reader's HELLO negotiates down and the campaign still runs.
        config = ShardConfig(
            workers=2,
            groups=2,
            population=POP,
            tolerance=2,
            seed=SEED,
            wire_versions=(1,),
        )

        async def scenario():
            async with ShardCluster(config) as cluster:
                return await drive_remote_campaign_async(
                    _campaign_config(cluster.port, 2, 2, wire_version=2)
                )

        result = asyncio.run(scenario())
        assert result.protocol_errors == []
        assert result.rounds_completed == 4

    def test_unknown_group_is_a_clean_protocol_error(self):
        config = ShardConfig(
            workers=2, groups=2, population=POP, tolerance=2, seed=SEED
        )

        async def scenario():
            from repro.serve import protocol

            async with ShardCluster(config) as cluster:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", cluster.port
                )
                await protocol.write_frame(
                    writer, protocol.reseed("no-such-group", "trp")
                )
                frame = await protocol.read_frame(reader)
                writer.close()
                return frame

        frame = asyncio.run(scenario())
        assert frame.type == "ERROR"

    def test_shard_metrics_registered(self):
        from repro.obs import ObsContext

        obs = ObsContext()
        config = ShardConfig(
            workers=2, groups=2, population=POP, tolerance=2, seed=SEED
        )

        async def scenario():
            async with ShardCluster(config, obs=obs) as cluster:
                result = await drive_remote_campaign_async(
                    _campaign_config(cluster.port, 2, 1)
                )
            return result

        result = asyncio.run(scenario())
        assert result.rounds_completed == 2
        from repro.obs.exporters import prometheus_text

        text = prometheus_text(obs.registry)
        for metric in (
            "shard_workers",
            "shard_worker_sessions",
            "shard_reshards_total",
            "shard_failovers_total",
            "shard_failover_seconds",
            "shard_rounds_proxied_total",
            "shard_sessions_total",
            "shard_worker_restarts_total",
            "shard_handbacks_total",
            "shard_snapshot_corrupt_total",
            "shard_breaker_opens_total",
            "shard_breaker_state",
        ):
            assert metric in text, metric


class TestDistributedObservability:
    """Tentpole acceptance: trace digests invariant across sharding,
    and a live /metrics scrape that accounts for every verdict."""

    def _drill(self, workers, kill_fraction=0.25, **kwargs):
        from repro.shard import run_drill

        config = ShardConfig(
            workers=workers, groups=4, population=POP, tolerance=2, seed=SEED
        )
        return run_drill(
            config, rounds=2, kill_fraction=kill_fraction, **kwargs
        )

    def test_kill_drill_under_wire_v2_pipelined(self):
        # The drill's zero-loss, bit-identity claim must survive the
        # binary framing with overlapped rounds — a SIGKILL mid-campaign
        # included.
        result = self._drill(workers=3, wire_version=2, pipeline_depth=2)
        assert result.ok, result.mismatches
        assert result.lost_verdicts == 0
        assert result.mismatches == []
        assert result.wire_version == 2
        assert result.scraped_verdicts == result.verdicts_completed == 8

    def test_kill_drill_scrape_is_exact(self):
        result = self._drill(workers=3)
        assert result.ok, result.mismatches
        assert result.lost_verdicts == 0
        assert result.scraped_verdicts == result.verdicts_completed == 8
        assert result.health_status == 503  # a worker is down, and /healthz says so
        assert result.slo_late_rejections == 0
        assert result.trace_spans == 3 * result.verdicts_completed

    def test_trace_digest_invariant_across_worker_counts_and_kills(self):
        digests = {
            workers: self._drill(workers).trace_digest
            for workers in (2, 3)
        }
        assert len(set(digests.values())) == 1, digests

        # And equal to the no-kill single-worker trace of the same
        # seeded scenario, assembled without run_drill's killer.
        from repro.fleet.remote import drive_remote_campaign_async
        from repro.obs.tracing import Tracer, merge_spans, span_tree_digest
        from repro.shard import ShardCluster

        async def unkilled():
            config = ShardConfig(
                workers=1, groups=4, population=POP, tolerance=2, seed=SEED,
                counter_tags=False,
            )
            reader_tracer = Tracer("reader")
            gateway_tracer = Tracer("gateway")
            async with ShardCluster(config, tracer=gateway_tracer) as cluster:
                await drive_remote_campaign_async(
                    _campaign_config(cluster.port, 4, 2),
                    tracer=reader_tracer,
                )
                worker_spans = cluster.worker_spans()
            return span_tree_digest(
                merge_spans(
                    reader_tracer.spans, gateway_tracer.spans, worker_spans
                )
            )

        assert asyncio.run(unkilled()) == digests[2]
