"""Unit tests for repro.rfid.timing — the air-time model."""

import pytest

from repro.rfid.channel import ChannelStats
from repro.rfid.timing import GEN2_TYPICAL, UNIT_SLOTS, LinkTiming


class TestSessionCost:
    def test_empty_session_costs_nothing(self):
        assert GEN2_TYPICAL.session_us(ChannelStats()) == 0.0

    def test_unit_slots_counts_slots_only(self):
        stats = ChannelStats(
            seed_broadcasts=5,
            slots_polled=10,
            empty_slots=6,
            singleton_slots=3,
            collision_slots=1,
            reply_payload_bits=48,
            id_transmissions=7,
        )
        # 6 empty + 4 occupied = 10 unit slots; broadcasts/bits free.
        assert UNIT_SLOTS.session_us(stats) == 10.0

    def test_id_transmissions_priced(self):
        base = ChannelStats(empty_slots=1)
        with_ids = ChannelStats(empty_slots=1, id_transmissions=2)
        t = LinkTiming(bit_us=10.0, id_bits=96)
        assert t.session_us(with_ids) - t.session_us(base) == 2 * 96 * 10.0

    def test_payload_bits_priced(self):
        t = LinkTiming(bit_us=2.0)
        stats = ChannelStats(reply_payload_bits=16)
        assert t.session_us(stats) == 32.0

    def test_broadcast_priced(self):
        t = LinkTiming(seed_broadcast_us=500.0)
        assert t.session_us(ChannelStats(seed_broadcasts=3)) == 1500.0

    def test_slots_equivalent_normalises_by_empty_slot(self):
        t = LinkTiming(empty_slot_us=100.0)
        stats = ChannelStats(empty_slots=4)
        assert t.slots_equivalent(stats) == 4.0


class TestModels:
    def test_gen2_constants_positive(self):
        assert GEN2_TYPICAL.empty_slot_us > 0
        assert GEN2_TYPICAL.bit_us > 0
        assert GEN2_TYPICAL.id_bits == 96

    def test_unit_slots_is_pure_slot_count(self):
        assert UNIT_SLOTS.bit_us == 0.0
        assert UNIT_SLOTS.seed_broadcast_us == 0.0
        assert UNIT_SLOTS.empty_slot_us == UNIT_SLOTS.reply_slot_us == 1.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GEN2_TYPICAL.bit_us = 1.0
