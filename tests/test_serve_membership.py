"""Live membership updates over the serve wire (repro.population).

Covers the MEMBERSHIP frame family end to end on both wire versions:
apply-and-ack, optimistic-concurrency rejection (``stale-epoch``), the
epoch-pinned RESEED path, metric/event emission, and the loadgen
``churn_rate`` knob that drives all of it under load.
"""

import asyncio

import pytest

from repro.rfid.channel import SlottedChannel
from repro.rfid.tag import Tag
from repro.serve import (
    MonitoringService,
    ProtocolError,
    ReaderClient,
)
from repro.serve.loadgen import LoadgenConfig, format_loadgen_result, run_loadgen

POP = 40
SEED = 7

FRESH = 0x5EED_0000  # base for fabricated replacement IDs


def _service(**kwargs) -> MonitoringService:
    svc = MonitoringService(**kwargs)
    svc.create_group("g0", POP, 2, 0.9, seed=SEED, counter_tags=True)
    return svc


def _channel() -> SlottedChannel:
    population = MonitoringService.build_population_for(
        POP, seed=SEED, counter_tags=True
    )
    return SlottedChannel(population.tags)


def run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize("wire", [1, 2])
class TestMembershipRounds:
    def test_replace_round_trips_and_keeps_verdicts_intact(self, wire):
        async def scenario():
            async with _service() as svc:
                ch = _channel()
                async with ReaderClient(
                    "127.0.0.1", svc.port, ch, wire_version=wire
                ) as c:
                    before = await c.run_round("g0", "trp")
                    victim = ch.tags[0]
                    epoch = await c.update_membership(
                        "g0",
                        "replace",
                        [victim.tag_id],
                        replacement_ids=[FRESH + 1],
                    )
                    # Mirror the delta on the physical channel: the old
                    # tag leaves, a factory-fresh one joins.
                    ch.tags.remove(victim)
                    ch.tags.append(Tag(FRESH + 1, uses_counter=True))
                    after = await c.run_round("g0", "trp")
                    monitor = svc.groups["g0"].monitor
                    return before, epoch, after, monitor

        before, epoch, after, monitor = run(scenario())
        assert before.verdict == after.verdict == "intact"
        assert epoch == 1
        assert monitor.population_epoch == 1
        assert monitor.requirement.population == POP

    def test_commission_and_decommission_move_n(self, wire):
        async def scenario():
            async with _service() as svc:
                ch = _channel()
                async with ReaderClient(
                    "127.0.0.1", svc.port, ch, wire_version=wire
                ) as c:
                    e1 = await c.update_membership(
                        "g0", "commission", [FRESH + 2, FRESH + 3]
                    )
                    ch.tags.append(Tag(FRESH + 2, uses_counter=True))
                    ch.tags.append(Tag(FRESH + 3, uses_counter=True))
                    grown = await c.run_round("g0", "trp")
                    n_grown = svc.groups["g0"].monitor.requirement.population

                    victims = [ch.tags[0], ch.tags[1], ch.tags[2]]
                    e2 = await c.update_membership(
                        "g0", "decommission", [t.tag_id for t in victims]
                    )
                    for t in victims:
                        ch.tags.remove(t)
                    shrunk = await c.run_round("g0", "trp")
                    n_shrunk = svc.groups["g0"].monitor.requirement.population
                    return e1, grown, n_grown, e2, shrunk, n_shrunk

        e1, grown, n_grown, e2, shrunk, n_shrunk = run(scenario())
        assert (e1, e2) == (1, 2)
        assert grown.verdict == shrunk.verdict == "intact"
        assert n_grown == POP + 2
        assert n_shrunk == POP - 1

    def test_utrp_round_survives_replace(self, wire):
        """The counter mirror tracks the delta: a fresh tag enters at
        ct = 0 on both sides, so UTRP verdicts stay intact."""

        async def scenario():
            async with _service() as svc:
                ch = _channel()
                async with ReaderClient(
                    "127.0.0.1", svc.port, ch, wire_version=wire
                ) as c:
                    await c.run_round("g0", "utrp")
                    victim = ch.tags[5]
                    await c.update_membership(
                        "g0",
                        "replace",
                        [victim.tag_id],
                        replacement_ids=[FRESH + 4],
                    )
                    ch.tags.remove(victim)
                    ch.tags.append(Tag(FRESH + 4, uses_counter=True))
                    return await c.run_round("g0", "utrp")

        outcome = run(scenario())
        assert outcome.verdict == "intact"

    def test_unknown_group_and_bad_delta_are_recoverable(self, wire):
        async def scenario():
            async with _service() as svc:
                ch = _channel()
                async with ReaderClient(
                    "127.0.0.1", svc.port, ch, wire_version=wire
                ) as c:
                    codes = []
                    try:
                        await c.update_membership("nope", "commission", [1])
                    except ProtocolError as err:
                        codes.append(err.code)
                    try:
                        # decommissioning a tag the group never held
                        await c.update_membership(
                            "g0", "decommission", [FRESH + 5]
                        )
                    except ProtocolError as err:
                        codes.append(err.code)
                    # the session survived both: a round still works
                    outcome = await c.run_round("g0", "trp")
                    return codes, outcome

        codes, outcome = run(scenario())
        assert codes == ["unknown-group", "bad-membership"]
        assert outcome.verdict == "intact"

    def test_concurrent_writer_gets_stale_epoch(self, wire):
        """Optimistic concurrency: the second writer's epoch-0 view is
        rejected after the first writer moved the group to epoch 1."""

        async def scenario():
            async with _service() as svc:
                async with ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=wire
                ) as writer_a, ReaderClient(
                    "127.0.0.1", svc.port, _channel(), wire_version=wire
                ) as writer_b:
                    await writer_a.update_membership(
                        "g0", "commission", [FRESH + 6]
                    )
                    with pytest.raises(ProtocolError) as err:
                        await writer_b.update_membership(
                            "g0", "commission", [FRESH + 7]
                        )
                    epoch = svc.groups["g0"].monitor.population_epoch
                    return err.value.code, epoch, writer_a.known_epochs

        code, epoch, known = run(scenario())
        assert code == "stale-epoch"
        assert epoch == 1  # the losing update was not applied
        assert known == {"g0": 1}

    def test_reseed_epoch_pin_rejects_stale_round(self, wire):
        """A client that has churned pins its RESEEDs to the epoch it
        knows; a server-side delta behind its back fails the round fast
        instead of judging the scan against the wrong set."""

        async def scenario():
            async with _service() as svc:
                ch = _channel()
                async with ReaderClient(
                    "127.0.0.1", svc.port, ch, wire_version=wire
                ) as c:
                    await c.update_membership(
                        "g0", "commission", [FRESH + 8]
                    )
                    ch.tags.append(Tag(FRESH + 8, uses_counter=True))
                    await c.run_round("g0", "trp")  # pinned at 1: fine
                    # another writer moves the group to epoch 2
                    svc.apply_membership("g0", "commission", [FRESH + 9])
                    with pytest.raises(ProtocolError) as err:
                        await c.run_round("g0", "trp")
                    return err.value.code

        assert run(scenario()) == "stale-epoch"


class TestMembershipObservability:
    def test_metrics_and_events_are_published(self):
        from repro.obs import ObsContext, prometheus_text

        obs = ObsContext()

        async def scenario():
            svc = _service(obs=obs)
            async with svc:
                ch = _channel()
                async with ReaderClient("127.0.0.1", svc.port, ch) as c:
                    victim = ch.tags[0]
                    await c.update_membership(
                        "g0",
                        "replace",
                        [victim.tag_id],
                        replacement_ids=[FRESH + 10],
                    )

        run(scenario())
        text = prometheus_text(obs.registry)
        assert 'population_updates_total{group="g0",op="replace"} 1' in text
        assert 'population_epoch{group="g0"} 1' in text
        events = [e for e in obs.bus.events() if e.name == "population.epoch"]
        assert len(events) == 1
        assert events[0].fields["epoch"] == 1
        assert events[0].fields["op"] == "replace"


class TestLoadgenChurn:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(churn_rate=-0.5)
        with pytest.raises(ValueError):
            LoadgenConfig(churn_rate=1.0, reader="null")
        with pytest.raises(ValueError):
            LoadgenConfig(
                churn_rate=1.0, wire_version=2, pipeline_depth=2
            )
        with pytest.raises(ValueError):
            LoadgenConfig(churn_rate=1.0, groups=2, sessions=4)

    @pytest.mark.parametrize("wire", [1, 2])
    def test_churned_campaign_is_clean(self, wire):
        cfg = LoadgenConfig(
            groups=2,
            rounds=4,
            population=50,
            churn_rate=1.0,
            wire_version=wire,
        )
        result = run_loadgen(cfg)
        assert result.protocol_errors == 0
        assert result.verdict_counts == {"intact": 8}
        assert result.membership_updates == 8  # 1/round x 4 x 2 groups
        assert result.population_epochs == {"load-000": 4, "load-001": 4}
        campaign = result.record["timings"][1]
        assert campaign["churn_rate"] == 1.0
        assert campaign["membership_updates"] == 8
        assert campaign["population_epochs"] == result.population_epochs
        report = format_loadgen_result(result)
        assert "membership churn : 8 replace updates" in report
        assert "population epochs: load-000=4, load-001=4" in report

    def test_churn_free_campaign_keeps_pre_population_schema(self):
        result = run_loadgen(LoadgenConfig(groups=2, rounds=2, population=40))
        campaign = result.record["timings"][1]
        assert "churn_rate" not in campaign
        assert "membership_updates" not in campaign
        assert "population_epochs" not in campaign
        assert "membership churn" not in format_loadgen_result(result)
