"""Tests for repro.server.audit — the hash-chained event log."""

import json

import numpy as np
import pytest

from repro.server.audit import AuditLog


class TestChaining:
    def test_empty_log_verifies(self):
        assert AuditLog().verify_chain()

    def test_entries_chain(self):
        log = AuditLog()
        a = log.record("x", v=1)
        b = log.record("y", v=2)
        assert b.prev_digest == a.digest
        assert log.verify_chain()

    def test_tampering_detected(self):
        log = AuditLog()
        log.record("x", v=1)
        log.record("y", v=2)
        # Forge the payload of the first entry in place.
        from dataclasses import replace

        log._entries[0] = replace(log._entries[0], payload={"v": 99})
        assert not log.verify_chain()

    def test_reordering_detected(self):
        log = AuditLog()
        log.record("x", v=1)
        log.record("y", v=2)
        log._entries.reverse()
        assert not log.verify_chain()

    def test_head_digest_advances(self):
        log = AuditLog()
        before = log.head_digest
        log.record("x")
        assert log.head_digest != before

    def test_unserialisable_payload_rejected(self):
        log = AuditLog()
        with pytest.raises(TypeError):
            log.record("x", blob=object())
        # A failed record must not corrupt the chain.
        assert log.verify_chain()


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path)
        log.record("challenge-issued", frame=100)
        log.record("verdict", outcome="intact")
        loaded = AuditLog.load(path)
        assert len(loaded) == 2
        assert loaded.entries[1].payload == {"outcome": "intact"}
        assert loaded.verify_chain()

    def test_on_disk_tampering_detected(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path)
        log.record("verdict", outcome="intact")
        log.record("verdict", outcome="intact")
        lines = open(path).read().splitlines()
        doc = json.loads(lines[0])
        doc["payload"]["outcome"] = "not-intact"
        lines[0] = json.dumps(doc)
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            AuditLog.load(path)


class TestQueries:
    def test_of_kind(self):
        log = AuditLog()
        log.record("a")
        log.record("b")
        log.record("a")
        assert len(log.of_kind("a")) == 2
        assert len(log.of_kind("c")) == 0


class TestMonitorIntegration:
    def test_full_round_is_audited(self):
        from repro.core.monitor import MonitoringServer
        from repro.core.parameters import MonitorRequirement
        from repro.rfid.channel import SlottedChannel
        from repro.rfid.population import TagPopulation

        rng = np.random.default_rng(0)
        req = MonitorRequirement(population=40, tolerance=2, confidence=0.95)
        pop = TagPopulation.create(40, uses_counter=True, rng=rng)
        audit = AuditLog()
        server = MonitoringServer(
            req, rng=rng, counter_tags=True, audit=audit
        )
        server.register(pop.ids.tolist())
        server.check_trp(SlottedChannel(pop.tags))
        pop.remove_random(20, rng)
        server.check_utrp(SlottedChannel(pop.tags))

        kinds = [e.kind for e in audit.entries]
        assert kinds[0] == "set-registered"
        assert kinds.count("verdict") == 2
        assert kinds.count("alert") == 1
        assert audit.verify_chain()

    def test_no_seeds_in_audit(self):
        """The audit log must never contain challenge seeds."""
        from repro.core.monitor import MonitoringServer
        from repro.core.parameters import MonitorRequirement
        from repro.rfid.channel import SlottedChannel
        from repro.rfid.population import TagPopulation

        rng = np.random.default_rng(1)
        req = MonitorRequirement(population=30, tolerance=2, confidence=0.95)
        pop = TagPopulation.create(30, uses_counter=True, rng=rng)
        audit = AuditLog()
        server = MonitoringServer(req, rng=rng, counter_tags=True, audit=audit)
        server.register(pop.ids.tolist())
        report = server.check_trp(SlottedChannel(pop.tags))
        dumped = json.dumps([e.payload for e in audit.entries])
        assert str(report.challenge.seed) not in dumped
