"""Operational integration: the full deployment stack in one story.

Exercises registration, audit logging, state persistence, grouped
sweeps, lossy channels and forensics *together* — the configuration a
real adopter would run — rather than each piece in isolation.
"""

import numpy as np

from repro.core.estimation import ThresholdAlarmPolicy
from repro.core.groups import GroupedMonitor
from repro.core.identification import MissingTagIdentifier
from repro.core.monitor import MonitoringServer
from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.server.audit import AuditLog
from repro.server.state import load_state, save_state


class TestServerLifecycleWithPersistence:
    def test_restart_mid_deployment(self, tmp_path):
        """Counters and seed history survive a server restart; UTRP
        keeps verifying afterwards."""
        rng = np.random.default_rng(0)
        req = MonitorRequirement(population=60, tolerance=3, confidence=0.95)
        pop = TagPopulation.create(60, uses_counter=True, rng=rng)
        server = MonitoringServer(req, rng=rng, counter_tags=True)
        server.register(pop.ids.tolist())
        channel = SlottedChannel(pop.tags)
        assert server.check_utrp(channel).intact
        assert server.check_utrp(channel).intact

        path = str(tmp_path / "server.json")
        save_state(path, server.database, server.issuer)

        # --- restart: rebuild the server from disk ---
        database, issuer = load_state(path)
        reborn = MonitoringServer(
            req, rng=np.random.default_rng(99), counter_tags=True
        )
        reborn.database = database
        reborn.issuer = issuer
        assert reborn.check_utrp(channel).intact

    def test_lost_state_breaks_utrp(self, tmp_path):
        """The negative control: restarting with a *fresh* database
        (counters at zero) must fail verification, not limp along."""
        rng = np.random.default_rng(1)
        req = MonitorRequirement(population=60, tolerance=3, confidence=0.95)
        pop = TagPopulation.create(60, uses_counter=True, rng=rng)
        server = MonitoringServer(req, rng=rng, counter_tags=True)
        server.register(pop.ids.tolist())
        channel = SlottedChannel(pop.tags)
        assert server.check_utrp(channel).intact  # counters now > 0

        amnesiac = MonitoringServer(
            req, rng=np.random.default_rng(2), counter_tags=True
        )
        amnesiac.register(pop.ids.tolist())  # counters mirrored as 0
        assert not amnesiac.check_utrp(channel).intact


class TestAuditedGroupStore:
    def test_week_of_sweeps_fully_audited(self, tmp_path):
        rng = np.random.default_rng(3)
        audit_paths = {}
        monitor = GroupedMonitor(rng=rng)
        pops = {}
        for name, n, m in [("a", 40, 2), ("b", 120, 5)]:
            pop = TagPopulation.create(n, uses_counter=True, rng=rng)
            pops[name] = pop
            audit = AuditLog(str(tmp_path / f"{name}.jsonl"))
            audit_paths[name] = str(tmp_path / f"{name}.jsonl")
            server = monitor.add_group(
                name,
                MonitorRequirement(population=n, tolerance=m, confidence=0.95),
                pop.ids.tolist(),
            )
            server.audit = audit
        # Registration happened before the audit hook; record manually.
        for _ in range(3):
            channels = {k: SlottedChannel(p.tags) for k, p in pops.items()}
            monitor.sweep(channels)
        pops["b"].remove_random(40, rng)
        channels = {k: SlottedChannel(p.tags) for k, p in pops.items()}
        report = monitor.sweep(channels)
        assert report.flagged_groups == ["b"]

        for name in pops:
            restored = AuditLog.load(audit_paths[name])
            assert restored.verify_chain()
            assert len(restored.of_kind("verdict")) == 4
        assert len(AuditLog.load(audit_paths["b"]).of_kind("alert")) == 1


class TestForensicsUnderLoss:
    def test_identification_soundness_needs_reliable_channel(self):
        """On a lossy channel the empty-slot proof breaks: a lost reply
        can condemn a present tag. The identifier is documented as
        reliable-channel-only; this test pins the failure mode so the
        limitation stays visible."""
        rng = np.random.default_rng(4)
        n, f = 150, 220
        pop = TagPopulation.create(n, rng=rng)
        identifier = MissingTagIdentifier(pop.ids.tolist())
        false_accusations = 0
        for seed in range(40):
            channel = SlottedChannel(
                pop.tags, miss_rate=0.05, rng=np.random.default_rng(seed)
            )
            from repro.rfid.reader import TrustedReader

            scan = TrustedReader().scan_trp(channel, f, seed)
            ev = identifier.ingest(f, seed, scan.bitstring)
            false_accusations += len(ev.confirmed_missing)
        # Nothing is missing, so every confirmation is false — and with
        # 5% loss there will be some: the documented limitation.
        assert false_accusations > 0


class TestPublicApiSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.adversary
        import repro.aloha
        import repro.core
        import repro.experiments
        import repro.rfid
        import repro.server
        import repro.simulation

        for pkg in (
            repro.core,
            repro.rfid,
            repro.aloha,
            repro.server,
            repro.adversary,
            repro.simulation,
            repro.experiments,
        ):
            for name in pkg.__all__:
                assert getattr(pkg, name) is not None, f"{pkg.__name__}.{name}"
