"""Tests for repro.experiments.ablations."""

import pytest

from repro.experiments import ablations
from repro.experiments.grid import ExperimentGrid

TINY = ExperimentGrid(
    populations=(100, 300),
    tolerances=(5,),
    trials=40,
    cost_trials=3,
    master_seed=11,
)


class TestWallclock:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_wallclock(TINY)

    def test_collect_all_much_slower(self, rows):
        """Sec. 6: collect-all's real performance is worse than its slot
        count because IDs are long; the advantage must exceed Fig. 4's
        slot-count advantage."""
        from repro.core.analysis import optimal_trp_frame_size
        for row in rows:
            assert row.speedup > 1.5

    def test_positive_times(self, rows):
        for row in rows:
            assert row.collect_all_ms > 0 and row.trp_ms > 0

    def test_formatting(self, rows):
        assert "Abl. A" in ablations.format_wallclock(rows)


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_alpha_sweep(
            populations=(500,), tolerances=(5, 20), alphas=(0.9, 0.95, 0.99)
        )

    def test_monotone_in_alpha(self, rows):
        for m in (5, 20):
            series = [r.frame_size for r in rows if r.tolerance == m]
            assert series == sorted(series)

    def test_formatting(self, rows):
        assert "Abl. B" in ablations.format_alpha_sweep(rows)


class TestBudgetSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_comm_budget_sweep(
            populations=(500,), budgets=(0, 20, 50)
        )

    def test_monotone_in_budget(self, rows):
        series = [r.utrp_frame for r in rows]
        assert series == sorted(series)

    def test_overhead_non_negative(self, rows):
        for r in rows:
            assert r.overhead_slots >= 0

    def test_formatting(self, rows):
        assert "Abl. C" in ablations.format_comm_budget_sweep(rows)


class TestAttackMatrix:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_attack_matrix(n=150, tolerance=5, trials=60)

    def test_four_scenarios(self, rows):
        assert len(rows) == 4

    def test_plain_theft_caught(self, rows):
        assert rows[0].detection_rate > 0.85

    def test_trp_collusion_evades(self, rows):
        assert rows[1].detection_rate == 0.0

    def test_utrp_collusion_caught(self, rows):
        assert rows[2].detection_rate > 0.85

    def test_no_timer_evades(self, rows):
        assert rows[3].detection_rate < 0.2

    def test_formatting(self, rows):
        assert "Abl. D" in ablations.format_attack_matrix(rows)


class TestGfuncApproximation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_gfunc_approximation(populations=(100, 1000))

    def test_paper_approximation_tight(self, rows):
        for r in rows:
            assert r.paper_error < 0.01

    def test_poisson_reasonable(self, rows):
        for r in rows:
            assert r.poisson_error < 0.05

    def test_formatting(self, rows):
        assert "Abl. E" in ablations.format_gfunc_approximation(rows)
