"""Tests for repro.core.groups — multi-group monitoring."""

import numpy as np
import pytest

from repro.core.groups import GroupedMonitor
from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation


def _build(seed=0):
    """Three groups of very different sizes, one untrusted."""
    rng = np.random.default_rng(seed)
    monitor = GroupedMonitor(rng=rng)
    pops = {}
    specs = [
        ("shelf-a", 40, 2, False),
        ("stockroom", 150, 5, False),
        ("high-value", 25, 0, True),  # untrusted reader, zero tolerance
    ]
    for name, n, m, untrusted in specs:
        pop = TagPopulation.create(n, uses_counter=True, rng=rng)
        pops[name] = pop
        monitor.add_group(
            name,
            MonitorRequirement(population=n, tolerance=m, confidence=0.95),
            pop.ids.tolist(),
            untrusted_reader=untrusted,
        )
    return monitor, pops


def _channels(pops):
    return {name: SlottedChannel(pop.tags) for name, pop in pops.items()}


class TestSetup:
    def test_groups_listed(self):
        monitor, _ = _build()
        assert set(monitor.groups) == {"shelf-a", "stockroom", "high-value"}

    def test_duplicate_name_rejected(self):
        monitor, _ = _build()
        with pytest.raises(ValueError):
            monitor.add_group(
                "shelf-a",
                MonitorRequirement(population=5, tolerance=1, confidence=0.9),
                [1, 2, 3, 4, 5],
            )

    def test_untrusted_requires_counter_tags(self):
        monitor, _ = _build()
        with pytest.raises(ValueError):
            monitor.add_group(
                "plain",
                MonitorRequirement(population=5, tolerance=1, confidence=0.9),
                [1, 2, 3, 4, 5],
                counter_tags=False,
                untrusted_reader=True,
            )

    def test_per_group_planning(self):
        monitor, _ = _build()
        assert monitor.server("shelf-a").trp_frame_size > 0
        assert monitor.planned_sweep_slots() >= sum(
            monitor.server(g).trp_frame_size for g in ("shelf-a", "stockroom")
        )

    def test_unknown_group(self):
        monitor, _ = _build()
        with pytest.raises(KeyError):
            monitor.server("nope")


class TestSweeps:
    def test_all_intact_sweep(self):
        monitor, pops = _build()
        report = monitor.sweep(_channels(pops))
        assert report.all_intact
        assert sorted(report.intact_groups) == sorted(monitor.groups)
        assert report.total_slots > 0
        assert monitor.alerts == []

    def test_repeated_sweeps_stay_clean(self):
        monitor, pops = _build()
        for _ in range(3):
            assert monitor.sweep(_channels(pops)).all_intact

    def test_theft_flags_only_the_right_group(self):
        monitor, pops = _build()
        pops["stockroom"].remove_random(30, np.random.default_rng(5))
        report = monitor.sweep(_channels(pops))
        assert report.flagged_groups == ["stockroom"]
        assert "shelf-a" in report.intact_groups
        assert monitor.alerts[0].group == "stockroom"
        assert "stockroom" in monitor.alerts[0].describe()

    def test_alert_callback(self):
        seen = []
        rng = np.random.default_rng(1)
        monitor = GroupedMonitor(rng=rng, on_alert=seen.append)
        pop = TagPopulation.create(30, uses_counter=True, rng=rng)
        monitor.add_group(
            "only",
            MonitorRequirement(population=30, tolerance=1, confidence=0.95),
            pop.ids.tolist(),
        )
        pop.remove_random(15, rng)
        monitor.sweep({"only": SlottedChannel(pop.tags)})
        assert len(seen) == 1 and seen[0].group == "only"

    def test_missing_channel(self):
        monitor, pops = _build()
        channels = _channels(pops)
        del channels["shelf-a"]
        with pytest.raises(KeyError):
            monitor.sweep(channels)

    def test_untrusted_group_uses_utrp(self):
        monitor, pops = _build()
        channels = _channels(pops)
        monitor.sweep(channels)
        # The high-value group's server ran a UTRP round: its counters
        # advanced, unlike a TRP-only... actually counter-aware TRP also
        # bumps by 1; UTRP bumps by the number of seeds used (> 1 here).
        assert monitor.server("high-value").database.counters[0] > 1
        assert monitor.server("shelf-a").database.counters[0] == 1
