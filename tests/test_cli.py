"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_accept_flags(self):
        args = build_parser().parse_args(["fig5", "--trials", "9", "--full"])
        assert args.command == "fig5"
        assert args.trials == 9
        assert args.full

    def test_plan_args(self):
        args = build_parser().parse_args(
            ["plan", "-n", "100", "-m", "5", "--alpha", "0.9", "-c", "7"]
        )
        assert (args.population, args.tolerance) == (100, 5)
        assert args.alpha == 0.9 and args.comm_budget == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_fig_commands_accept_jobs(self):
        args = build_parser().parse_args(["fig5", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["fig7"]).jobs == 1

    def test_fleet_args(self):
        args = build_parser().parse_args(
            ["fleet", "--groups", "8", "--rounds", "5", "--jobs", "4",
             "--time-scale", "0", "--seed", "9"]
        )
        assert args.command == "fleet"
        assert (args.groups, args.rounds, args.jobs) == (8, 5, 4)
        assert args.time_scale == 0.0
        assert args.seed == 9


class TestMain:
    def test_plan_output(self, capsys):
        assert main(["plan", "-n", "200", "-m", "5"]) == 0
        out = capsys.readouterr().out
        assert "TRP" in out and "UTRP" in out and "n=200" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "UTRP slots" in out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--trials", "1", "--seed", "3"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_fig5_runs_small(self, capsys):
        assert main(["fig5", "--trials", "5", "--seed", "3"]) == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_runs_and_prints_metrics(self, capsys):
        assert main(
            ["fleet", "--groups", "3", "--rounds", "2", "--jobs", "2",
             "--time-scale", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet campaign: 3 group(s)" in out
        assert "journal digest:" in out
        assert "TOTAL" in out

    def test_fleet_is_seed_deterministic(self, capsys):
        def lines(out):
            # Everything but the wall-clock line is seed-determined.
            return [l for l in out.splitlines() if "wall clock" not in l]

        argv = ["fleet", "--groups", "2", "--rounds", "2",
                "--time-scale", "0", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert lines(capsys.readouterr().out) == lines(first)

    def test_fleet_writes_journal(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        assert main(
            ["fleet", "--groups", "2", "--rounds", "2", "--time-scale", "0",
             "--journal", str(path)]
        ) == 0
        assert "journal written to" in capsys.readouterr().out
        from repro.fleet import FleetJournal

        assert len(FleetJournal.load(str(path))) > 0

    def test_fleet_loads_scenario_file(self, tmp_path, capsys):
        from repro.fleet import default_scenario

        path = tmp_path / "scenario.json"
        default_scenario(groups=2).save(str(path))
        assert main(
            ["fleet", "--scenario", str(path), "--rounds", "2",
             "--time-scale", "0"]
        ) == 0
        assert "2 group(s)" in capsys.readouterr().out

    def test_fig6_with_jobs(self, capsys):
        assert main(["fig6", "--trials", "1", "--jobs", "2"]) == 0
        assert "Fig. 6" in capsys.readouterr().out


class TestNewCommands:
    def test_list_enumerates_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig4", "fig7", "abl-A", "abl-K"):
            assert exp_id in out

    def test_plan_rounds_section(self, capsys):
        assert main(["plan", "-n", "300", "-m", "5", "--rounds", "3"]) == 0
        out = capsys.readouterr().out
        assert "multi-round" in out
        assert "3 round(s)" in out

    def test_plan_forensics_section(self, capsys):
        assert main(
            ["plan", "-n", "300", "-m", "5", "--identify-beta", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "forensics" in out and "0.9" in out

    def test_plan_plain_has_no_extras(self, capsys):
        assert main(["plan", "-n", "300", "-m", "5"]) == 0
        out = capsys.readouterr().out
        assert "multi-round" not in out and "forensics" not in out
