"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_accept_flags(self):
        args = build_parser().parse_args(["fig5", "--trials", "9", "--full"])
        assert args.command == "fig5"
        assert args.trials == 9
        assert args.full

    def test_plan_args(self):
        args = build_parser().parse_args(
            ["plan", "-n", "100", "-m", "5", "--alpha", "0.9", "-c", "7"]
        )
        assert (args.population, args.tolerance) == (100, 5)
        assert args.alpha == 0.9 and args.comm_budget == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestMain:
    def test_plan_output(self, capsys):
        assert main(["plan", "-n", "200", "-m", "5"]) == 0
        out = capsys.readouterr().out
        assert "TRP" in out and "UTRP" in out and "n=200" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "UTRP slots" in out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--trials", "1", "--seed", "3"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_fig5_runs_small(self, capsys):
        assert main(["fig5", "--trials", "5", "--seed", "3"]) == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestNewCommands:
    def test_list_enumerates_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig4", "fig7", "abl-A", "abl-K"):
            assert exp_id in out

    def test_plan_rounds_section(self, capsys):
        assert main(["plan", "-n", "300", "-m", "5", "--rounds", "3"]) == 0
        out = capsys.readouterr().out
        assert "multi-round" in out
        assert "3 round(s)" in out

    def test_plan_forensics_section(self, capsys):
        assert main(
            ["plan", "-n", "300", "-m", "5", "--identify-beta", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "forensics" in out and "0.9" in out

    def test_plan_plain_has_no_extras(self, capsys):
        assert main(["plan", "-n", "300", "-m", "5"]) == 0
        out = capsys.readouterr().out
        assert "multi-round" not in out and "forensics" not in out
