"""Tests for repro.core.rounds — multi-round TRP planning."""

import numpy as np
import pytest

from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.rounds import (
    optimal_repeated_frame_size,
    plan_rounds,
    repeated_detection_probability,
)


class TestRepeatedDetection:
    def test_one_round_is_plain_g(self):
        assert repeated_detection_probability(500, 11, 300, 1) == pytest.approx(
            detection_probability(500, 11, 300)
        )

    def test_more_rounds_more_detection(self):
        values = [
            repeated_detection_probability(500, 11, 200, r) for r in (1, 2, 4)
        ]
        assert values == sorted(values)

    def test_compounding_formula(self):
        g = detection_probability(500, 11, 200)
        assert repeated_detection_probability(500, 11, 200, 3) == pytest.approx(
            1 - (1 - g) ** 3
        )

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            repeated_detection_probability(500, 11, 300, 0)

    def test_matches_monte_carlo(self):
        """Independence across rounds holds in the real protocol."""
        from repro.simulation.fastpath import trp_trial_detected
        from repro.rfid.ids import random_tag_ids

        n, x, f, rounds = 200, 6, 150, 2
        rng = np.random.default_rng(4)
        hits = 0
        trials = 3000
        for _ in range(trials):
            ids = random_tag_ids(n, rng)
            mask = np.zeros(n, dtype=bool)
            mask[rng.choice(n, x, replace=False)] = True
            detected = any(
                trp_trial_detected(ids, mask, f, int(rng.integers(0, 1 << 62)))
                for _ in range(rounds)
            )
            hits += detected
        mc = hits / trials
        assert abs(mc - repeated_detection_probability(n, x, f, rounds)) < 0.02


class TestOptimalRepeatedFrame:
    def test_one_round_equals_eq2(self):
        assert optimal_repeated_frame_size(500, 10, 0.95, 1) == (
            optimal_trp_frame_size(500, 10, 0.95)
        )

    def test_satisfies_joint_constraint(self):
        for r in (2, 3):
            f = optimal_repeated_frame_size(500, 10, 0.95, r)
            assert repeated_detection_probability(500, 11, f, r) > 0.95
            assert repeated_detection_probability(500, 11, f - 1, r) <= 0.95

    def test_per_round_frames_shrink(self):
        frames = [optimal_repeated_frame_size(500, 10, 0.95, r) for r in (1, 2, 4)]
        assert frames == sorted(frames, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_repeated_frame_size(500, 10, 0.95, 0)


class TestPlans:
    def test_plan_count(self):
        assert len(plan_rounds(300, 5, 0.95, max_rounds=3)) == 3

    def test_single_round_is_cheapest(self):
        plans = plan_rounds(1000, 10, 0.95, max_rounds=4)
        assert min(p.total_slots for p in plans) == plans[0].total_slots

    def test_all_plans_clear_alpha(self):
        for p in plan_rounds(300, 5, 0.95, max_rounds=3):
            assert p.achieved_confidence > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_rounds(300, 5, 0.95, max_rounds=0)
