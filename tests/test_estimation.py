"""Tests for repro.core.estimation — missing-count estimation and
alarm policies (the library's extension over the paper's strict rule)."""

import numpy as np
import pytest

from repro.core.estimation import (
    StrictAlarmPolicy,
    ThresholdAlarmPolicy,
    estimate_missing_count,
    expected_mismatch_slots,
)


class TestExpectedMismatchSlots:
    def test_zero_missing_zero_mismatches(self):
        assert expected_mismatch_slots(100, 0, 50) == 0.0

    def test_increasing_in_x(self):
        values = [expected_mismatch_slots(500, x, 400) for x in range(0, 100, 5)]
        assert values == sorted(values)

    def test_matches_monte_carlo(self):
        """The closed form against direct slot simulation."""
        n, x, f = 200, 20, 250
        rng = np.random.default_rng(8)
        counts = []
        for _ in range(3000):
            slots = rng.integers(0, f, size=n)
            present = np.bincount(slots[x:], minlength=f)
            missing = np.bincount(slots[:x], minlength=f)
            counts.append(int(np.sum((missing > 0) & (present == 0))))
        assert abs(np.mean(counts) - expected_mismatch_slots(n, x, f)) < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_mismatch_slots(10, 11, 5)
        with pytest.raises(ValueError):
            expected_mismatch_slots(10, 1, 0)


class TestEstimateMissingCount:
    def test_zero_mismatches(self):
        assert estimate_missing_count(0, 1000, 700) == 0.0

    def test_round_trips_expected_value(self):
        """estimate(E[mismatches | x]) ~ x."""
        for x in (5, 11, 31, 80):
            mism = expected_mismatch_slots(1000, x, 700)
            est = estimate_missing_count(int(round(mism)), 1000, 700)
            assert abs(est - x) < max(3.0, 0.15 * x)

    def test_monotone_in_mismatches(self):
        estimates = [estimate_missing_count(k, 1000, 700) for k in range(0, 30, 3)]
        assert estimates == sorted(estimates)

    def test_saturates_at_population(self):
        assert estimate_missing_count(10_000, 100, 120) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_missing_count(-1, 100, 50)
        with pytest.raises(ValueError):
            estimate_missing_count(1, 100, 0)

    def test_unbiased_on_simulated_thefts(self):
        """End to end: estimate x from actual TRP mismatch counts."""
        from repro.rfid.hashing import slots_for_tags
        from repro.rfid.ids import random_tag_ids

        n, x, f = 800, 25, 600
        rng = np.random.default_rng(3)
        estimates = []
        for _ in range(300):
            ids = random_tag_ids(n, rng)
            slots = slots_for_tags(ids, int(rng.integers(0, 1 << 62)), f)
            present = np.bincount(slots[x:], minlength=f)
            missing_slots = slots[:x]
            mismatches = int(np.sum(np.bincount(
                missing_slots[present[missing_slots] == 0], minlength=f) > 0))
            estimates.append(estimate_missing_count(mismatches, n, f))
        assert abs(np.mean(estimates) - x) < 3.0


class TestPolicies:
    def test_strict_alarms_on_any_mismatch(self):
        policy = StrictAlarmPolicy()
        assert policy.should_alarm(1, 1000, 700)
        assert not policy.should_alarm(0, 1000, 700)

    def test_threshold_silent_below_tolerance(self):
        policy = ThresholdAlarmPolicy(tolerance=10)
        # one mismatched slot at n=1000, f=700 estimates ~2 missing
        assert not policy.should_alarm(1, 1000, 700)

    def test_threshold_alarms_above_tolerance(self):
        policy = ThresholdAlarmPolicy(tolerance=10)
        big = int(round(expected_mismatch_slots(1000, 40, 700)))
        assert policy.should_alarm(big, 1000, 700)

    def test_margin_shifts_the_bar(self):
        mism = int(round(expected_mismatch_slots(1000, 12, 700)))
        neutral = ThresholdAlarmPolicy(tolerance=10)
        cautious = ThresholdAlarmPolicy(tolerance=10, margin=5.0)
        assert neutral.should_alarm(mism, 1000, 700)
        assert not cautious.should_alarm(mism, 1000, 700)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAlarmPolicy(tolerance=-1)

    def test_descriptions(self):
        assert "strict" in StrictAlarmPolicy().describe()
        assert "10" in ThresholdAlarmPolicy(tolerance=10).describe()


class TestMonitorIntegration:
    def test_threshold_policy_suppresses_small_loss_pages(self):
        from repro.core.monitor import MonitoringServer
        from repro.core.parameters import MonitorRequirement
        from repro.rfid.channel import SlottedChannel
        from repro.rfid.population import TagPopulation

        rng = np.random.default_rng(12)
        req = MonitorRequirement(population=400, tolerance=10, confidence=0.95)
        pop = TagPopulation.create(400, uses_counter=True, rng=rng)
        server = MonitoringServer(
            req, rng=rng, counter_tags=True,
            alarm_policy=ThresholdAlarmPolicy(tolerance=10),
        )
        server.register(pop.ids.tolist())
        pop.remove_random(2, rng)  # well under tolerance
        report = server.check_trp(SlottedChannel(pop.tags))
        # The scan may be NOT_INTACT (a mismatch happened), but the
        # threshold policy should keep the pager silent.
        assert server.alerts == []

    def test_threshold_policy_still_pages_big_theft(self):
        from repro.core.monitor import MonitoringServer
        from repro.core.parameters import MonitorRequirement
        from repro.rfid.channel import SlottedChannel
        from repro.rfid.population import TagPopulation

        rng = np.random.default_rng(13)
        req = MonitorRequirement(population=400, tolerance=10, confidence=0.95)
        pop = TagPopulation.create(400, uses_counter=True, rng=rng)
        server = MonitoringServer(
            req, rng=rng, counter_tags=True,
            alarm_policy=ThresholdAlarmPolicy(tolerance=10),
        )
        server.register(pop.ids.tolist())
        pop.remove_random(60, rng)
        server.check_trp(SlottedChannel(pop.tags))
        assert len(server.alerts) == 1
