"""Unit tests for repro.server.verifier — bitstring prediction.

The load-bearing invariant of the whole system: for an *intact* set the
server's prediction must equal what an honest reader scans, bit for
bit, for every protocol variant. These tests sweep populations, frame
sizes and counter states against the real tag machines.
"""

import numpy as np
import pytest

from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation
from repro.rfid.reader import TrustedReader
from repro.server.verifier import (
    expected_trp_bitstring,
    expected_trp_bitstring_with_counters,
    expected_utrp_bitstring,
)


class TestTrpPrediction:
    @pytest.mark.parametrize("n,f", [(1, 5), (10, 10), (30, 17), (50, 200)])
    def test_matches_honest_scan(self, n, f):
        pop = TagPopulation.create(n, rng=np.random.default_rng(n))
        scan = TrustedReader().scan_trp(SlottedChannel(pop.tags), f, 4242)
        pred = expected_trp_bitstring(pop.ids, f, 4242)
        assert np.array_equal(scan.bitstring, pred)

    def test_empty_set(self):
        pred = expected_trp_bitstring(np.array([], dtype=np.uint64), 8, 1)
        assert pred.sum() == 0

    def test_rejects_bad_frame(self):
        with pytest.raises(ValueError):
            expected_trp_bitstring(np.array([1], dtype=np.uint64), 0, 1)

    def test_missing_tag_only_clears_bits(self):
        """Removing tags can only turn 1s into 0s, never add 1s."""
        pop = TagPopulation.create(40, rng=np.random.default_rng(2))
        full = expected_trp_bitstring(pop.ids, 60, 9)
        partial = expected_trp_bitstring(pop.ids[:-5], 60, 9)
        assert np.all(partial <= full)


class TestTrpPredictionWithCounters:
    @pytest.mark.parametrize("start_ct", [0, 3])
    def test_matches_counter_tag_scan(self, start_ct):
        pop = TagPopulation.create(25, uses_counter=True, rng=np.random.default_rng(5))
        for tag in pop:
            tag.counter = start_ct
        scan = TrustedReader().scan_trp(SlottedChannel(pop.tags), 40, 31)
        counters = np.full(25, start_ct, dtype=np.int64)
        pred, new_cts = expected_trp_bitstring_with_counters(pop.ids, counters, 40, 31)
        assert np.array_equal(scan.bitstring, pred)
        assert new_cts.tolist() == [start_ct + 1] * 25
        assert [t.counter for t in pop.tags] == new_cts.tolist()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_trp_bitstring_with_counters(
                np.array([1, 2], dtype=np.uint64), np.array([0]), 8, 1
            )


class TestUtrpPrediction:
    @pytest.mark.parametrize("n,f,seed", [(1, 6, 0), (5, 12, 1), (20, 30, 2),
                                          (30, 30, 3), (40, 120, 4), (60, 70, 5)])
    def test_matches_honest_scan(self, n, f, seed):
        rng = np.random.default_rng(seed)
        pop = TagPopulation.create(n, uses_counter=True, rng=rng)
        seeds = rng.integers(0, 1 << 62, size=f).tolist()
        scan = TrustedReader().scan_utrp(SlottedChannel(pop.tags), f, seeds)
        pred = expected_utrp_bitstring(
            pop.ids, np.zeros(n, dtype=np.int64), f, seeds
        )
        assert np.array_equal(scan.bitstring, pred.bitstring)
        assert [t.counter for t in pop.tags] == pred.counters.tolist()

    def test_nonzero_starting_counters(self):
        rng = np.random.default_rng(9)
        pop = TagPopulation.create(15, uses_counter=True, rng=rng)
        start = rng.integers(0, 10, size=15)
        for tag, ct in zip(pop.tags, start.tolist()):
            tag.counter = ct
        seeds = rng.integers(0, 1 << 62, size=40).tolist()
        scan = TrustedReader().scan_utrp(SlottedChannel(pop.tags), 40, seeds)
        pred = expected_utrp_bitstring(pop.ids, start.astype(np.int64), 40, seeds)
        assert np.array_equal(scan.bitstring, pred.bitstring)
        assert [t.counter for t in pop.tags] == pred.counters.tolist()

    def test_empty_set(self):
        pred = expected_utrp_bitstring(
            np.array([], dtype=np.uint64), np.array([], dtype=np.int64), 6,
            list(range(6)),
        )
        assert pred.bitstring.sum() == 0
        assert pred.seeds_used == 1

    def test_counter_uniformity(self):
        """All tags hear the same broadcasts, so counters advance by the
        same amount for every tag."""
        rng = np.random.default_rng(13)
        pop = TagPopulation.create(20, uses_counter=True, rng=rng)
        seeds = rng.integers(0, 1 << 62, size=50).tolist()
        pred = expected_utrp_bitstring(pop.ids, np.zeros(20, dtype=np.int64), 50, seeds)
        assert len(set(pred.counters.tolist())) == 1
        assert pred.counters[0] == pred.seeds_used

    def test_seed_shortage(self):
        with pytest.raises(ValueError):
            expected_utrp_bitstring(
                np.array([1], dtype=np.uint64), np.array([0]), 10, [1, 2, 3]
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_utrp_bitstring(
                np.array([1, 2], dtype=np.uint64), np.array([0]), 4, [1, 2, 3, 4]
            )

    def test_wrong_seed_order_changes_prediction(self):
        """The reader must consume seeds strictly in order (Sec. 5.3);
        a permuted list yields a different cascade."""
        rng = np.random.default_rng(21)
        pop = TagPopulation.create(25, uses_counter=True, rng=rng)
        seeds = rng.integers(0, 1 << 62, size=40).tolist()
        forward = expected_utrp_bitstring(
            pop.ids, np.zeros(25, dtype=np.int64), 40, seeds
        )
        shuffled = [seeds[0]] + seeds[:0:-1]
        backward = expected_utrp_bitstring(
            pop.ids, np.zeros(25, dtype=np.int64), 40, shuffled
        )
        assert not np.array_equal(forward.bitstring, backward.bitstring)
