"""Tests for repro.simulation.trace — protocol event recording."""

import numpy as np

from repro.rfid.population import TagPopulation
from repro.rfid.reader import TrustedReader
from repro.simulation.trace import (
    TraceEventKind,
    TracingChannel,
    render_trace,
)


def _traced_trp(n=15, f=25, seed=7):
    pop = TagPopulation.create(n, rng=np.random.default_rng(seed))
    channel = TracingChannel(pop.tags)
    scan = TrustedReader().scan_trp(channel, f, 1234)
    return channel, scan


def _traced_utrp(n=15, f=30, seed=7):
    pop = TagPopulation.create(n, uses_counter=True, rng=np.random.default_rng(seed))
    channel = TracingChannel(pop.tags)
    seeds = list(range(100, 100 + f))
    scan = TrustedReader().scan_utrp(channel, f, seeds)
    return channel, scan


class TestTrpTrace:
    def test_one_broadcast(self):
        channel, _ = _traced_trp()
        assert len(channel.broadcasts()) == 1

    def test_polls_cover_frame_in_order(self):
        channel, _ = _traced_trp(f=25)
        polls = channel.polls()
        assert [e.slot for e in polls] == list(range(25))

    def test_occupied_polls_match_bitstring(self):
        channel, scan = _traced_trp()
        assert len(channel.occupied_polls()) == int(scan.bitstring.sum())

    def test_power_cycle_recorded_first(self):
        channel, _ = _traced_trp()
        assert channel.events[0].kind is TraceEventKind.POWER_CYCLE


class TestUtrpTrace:
    def test_broadcast_per_occupied_slot(self):
        channel, scan = _traced_utrp()
        ones = int(scan.bitstring.sum())
        expected = 1 + ones - (1 if scan.bitstring[-1] else 0)
        assert len(channel.broadcasts()) == expected

    def test_broadcast_frames_shrink(self):
        channel, _ = _traced_utrp()
        frames = [e.frame_size for e in channel.broadcasts()]
        assert frames == sorted(frames, reverse=True)
        assert all(f > 0 for f in frames)

    def test_repliers_accounted(self):
        channel, _ = _traced_utrp(n=15)
        assert sum(e.repliers for e in channel.polls()) == 15


class TestRendering:
    def test_render_mentions_events(self):
        channel, _ = _traced_trp(n=5, f=8)
        text = render_trace(channel.events)
        assert "broadcast" in text and "poll slot" in text

    def test_render_limit_truncates(self):
        channel, _ = _traced_trp(n=5, f=8)
        text = render_trace(channel.events, limit=3)
        assert "more events" in text
        assert len(text.splitlines()) == 4

    def test_render_zero_limit_shows_all(self):
        channel, _ = _traced_trp(n=5, f=8)
        assert len(render_trace(channel.events).splitlines()) == len(channel.events)
