"""Tests for repro.faults — models, plans, injector determinism — and
the degradation primitives they drive (tag fade, channel stats,
salvage, voting, retry chaining, state v2 resync persistence)."""

import json

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.verification import (
    AlarmConfirmation,
    Verdict,
    channel_false_alarm_probability,
    salvage_partial_scan,
    vote_detection_probability,
    vote_false_alarm_probability,
)
from repro.faults import (
    FAULT_DIMENSION,
    BurstLossChannel,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GilbertElliott,
    RoundFaults,
    example_plan,
)
from repro.fleet.resilience import RetryExhausted, RetryPolicy, run_with_retry
from repro.rfid.channel import ChannelOutage, ChannelStats, FlakyChannel
from repro.rfid.population import TagPopulation


class TestGilbertElliott:
    def test_closed_forms(self):
        model = GilbertElliott(p_good_to_bad=0.02, p_bad_to_good=0.25)
        pi = 0.02 / 0.27
        assert model.stationary_bad == pytest.approx(pi)
        assert model.marginal_loss == pytest.approx(pi)  # loss_bad = 1
        assert model.mean_burst_length == pytest.approx(4.0)

    def test_from_burst_round_trips(self):
        model = GilbertElliott.from_burst(0.01, 8.0)
        assert model.marginal_loss == pytest.approx(0.01)
        assert model.mean_burst_length == pytest.approx(8.0)

    def test_from_burst_rejects_unreachable_marginal(self):
        with pytest.raises(ValueError):
            GilbertElliott.from_burst(0.6, 4.0, loss_bad=0.5)
        with pytest.raises(ValueError):
            GilbertElliott.from_burst(0.01, 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.0, p_bad_to_good=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.5, p_bad_to_good=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(0.1, 0.1, loss_bad=1.2)

    def test_state_sequence_deterministic_and_sized(self):
        model = GilbertElliott.from_burst(0.05, 8.0)
        a = model.state_sequence(500, np.random.default_rng(3))
        b = model.state_sequence(500, np.random.default_rng(3))
        assert a.shape == (500,)
        assert np.array_equal(a, b)

    def test_loss_mask_hits_the_marginal(self):
        model = GilbertElliott.from_burst(0.05, 8.0)
        rng = np.random.default_rng(0)
        mask = model.loss_mask(200_000, rng)
        assert mask.mean() == pytest.approx(0.05, abs=0.01)

    def test_bursts_are_longer_than_iid_at_same_marginal(self):
        rng = np.random.default_rng(1)
        bursty = GilbertElliott.from_burst(0.05, 16.0).state_sequence(
            100_000, rng
        )
        runs = np.diff(np.flatnonzero(np.diff(bursty.astype(int))))
        # Mean BAD sojourn should be far above the i.i.d. value of ~1.
        bad_runs = runs[::2] if bursty[0] else runs[1::2]
        assert bad_runs.mean() > 4.0


class TestBurstLossChannel:
    def _scan(self, channel, frame_size, seed=42):
        channel.power_cycle()
        channel.broadcast_seed(frame_size, seed)
        for slot in range(frame_size):
            channel.poll_slot(slot)

    def test_erasures_charge_replies_lost(self):
        tags = TagPopulation.create(200, rng=np.random.default_rng(5))
        model = GilbertElliott.from_burst(0.3, 8.0)
        channel = BurstLossChannel(
            tags.tags, model, np.random.default_rng(7)
        )
        self._scan(channel, 128)
        assert channel.stats.replies_lost > 0
        heard = (
            channel.stats.singleton_slots + channel.stats.collision_slots
        )
        assert heard < 128  # something was actually erased

    def test_seed_loss_freezes_the_counter(self):
        tags = TagPopulation.create(
            50, uses_counter=True, rng=np.random.default_rng(5)
        )
        before = [tag.counter for tag in tags.tags]
        model = GilbertElliott.from_burst(0.01, 2.0)
        channel = BurstLossChannel(
            tags.tags, model, np.random.default_rng(11), seed_loss_rate=0.3
        )
        channel.power_cycle()
        channel.broadcast_seed(64, 9)
        assert channel.seed_losses > 0
        ticked = sum(
            tag.counter == b + 1 for tag, b in zip(tags.tags, before)
        )
        assert ticked == 50 - channel.seed_losses

    def test_replay_is_bit_identical(self):
        def run():
            tags = TagPopulation.create(80, rng=np.random.default_rng(5))
            model = GilbertElliott.from_burst(0.2, 4.0)
            channel = BurstLossChannel(
                tags.tags, model, np.random.default_rng(13)
            )
            self._scan(channel, 64)
            return channel.stats

        assert run() == run()


class TestTagFade:
    def test_faded_tag_is_deaf_and_counter_frozen(self):
        tags = TagPopulation.create(
            1, uses_counter=True, rng=np.random.default_rng(5)
        )
        tag = tags.tags[0]
        before = tag.counter
        tag.power_fade()
        assert tag.faded
        tag.receive_seed(32, 1)
        assert tag.counter == before
        assert tag.poll(tag.chosen_slot or 0) is None

    def test_power_cycle_clears_the_fade(self):
        tags = TagPopulation.create(1, rng=np.random.default_rng(5))
        tag = tags.tags[0]
        tag.power_fade()
        tag.power_cycle()
        assert not tag.faded


class TestChannelStats:
    def test_merge_carries_the_failure_axes(self):
        a = ChannelStats(replies_lost=3, outages=1, slots_polled=10)
        b = ChannelStats(replies_lost=4, outages=2, slots_polled=5)
        merged = a.merge(b)
        assert merged.replies_lost == 7
        assert merged.outages == 3
        assert merged.slots_polled == 15

    def test_flaky_channel_outages_live_in_stats(self):
        tags = TagPopulation.create(5, rng=np.random.default_rng(5))
        channel = FlakyChannel(
            tags.tags, outage_rate=1.0, rng=np.random.default_rng(1)
        )
        with pytest.raises(ChannelOutage):
            channel.broadcast_seed(16, 1)
        assert channel.outages == 1
        assert channel.stats.outages == 1

    def test_outage_leaves_tags_clean_for_the_retry(self):
        """An aborted session must not leak state into the next one."""
        tags = TagPopulation.create(
            10, uses_counter=True, rng=np.random.default_rng(5)
        )
        counters = [tag.counter for tag in tags.tags]
        channel = FlakyChannel(
            tags.tags, outage_rate=1.0, rng=np.random.default_rng(1)
        )
        channel.power_cycle()
        with pytest.raises(ChannelOutage):
            channel.broadcast_seed(16, 1)
        for tag, before in zip(tags.tags, counters):
            assert tag.counter == before  # outage precedes the downlink
            assert tag.chosen_slot is None


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("gamma-rays", intensity=0.1)
        with pytest.raises(ValueError):
            FaultSpec("burst-loss")  # needs a positive intensity
        with pytest.raises(ValueError):
            FaultSpec("burst-loss", intensity=0.1, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("burst-loss", intensity=0.1, at_tick=-1)
        FaultSpec("outage")  # outage needs no intensity

    def test_scoping(self):
        spec = FaultSpec(
            "seed-loss", intensity=0.1, groups=["a"], at_tick=3
        )
        assert spec.applies_to("a", 3)
        assert not spec.applies_to("b", 3)
        assert not spec.applies_to("a", 2)
        everywhere = FaultSpec("outage")
        assert everywhere.applies_to("anything", 99)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultSpec.from_dict({"fault": "outage", "intensty": 0.5})
        with pytest.raises(ValueError, match="'fault'"):
            FaultSpec.from_dict({"intensity": 0.5})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = example_plan()
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded.name == plan.name
        assert loaded.specs == plan.specs

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError):
            FaultPlan.from_json(
                json.dumps({"format": "repro-fault-plan", "version": 9})
            )

    def test_specs_for_preserves_plan_order(self):
        plan = example_plan()
        in_scope = plan.specs_for("group-00", 3)
        kinds = [s.fault for s in in_scope]
        assert kinds == ["burst-loss", "reader-crash"]


class TestFaultInjector:
    def test_same_coordinates_same_faults(self):
        injector = FaultInjector(example_plan(), master_seed=99)
        a = injector.faults_for("g", 0, 3, 0, frame_size=256, population=100)
        b = injector.faults_for("g", 0, 3, 0, frame_size=256, population=100)
        assert a.injected == b.injected
        assert np.array_equal(a.loss_mask, b.loss_mask) or (
            a.loss_mask is None and b.loss_mask is None
        )
        assert a.crash_fraction == b.crash_fraction

    def test_attempt_bump_rerolls(self):
        plan = FaultPlan(
            specs=[FaultSpec("burst-loss", intensity=0.2, burst_length=4.0)]
        )
        injector = FaultInjector(plan, master_seed=99)
        a = injector.faults_for("g", 0, 0, 0, frame_size=512, population=10)
        b = injector.faults_for("g", 0, 0, 1, frame_size=512, population=10)
        assert not np.array_equal(a.loss_mask, b.loss_mask)

    def test_out_of_scope_rounds_are_fault_free(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("outage", at_tick=5)]), master_seed=1
        )
        faults = injector.faults_for("g", 0, 4, 0, frame_size=8, population=1)
        assert faults.empty
        assert not faults.outage

    def test_fault_dimension_is_disjoint_from_the_fleet(self):
        assert FAULT_DIMENSION != 99

    def test_crash_polled_slots_bounds(self):
        faults = RoundFaults(injected=["reader-crash"], crash_fraction=0.0)
        assert faults.polled_slots(100) == 1  # never zero slots
        faults.crash_fraction = 1.0
        assert faults.polled_slots(100) == 100
        assert RoundFaults().polled_slots(64) == 64

    def test_appending_a_spec_keeps_earlier_draws(self):
        base = FaultPlan(
            specs=[FaultSpec("burst-loss", intensity=0.2, burst_length=4.0)]
        )
        extended = FaultPlan(
            specs=base.specs
            + [FaultSpec("tag-fade", intensity=0.5)]
        )
        a = FaultInjector(base, 7).faults_for("g", 0, 0, 0, 256, 50)
        b = FaultInjector(extended, 7).faults_for("g", 0, 0, 0, 256, 50)
        assert np.array_equal(a.loss_mask, b.loss_mask)
        assert b.fade_after is not None


class TestSalvage:
    def test_partial_prefix_verifies_at_reduced_confidence(self):
        frame = 64
        expected = np.zeros(frame, dtype=np.uint8)
        expected[[3, 10, 40]] = 1
        observed = expected[:32].copy()
        result = salvage_partial_scan(expected, observed, frame, 100, 5)
        assert result.verdict is Verdict.INTACT
        assert result.salvaged
        assert result.polled_slots == 32
        assert 0.0 < result.achieved_confidence < 1.0

    def test_mismatch_in_the_prefix_still_alarms(self):
        frame = 64
        expected = np.zeros(frame, dtype=np.uint8)
        expected[5] = 1
        observed = np.zeros(16, dtype=np.uint8)
        result = salvage_partial_scan(expected, observed, frame, 100, 5)
        assert result.verdict is Verdict.NOT_INTACT
        assert result.mismatched_slots == [5]

    def test_prefix_longer_than_frame_rejected(self):
        with pytest.raises(ValueError):
            salvage_partial_scan(
                np.zeros(8, dtype=np.uint8),
                np.zeros(9, dtype=np.uint8),
                8,
                10,
                1,
            )


class TestVotingMath:
    def test_vote_probability_is_the_binomial_tail(self):
        q = 0.12
        assert vote_false_alarm_probability(q, 3, 4) == pytest.approx(
            float(sps.binom.sf(2, 4, q))
        )
        assert vote_detection_probability(0.97, 3, 4) == pytest.approx(
            float(sps.binom.sf(2, 4, 0.97))
        )

    def test_vote_suppresses_fa_but_keeps_detection(self):
        fa = vote_false_alarm_probability(0.1, 3, 4)
        det = vote_detection_probability(0.97, 3, 4)
        assert fa < 0.1 / 10  # >= 10x suppression at this point
        assert det > 0.95

    def test_channel_false_alarm_edges(self):
        assert channel_false_alarm_probability(0, 100, 0.5) == 0.0
        assert channel_false_alarm_probability(100, 100, 0.0) == 0.0
        mid = channel_false_alarm_probability(1000, 694, 0.002)
        assert 0.0 < mid < 1.0
        with pytest.raises(ValueError):
            channel_false_alarm_probability(10, 0, 0.1)
        with pytest.raises(ValueError):
            vote_false_alarm_probability(0.5, 0, 3)
        with pytest.raises(ValueError):
            vote_false_alarm_probability(0.5, 4, 3)

    def test_confirmation_pages_on_quorum_and_rearms(self):
        vote = AlarmConfirmation(quorum=2, window=3)
        assert vote.observe(True) is False  # 1 of 3
        assert vote.suppressed == 1
        assert vote.observe(True) is True  # quorum met -> page once
        assert vote.observe(True) is False  # still confirmed, no re-page
        vote.observe(False)
        vote.observe(False)
        vote.observe(False)  # window cleared -> re-armed
        vote.observe(True)
        assert vote.observe(True) is True  # distinct incident re-pages


class TestRetryChaining:
    def test_exhaustion_chains_the_last_error(self):
        def always_fails(index):
            raise ChannelOutage(f"attempt {index}")

        with pytest.raises(RetryExhausted) as info:
            run_with_retry(always_fails, RetryPolicy(max_attempts=3))
        exc = info.value
        assert exc.attempts == 3
        assert exc.__cause__ is exc.last_error
        assert "attempt 2" in str(exc.last_error)

    def test_on_retry_sees_each_absorbed_failure(self):
        seen = []

        def flaky(index):
            if index < 2:
                raise ChannelOutage(f"attempt {index}")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_backoff_us=100.0)
        result, attempts, backoff = run_with_retry(
            flaky, policy, on_retry=lambda i, e, b: seen.append((i, b))
        )
        assert result == "ok"
        assert attempts == 3
        assert seen == [(0, 100.0), (1, 200.0)]
        assert backoff == 300.0


class TestStateV2Resync:
    def test_resync_block_round_trips(self, tmp_path):
        from repro.core.utrp import ResyncReport
        from repro.server.state import (
            export_state,
            import_resync,
            import_state,
        )
        from repro.server.database import TagDatabase

        database = TagDatabase()
        database.register_set([1, 2, 3])
        report = ResyncReport(
            rounds_run=2,
            frame_size=64,
            recovered={1: 2},
            unresolved=[3],
            ambiguous=[2],
        )
        doc = export_state(database, resync=report)
        assert doc["version"] == 3
        loaded = import_resync(doc)
        assert loaded.recovered == {1: 2}
        assert loaded.unresolved == [3]
        assert loaded.ambiguous == [2]
        # The main state import still works on the same document.
        restored, _ = import_state(doc)
        assert sorted(restored.ids) == [1, 2, 3]

    def test_complete_resync_is_not_persisted(self):
        from repro.core.utrp import ResyncReport
        from repro.server.state import export_state
        from repro.server.database import TagDatabase

        done = ResyncReport(rounds_run=1, frame_size=8, recovered={5: 1})
        database = TagDatabase()
        database.register_set([5])
        doc = export_state(database, resync=done)
        assert "resync" not in doc

    def test_version_1_documents_still_import(self):
        from repro.server.state import export_state, import_state
        from repro.server.database import TagDatabase

        database = TagDatabase()
        database.register_set([7, 8])
        doc = export_state(database)
        doc["version"] = 1
        doc.pop("resync", None)
        restored, issuer = import_state(doc)
        assert sorted(restored.ids) == [7, 8]
