"""Unit tests for repro.rfid.reader — honest scan procedures."""

import numpy as np
import pytest

from repro.rfid.channel import SlottedChannel
from repro.rfid.hashing import slots_for_tags
from repro.rfid.population import TagPopulation
from repro.rfid.reader import TrustedReader
from repro.server.verifier import expected_utrp_bitstring


class TestScanTrp:
    def test_bitstring_matches_direct_hash(self, rng):
        pop = TagPopulation.create(30, rng=rng)
        channel = SlottedChannel(pop.tags)
        scan = TrustedReader().scan_trp(channel, 40, 1234)
        expected_slots = set(slots_for_tags(pop.ids, 1234, 40).tolist())
        assert set(np.nonzero(scan.bitstring)[0].tolist()) == expected_slots

    def test_slots_and_seeds_accounting(self, rng):
        pop = TagPopulation.create(10, rng=rng)
        scan = TrustedReader().scan_trp(SlottedChannel(pop.tags), 25, 7)
        assert scan.slots_used == 25
        assert scan.seeds_used == 1

    def test_empty_population_all_zero(self):
        scan = TrustedReader().scan_trp(SlottedChannel([]), 12, 7)
        assert scan.bitstring.sum() == 0

    def test_rescans_power_cycle_tags(self, rng):
        """A second scan must see every tag again, not leftover silence."""
        pop = TagPopulation.create(20, rng=rng)
        channel = SlottedChannel(pop.tags)
        reader = TrustedReader()
        first = reader.scan_trp(channel, 30, 1)
        second = reader.scan_trp(channel, 30, 1)
        assert np.array_equal(first.bitstring, second.bitstring)

    def test_ones_bounded_by_population(self, rng):
        pop = TagPopulation.create(15, rng=rng)
        scan = TrustedReader().scan_trp(SlottedChannel(pop.tags), 100, 99)
        assert 1 <= scan.bitstring.sum() <= 15


class TestScanUtrp:
    def _scan(self, n, f, seed_base=0, rng_seed=1):
        rng = np.random.default_rng(rng_seed)
        pop = TagPopulation.create(n, uses_counter=True, rng=rng)
        channel = SlottedChannel(pop.tags)
        seeds = [seed_base + i for i in range(f)]
        scan = TrustedReader().scan_utrp(channel, f, seeds)
        return pop, scan, seeds

    def test_matches_verifier_prediction(self):
        pop, scan, seeds = self._scan(20, 50)
        pred = expected_utrp_bitstring(
            pop.ids, np.zeros(len(pop), dtype=np.int64), 50, seeds
        )
        assert np.array_equal(scan.bitstring, pred.bitstring)

    def test_counters_match_verifier(self):
        pop, scan, seeds = self._scan(20, 50)
        pred = expected_utrp_bitstring(
            pop.ids, np.zeros(len(pop), dtype=np.int64), 50, seeds
        )
        assert [t.counter for t in pop.tags] == pred.counters.tolist()

    def test_seed_usage_one_plus_occupied_unless_last(self):
        pop, scan, _ = self._scan(25, 60)
        ones = int(scan.bitstring.sum())
        expected = 1 + ones - (1 if scan.bitstring[-1] else 0)
        assert scan.seeds_used == expected

    def test_requires_enough_seeds(self):
        pop = TagPopulation.create(3, uses_counter=True, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            TrustedReader().scan_utrp(SlottedChannel(pop.tags), 10, [1, 2])

    def test_every_tag_replies_exactly_once(self):
        """All n tags are accounted for: total repliers equals n."""
        rng = np.random.default_rng(5)
        pop = TagPopulation.create(30, uses_counter=True, rng=rng)
        channel = SlottedChannel(pop.tags)
        TrustedReader().scan_utrp(channel, 80, list(range(80)))
        occupied = channel.stats.singleton_slots + channel.stats.collision_slots
        assert occupied == int(
            np.sum([1 for t in pop.tags if t.state.value == "silent"]) > 0
        ) * occupied
        assert all(t.state.value == "silent" for t in pop.tags)

    def test_empty_population(self):
        scan = TrustedReader().scan_utrp(SlottedChannel([]), 10, list(range(10)))
        assert scan.bitstring.sum() == 0
        assert scan.seeds_used == 1
