"""Unit tests for repro.rfid.hashing — the slot-selection primitive."""

import numpy as np
import pytest

from repro.rfid.hashing import (
    MASK64,
    slot_for_tag,
    slots_for_tags,
    slots_for_tags_with_counters,
    splitmix64,
    splitmix64_array,
    tag_hash,
    tag_hash_array,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_known_distinct_inputs_differ(self):
        assert splitmix64(0) != splitmix64(1)

    def test_output_in_64_bit_range(self):
        for v in (0, 1, 2**63, MASK64, 17):
            out = splitmix64(v)
            assert 0 <= out <= MASK64

    def test_inputs_reduced_modulo_64_bits(self):
        assert splitmix64(MASK64 + 1 + 7) == splitmix64(7)

    def test_avalanche_single_bit_flip(self):
        """Flipping one input bit should flip roughly half the output bits."""
        flips = []
        for bit in range(0, 64, 7):
            a = splitmix64(0xDEADBEEF)
            b = splitmix64(0xDEADBEEF ^ (1 << bit))
            flips.append(bin(a ^ b).count("1"))
        assert all(16 <= f <= 48 for f in flips)

    def test_array_matches_scalar(self):
        values = np.array([0, 1, 99, 2**40, MASK64], dtype=np.uint64)
        out = splitmix64_array(values)
        for v, o in zip(values.tolist(), out.tolist()):
            assert splitmix64(int(v)) == int(o)

    def test_array_does_not_mutate_input(self):
        values = np.array([5, 6], dtype=np.uint64)
        copy = values.copy()
        splitmix64_array(values)
        assert np.array_equal(values, copy)


class TestTagHash:
    def test_counter_changes_hash(self):
        assert tag_hash(10, 20, 0) != tag_hash(10, 20, 1)

    def test_counter_zero_matches_trp_form(self):
        assert tag_hash(10, 20) == splitmix64(10 ^ 20)

    def test_xor_symmetry_of_id_and_seed(self):
        """h(id XOR r) is symmetric in id and r by construction."""
        assert tag_hash(3, 5) == tag_hash(5, 3)

    def test_array_matches_scalar(self):
        ids = np.array([1, 2, 3, 500], dtype=np.uint64)
        out = tag_hash_array(ids, seed=777, counter=4)
        for i, o in zip(ids.tolist(), out.tolist()):
            assert tag_hash(int(i), 777, 4) == int(o)


class TestSlotSelection:
    def test_slot_in_range(self):
        for f in (1, 2, 7, 100, 4096):
            assert 0 <= slot_for_tag(0xABC, 0x123, f) < f

    def test_deterministic_given_same_inputs(self):
        assert slot_for_tag(1, 2, 50) == slot_for_tag(1, 2, 50)

    def test_seed_changes_slot_distribution(self):
        """Across many seeds a tag must not be stuck in one slot."""
        slots = {slot_for_tag(42, seed, 16) for seed in range(200)}
        assert len(slots) == 16

    def test_frame_size_one_always_slot_zero(self):
        assert slot_for_tag(99, 7, 1) == 0

    def test_rejects_nonpositive_frame(self):
        with pytest.raises(ValueError):
            slot_for_tag(1, 2, 0)
        with pytest.raises(ValueError):
            slots_for_tags(np.array([1], dtype=np.uint64), 2, -5)

    def test_vector_matches_scalar(self):
        ids = np.arange(100, dtype=np.uint64)
        slots = slots_for_tags(ids, seed=31337, frame_size=17)
        for i, s in zip(ids.tolist(), slots.tolist()):
            assert slot_for_tag(int(i), 31337, 17) == int(s)

    def test_uniformity_chi_square(self):
        """Sequential IDs (hardest case) must spread uniformly over slots."""
        from scipy import stats

        f = 64
        ids = np.arange(64_000, dtype=np.uint64)
        slots = slots_for_tags(ids, seed=9, frame_size=f)
        counts = np.bincount(slots, minlength=f)
        chi2 = ((counts - len(ids) / f) ** 2 / (len(ids) / f)).sum()
        pvalue = stats.chi2.sf(chi2, df=f - 1)
        assert pvalue > 1e-4  # not catastrophically non-uniform

    def test_counter_vector_matches_scalar(self):
        ids = np.array([11, 22, 33], dtype=np.uint64)
        counters = np.array([0, 3, 9])
        slots = slots_for_tags_with_counters(ids, 5, 13, counters)
        for i, ct, s in zip(ids.tolist(), counters.tolist(), slots.tolist()):
            assert slot_for_tag(int(i), 5, 13, int(ct)) == int(s)

    def test_counter_vector_shape_mismatch(self):
        with pytest.raises(ValueError):
            slots_for_tags_with_counters(
                np.array([1, 2], dtype=np.uint64), 5, 13, np.array([0])
            )

    def test_counter_vector_rejects_bad_frame(self):
        with pytest.raises(ValueError):
            slots_for_tags_with_counters(
                np.array([1], dtype=np.uint64), 5, 0, np.array([0])
            )
