"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.parameters import MonitorRequirement
from repro.rfid.channel import SlottedChannel
from repro.rfid.population import TagPopulation


@pytest.fixture
def rng():
    """Deterministic generator; tests needing other streams seed their own."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_requirement():
    """A small, fast-to-simulate monitoring requirement."""
    return MonitorRequirement(population=60, tolerance=3, confidence=0.95)


@pytest.fixture
def plain_population(rng):
    """60 TRP-grade tags (no counter)."""
    return TagPopulation.create(60, uses_counter=False, rng=rng)


@pytest.fixture
def counter_population(rng):
    """60 UTRP-grade tags (hardware counter)."""
    return TagPopulation.create(60, uses_counter=True, rng=rng)


@pytest.fixture
def plain_channel(plain_population):
    return SlottedChannel(plain_population.tags)


@pytest.fixture
def counter_channel(counter_population):
    return SlottedChannel(counter_population.tags)
