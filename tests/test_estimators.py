"""Unit tests for repro.aloha.estimators — cardinality estimation."""

import numpy as np
import pytest

from repro.aloha.estimators import (
    SingletonEstimator,
    ZeroEstimator,
    average_estimate,
)
from repro.aloha.frame import FrameOutcome, hash_frame
from repro.rfid.population import TagPopulation


def _avg_estimate(estimator, n, f, rounds=60, seed0=0):
    ids = TagPopulation.create(n, rng=np.random.default_rng(42)).ids
    values = []
    for s in range(rounds):
        try:
            values.append(estimator.estimate(hash_frame(ids, f, seed0 + s)).estimate)
        except ValueError:
            continue
    assert values, "estimator never produced a value"
    return float(np.mean(values))


class TestZeroEstimator:
    def test_unbiased_at_moderate_load(self):
        est = _avg_estimate(ZeroEstimator(), n=100, f=150)
        assert abs(est - 100) < 12

    def test_works_at_light_load(self):
        est = _avg_estimate(ZeroEstimator(), n=20, f=200)
        assert abs(est - 20) < 6

    def test_saturated_frame_raises(self):
        outcome = FrameOutcome(frame_size=2, slot_counts=np.array([3, 3]))
        with pytest.raises(ValueError):
            ZeroEstimator().estimate(outcome)

    def test_empty_population_estimates_zero(self):
        outcome = hash_frame(np.array([], dtype=np.uint64), 10, 1)
        assert ZeroEstimator().estimate(outcome).estimate == 0.0

    def test_result_carries_evidence(self):
        outcome = hash_frame(np.arange(5, dtype=np.uint64), 20, 1)
        res = ZeroEstimator().estimate(outcome)
        assert res.frame_size == 20
        assert res.observed == outcome.empty_slots


class TestSingletonEstimator:
    def test_unbiased_on_rising_branch(self):
        est = _avg_estimate(SingletonEstimator(), n=60, f=150)
        assert abs(est - 60) < 15

    def test_zero_singletons_estimates_zero(self):
        outcome = FrameOutcome(frame_size=4, slot_counts=np.array([0, 0, 2, 2]))
        assert SingletonEstimator().estimate(outcome).estimate == 0.0

    def test_infeasible_singleton_count_raises(self):
        # 4 singletons in 4 slots exceeds the curve's max f/e ~ 1.47.
        outcome = FrameOutcome(frame_size=4, slot_counts=np.array([1, 1, 1, 1]))
        with pytest.raises(ValueError):
            SingletonEstimator().estimate(outcome)


class TestAverageEstimate:
    def test_averaging_reduces_error(self):
        ids = TagPopulation.create(80, rng=np.random.default_rng(3)).ids
        avg = average_estimate(ZeroEstimator(), ids, 120, seeds=range(50))
        assert abs(avg - 80) < 10

    def test_requires_seeds(self):
        ids = np.arange(5, dtype=np.uint64)
        with pytest.raises(ValueError):
            average_estimate(ZeroEstimator(), ids, 10, seeds=[])
