"""Tests for the network-fault adapter (repro.serve.netfaults)."""

import asyncio

import numpy as np
import pytest

from repro.faults.models import GilbertElliott
from repro.serve import (
    FrameAction,
    FrameFaultInjector,
    MonitoringService,
    ReaderClient,
    SessionConfig,
)
from repro.rfid.channel import SlottedChannel

POP = 30
SEED = 13


def _always_bad(loss: float = 1.0) -> GilbertElliott:
    """A chain glued to its BAD state with the given per-frame loss."""
    return GilbertElliott(
        p_good_to_bad=1.0, p_bad_to_good=1e-12, loss_bad=loss, loss_good=0.0
    )


def _always_good() -> GilbertElliott:
    """A chain that (to any realisable precision) never goes BAD."""
    return GilbertElliott(
        p_good_to_bad=1e-12, p_bad_to_good=1.0, loss_bad=0.0, loss_good=0.0
    )


class TestInjectorMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameFaultInjector(_always_bad(), None)
        with pytest.raises(ValueError):
            FrameFaultInjector(
                _always_bad(), np.random.default_rng(0), delay_us=-1.0
            )

    def test_clean_channel_delivers_everything(self):
        inj = FrameFaultInjector(_always_good(), np.random.default_rng(0))
        actions = [inj.on_frame("BITSTRING") for _ in range(50)]
        assert all(a == FrameAction() for a in actions)
        assert inj.frames_dropped == 0
        assert inj.frames_seen == 50

    def test_bad_state_drops_at_loss_bad(self):
        inj = FrameFaultInjector(_always_bad(1.0), np.random.default_rng(0))
        actions = [inj.on_frame("BITSTRING") for _ in range(20)]
        assert all(a.dropped for a in actions)
        assert inj.frames_dropped == 20

    def test_bad_state_survivors_are_delayed(self):
        inj = FrameFaultInjector(
            _always_bad(0.0), np.random.default_rng(0), delay_us=500.0
        )
        action = inj.on_frame("BITSTRING")
        assert not action.dropped
        assert action.delay_us == 500.0
        assert inj.frames_delayed == 1

    def test_seeded_schedule_replays(self):
        model = GilbertElliott(
            p_good_to_bad=0.3, p_bad_to_good=0.4, loss_bad=0.8, loss_good=0.05
        )
        a = FrameFaultInjector(model, np.random.default_rng(42), delay_us=10.0)
        b = FrameFaultInjector(model, np.random.default_rng(42), delay_us=10.0)
        actions_a = [a.on_frame("x") for _ in range(200)]
        actions_b = [b.on_frame("x") for _ in range(200)]
        assert actions_a == actions_b
        assert a.frames_dropped > 0  # the schedule actually bites


class TestFaultsOverTheWire:
    def test_dropped_proof_triggers_deadline_alarm(self):
        # A burst swallows the BITSTRING: the server's deadline fires,
        # the round takes the Theorem-5 path, the reader receives the
        # unprompted rejected-late verdict.
        config = SessionConfig(reply_timeout_s=0.05)

        async def scenario():
            svc = MonitoringService(session_config=config)
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                injector = FrameFaultInjector(
                    _always_bad(1.0), np.random.default_rng(0)
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=injector,
                )
                async with client:
                    outcome = await client.run_round("g", "utrp")
                return outcome, injector, svc.groups["g"].monitor.alerts

        outcome, injector, alerts = asyncio.run(scenario())
        assert injector.frames_dropped == 1
        assert outcome.verdict == "rejected-late"
        assert outcome.alarm is True
        assert len(alerts) == 1

    def test_delayed_proof_past_timer_is_rejected_late(self):
        # The frame survives but the burst's queueing delay lands it
        # beyond the UTRP timer.
        async def scenario():
            svc = MonitoringService()
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                injector = FrameFaultInjector(
                    _always_bad(0.0),
                    np.random.default_rng(0),
                    delay_us=1.0e6,
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=injector,
                )
                async with client:
                    return await client.run_round("g", "utrp")

        outcome = asyncio.run(scenario())
        assert outcome.verdict == "rejected-late"

    def test_clean_network_unaffected_by_adapter(self):
        async def scenario():
            svc = MonitoringService()
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=FrameFaultInjector(
                        _always_good(), np.random.default_rng(0)
                    ),
                )
                async with client:
                    return await client.run_round("g", "trp")

        assert asyncio.run(scenario()).verdict == "intact"


class TestGatewayIdleTimeout:
    """frame_idle_timeout_s guards the gateway's worker-facing reads: a
    worker that dribbles half a frame and goes silent must cost the
    client a prompt ERROR, not a wedge until the upstream timeout."""

    def test_dribbling_worker_fails_fast(self):
        import time
        from types import SimpleNamespace

        from repro.serve import protocol
        from repro.serve.wire import WireV1
        from repro.shard import ShardConfig
        from repro.shard.gateway import ShardGateway

        async def scenario():
            # A fake worker: swallows the RESEED, dribbles the first
            # half of a frame, then goes silent mid-frame forever.
            async def dribble(reader, writer):
                await protocol.read_frame(reader)
                payload = WireV1.encode(protocol.reseed("group-000", "trp"))
                writer.write(payload[: len(payload) // 2])
                await writer.drain()
                try:
                    await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    pass
                finally:
                    writer.close()

            worker_server = await asyncio.start_server(
                dribble, "127.0.0.1", 0
            )
            worker_port = worker_server.sockets[0].getsockname()[1]

            handle = SimpleNamespace(worker_id="w00", port=worker_port)

            class FakeSupervisor:
                adoptions = {}

                async def worker_for(self, group):
                    return handle

                async def worker_failed(self, worker_id):
                    return False  # "still alive": transport trouble only

            config = ShardConfig(
                workers=1,
                groups=1,
                population=POP,
                tolerance=2,
                seed=SEED,
                wire_versions=(1,),
                frame_idle_timeout_s=0.25,
                upstream_timeout_s=30.0,
                round_deadline_s=30.0,
                max_round_retries=2,
            )
            gateway = ShardGateway(FakeSupervisor(), config)
            await gateway.start(host="127.0.0.1", port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                started = time.monotonic()
                await protocol.write_frame(
                    writer, protocol.reseed("group-000", "trp")
                )
                frame = await asyncio.wait_for(
                    protocol.read_frame(reader), timeout=20.0
                )
                elapsed = time.monotonic() - started
                writer.close()
                return frame, elapsed, gateway.round_retries
            finally:
                await gateway.close()
                worker_server.close()
                await worker_server.wait_closed()

        frame, elapsed, retries = asyncio.run(scenario())
        assert frame is not None and frame.type == "ERROR"
        assert frame["code"] == "shard-unavailable"
        # Two idle-read strikes at 0.25s each, nowhere near the 30s
        # upstream timeout the idle guard is protecting us from.
        assert elapsed < 8.0
        assert retries >= 2
