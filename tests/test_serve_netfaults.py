"""Tests for the network-fault adapter (repro.serve.netfaults)."""

import asyncio

import numpy as np
import pytest

from repro.faults.models import GilbertElliott
from repro.serve import (
    FrameAction,
    FrameFaultInjector,
    MonitoringService,
    ReaderClient,
    SessionConfig,
)
from repro.rfid.channel import SlottedChannel

POP = 30
SEED = 13


def _always_bad(loss: float = 1.0) -> GilbertElliott:
    """A chain glued to its BAD state with the given per-frame loss."""
    return GilbertElliott(
        p_good_to_bad=1.0, p_bad_to_good=1e-12, loss_bad=loss, loss_good=0.0
    )


def _always_good() -> GilbertElliott:
    """A chain that (to any realisable precision) never goes BAD."""
    return GilbertElliott(
        p_good_to_bad=1e-12, p_bad_to_good=1.0, loss_bad=0.0, loss_good=0.0
    )


class TestInjectorMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameFaultInjector(_always_bad(), None)
        with pytest.raises(ValueError):
            FrameFaultInjector(
                _always_bad(), np.random.default_rng(0), delay_us=-1.0
            )

    def test_clean_channel_delivers_everything(self):
        inj = FrameFaultInjector(_always_good(), np.random.default_rng(0))
        actions = [inj.on_frame("BITSTRING") for _ in range(50)]
        assert all(a == FrameAction() for a in actions)
        assert inj.frames_dropped == 0
        assert inj.frames_seen == 50

    def test_bad_state_drops_at_loss_bad(self):
        inj = FrameFaultInjector(_always_bad(1.0), np.random.default_rng(0))
        actions = [inj.on_frame("BITSTRING") for _ in range(20)]
        assert all(a.dropped for a in actions)
        assert inj.frames_dropped == 20

    def test_bad_state_survivors_are_delayed(self):
        inj = FrameFaultInjector(
            _always_bad(0.0), np.random.default_rng(0), delay_us=500.0
        )
        action = inj.on_frame("BITSTRING")
        assert not action.dropped
        assert action.delay_us == 500.0
        assert inj.frames_delayed == 1

    def test_seeded_schedule_replays(self):
        model = GilbertElliott(
            p_good_to_bad=0.3, p_bad_to_good=0.4, loss_bad=0.8, loss_good=0.05
        )
        a = FrameFaultInjector(model, np.random.default_rng(42), delay_us=10.0)
        b = FrameFaultInjector(model, np.random.default_rng(42), delay_us=10.0)
        actions_a = [a.on_frame("x") for _ in range(200)]
        actions_b = [b.on_frame("x") for _ in range(200)]
        assert actions_a == actions_b
        assert a.frames_dropped > 0  # the schedule actually bites


class TestFaultsOverTheWire:
    def test_dropped_proof_triggers_deadline_alarm(self):
        # A burst swallows the BITSTRING: the server's deadline fires,
        # the round takes the Theorem-5 path, the reader receives the
        # unprompted rejected-late verdict.
        config = SessionConfig(reply_timeout_s=0.05)

        async def scenario():
            svc = MonitoringService(session_config=config)
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                injector = FrameFaultInjector(
                    _always_bad(1.0), np.random.default_rng(0)
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=injector,
                )
                async with client:
                    outcome = await client.run_round("g", "utrp")
                return outcome, injector, svc.groups["g"].monitor.alerts

        outcome, injector, alerts = asyncio.run(scenario())
        assert injector.frames_dropped == 1
        assert outcome.verdict == "rejected-late"
        assert outcome.alarm is True
        assert len(alerts) == 1

    def test_delayed_proof_past_timer_is_rejected_late(self):
        # The frame survives but the burst's queueing delay lands it
        # beyond the UTRP timer.
        async def scenario():
            svc = MonitoringService()
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                injector = FrameFaultInjector(
                    _always_bad(0.0),
                    np.random.default_rng(0),
                    delay_us=1.0e6,
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=injector,
                )
                async with client:
                    return await client.run_round("g", "utrp")

        outcome = asyncio.run(scenario())
        assert outcome.verdict == "rejected-late"

    def test_clean_network_unaffected_by_adapter(self):
        async def scenario():
            svc = MonitoringService()
            svc.create_group("g", POP, 2, 0.9, seed=SEED, counter_tags=True)
            async with svc:
                population = MonitoringService.build_population_for(
                    POP, seed=SEED, counter_tags=True
                )
                client = ReaderClient(
                    "127.0.0.1",
                    svc.port,
                    SlottedChannel(population.tags),
                    fault_injector=FrameFaultInjector(
                        _always_good(), np.random.default_rng(0)
                    ),
                )
                async with client:
                    return await client.run_round("g", "trp")

        assert asyncio.run(scenario()).verdict == "intact"
