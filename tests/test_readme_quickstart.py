"""The README's quickstart must execute exactly as printed."""

import os
import re

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))


def _python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadmeQuickstart:
    def test_quickstart_block_runs_verbatim(self):
        readme = open(os.path.join(REPO, "README.md")).read()
        blocks = _python_blocks(readme)
        assert blocks, "README lost its quickstart code block"
        # The first python block is the quickstart; it ends with asserts
        # of its own, so a clean exec is the test.
        namespace = {}
        exec(compile(blocks[0], "README.md:quickstart", "exec"), namespace)
        assert "server" in namespace and "report" in namespace

    def test_module_docstring_example_runs(self):
        import repro

        doc = repro.__doc__
        # Extract the indented example from the package docstring.
        lines = [
            line[4:]
            for line in doc.splitlines()
            if line.startswith("    ") or line.strip() == ""
        ]
        snippet = "\n".join(lines).strip()
        assert "MonitoringServer" in snippet
        namespace = {}
        exec(compile(snippet, "repro.__doc__:example", "exec"), namespace)
        assert namespace["report"].intact
