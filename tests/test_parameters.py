"""Unit tests for repro.core.parameters."""

import pytest

from repro.core.parameters import MonitorRequirement


class TestValidation:
    def test_valid(self):
        req = MonitorRequirement(population=100, tolerance=5, confidence=0.95)
        assert req.population == 100

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            MonitorRequirement(population=0, tolerance=0, confidence=0.9)

    def test_tolerance_below_population(self):
        with pytest.raises(ValueError):
            MonitorRequirement(population=10, tolerance=10, confidence=0.9)

    def test_tolerance_non_negative(self):
        with pytest.raises(ValueError):
            MonitorRequirement(population=10, tolerance=-1, confidence=0.9)

    def test_confidence_open_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                MonitorRequirement(population=10, tolerance=1, confidence=bad)

    def test_zero_tolerance_allowed(self):
        req = MonitorRequirement(population=10, tolerance=0, confidence=0.99)
        assert req.critical_missing == 1


class TestDerived:
    def test_critical_missing(self):
        req = MonitorRequirement(population=100, tolerance=7, confidence=0.95)
        assert req.critical_missing == 8

    def test_describe_mentions_parameters(self):
        req = MonitorRequirement(population=100, tolerance=7, confidence=0.95)
        text = req.describe()
        assert "100" in text and "7" in text and "0.95" in text

    def test_frozen(self):
        req = MonitorRequirement(population=100, tolerance=7, confidence=0.95)
        with pytest.raises(AttributeError):
            req.population = 5
