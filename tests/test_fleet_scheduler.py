"""Tests for repro.fleet.scheduler — the interval/priority tick clock."""

import pytest

from repro.fleet.scheduler import RoundScheduler, ScheduledRound


def _names(rounds):
    return [r.group for r in rounds]


class TestAddGroup:
    def test_duplicate_rejected(self):
        s = RoundScheduler()
        s.add_group("a")
        with pytest.raises(ValueError):
            s.add_group("a")

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler().add_group("a", interval=0)

    def test_bad_first_tick_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler().add_group("a", first_tick=-1)

    def test_groups_listed(self):
        s = RoundScheduler()
        s.add_group("a")
        s.add_group("b")
        assert s.groups == ["a", "b"]


class TestDue:
    def test_all_due_at_tick_zero(self):
        s = RoundScheduler()
        s.add_group("a")
        s.add_group("b")
        assert _names(s.due(0)) == ["a", "b"]

    def test_priority_orders_within_tick(self):
        s = RoundScheduler()
        s.add_group("overflow", priority=5)
        s.add_group("vault", priority=0)
        s.add_group("shelf", priority=2)
        assert _names(s.due(0)) == ["vault", "shelf", "overflow"]

    def test_interval_skips_ticks(self):
        s = RoundScheduler()
        s.add_group("hourly", interval=1)
        s.add_group("daily", interval=2)
        assert _names(s.due(0)) == ["hourly", "daily"]
        assert _names(s.due(1)) == ["hourly"]
        # Within equal priority, order follows scheduling sequence.
        assert sorted(_names(s.due(2))) == ["daily", "hourly"]

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler().due(-1)

    def test_reschedule_anchored_to_run_tick(self):
        """A late round's next occurrence counts from when it ran."""
        s = RoundScheduler()
        s.add_group("a", interval=3)
        s.due(0)
        # Skip straight to tick 5; the round runs late...
        assert _names(s.due(5)) == ["a"]
        # ...and is next due at 5 + 3, not at the nominal 6.
        assert s.next_due_tick() == 8
        assert _names(s.due(7)) == []

    def test_no_thundering_herd(self):
        """Missing several due ticks yields one make-up round, not many."""
        s = RoundScheduler()
        s.add_group("a", interval=1)
        s.due(0)
        assert len(s.due(10)) == 1

    def test_round_carries_metadata(self):
        s = RoundScheduler()
        s.add_group("a", priority=7)
        (item,) = s.due(4)
        assert item == ScheduledRound(tick=4, group="a", priority=7)


class TestNextDueTick:
    def test_empty_scheduler(self):
        assert RoundScheduler().next_due_tick() is None

    def test_earliest_pending(self):
        s = RoundScheduler()
        s.add_group("a", first_tick=3)
        s.add_group("b", first_tick=1)
        assert s.next_due_tick() == 1

    def test_determinism_across_instances(self):
        def build():
            s = RoundScheduler()
            s.add_group("x", interval=2, priority=1)
            s.add_group("y", interval=1, priority=1)
            s.add_group("z", interval=3, priority=0)
            return [
                (tick, _names(s.due(tick))) for tick in range(6)
            ]

        assert build() == build()
