"""Epoch-versioned tag lifecycle registry.

The paper assumes the monitored set ``T*`` is static (Sec. 3); a
production deployment commissions, decommissions and *replaces* tags
continuously. This module is the system of record for that lifecycle:
a :class:`PopulationRegistry` holds one :class:`TagRecord` per tag the
deployment has ever known, and every membership mutation bumps a
monotonically increasing **population epoch**. The epoch is the
consistency token the rest of the stack keys on — the serve layer
rejects requests planned against a stale epoch, shard snapshots carry
it so failover restores the *current* set, and equivalence tests pin
"no churn" to "epoch stays 0".

The registry is deliberately append-only history plus a live view:
decommissioned tags keep their record (with ``decommissioned_epoch``
set), so an auditor can answer "when did tag X leave the set, and what
replaced it" from the registry alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "POPULATION_SCHEMA",
    "MEMBERSHIP_OPS",
    "TagRecord",
    "MembershipDelta",
    "PopulationRegistry",
]

#: Schema identifier embedded in (and required of) every persisted
#: registry document.
POPULATION_SCHEMA = "repro.population/v1"

#: The three lifecycle operations, in canonical order.
MEMBERSHIP_OPS = ("commission", "decommission", "replace")


@dataclass
class TagRecord:
    """One tag's lifecycle, from commissioning to (maybe) retirement.

    Attributes:
        tag_id: the 64-bit tag ID.
        label: optional operator label ("pallet 17", ...).
        commissioned_epoch: epoch at which the tag entered the set
            (0 for the seeded baseline).
        decommissioned_epoch: epoch at which it left, or ``None`` while
            it is still active.
        replaced_by: the ID that superseded this tag in a ``replace``
            operation, or ``None``.
    """

    tag_id: int
    label: Optional[str] = None
    commissioned_epoch: int = 0
    decommissioned_epoch: Optional[int] = None
    replaced_by: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.decommissioned_epoch is None

    def to_dict(self) -> dict:
        return {
            "tag_id": self.tag_id,
            "label": self.label,
            "commissioned_epoch": self.commissioned_epoch,
            "decommissioned_epoch": self.decommissioned_epoch,
            "replaced_by": self.replaced_by,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TagRecord":
        return cls(
            tag_id=int(doc["tag_id"]),
            label=doc.get("label"),
            commissioned_epoch=int(doc.get("commissioned_epoch", 0)),
            decommissioned_epoch=(
                None
                if doc.get("decommissioned_epoch") is None
                else int(doc["decommissioned_epoch"])
            ),
            replaced_by=(
                None
                if doc.get("replaced_by") is None
                else int(doc["replaced_by"])
            ),
        )


@dataclass(frozen=True)
class MembershipDelta:
    """One applied membership mutation — the unit of replication.

    Deltas are what travels: over the wire as MEMBERSHIP frames, into
    shard snapshots as the membership log, and between a registry and
    its replicas via :meth:`PopulationRegistry.apply`.

    Attributes:
        epoch: the epoch this delta *produced* (i.e. post-apply).
        op: one of :data:`MEMBERSHIP_OPS`.
        tag_ids: the IDs the op targets (new IDs for ``commission``,
            outgoing IDs for ``decommission`` / ``replace``).
        replacement_ids: incoming IDs for ``replace`` (empty otherwise),
            aligned with ``tag_ids``.
        labels: optional labels for the incoming IDs.
    """

    epoch: int
    op: str
    tag_ids: Tuple[int, ...]
    replacement_ids: Tuple[int, ...] = ()
    labels: Tuple[Optional[str], ...] = ()

    def to_dict(self) -> dict:
        doc = {
            "epoch": self.epoch,
            "op": self.op,
            "tag_ids": list(self.tag_ids),
        }
        if self.replacement_ids:
            doc["replacement_ids"] = list(self.replacement_ids)
        if any(label is not None for label in self.labels):
            doc["labels"] = list(self.labels)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "MembershipDelta":
        return cls(
            epoch=int(doc["epoch"]),
            op=str(doc["op"]),
            tag_ids=tuple(int(i) for i in doc["tag_ids"]),
            replacement_ids=tuple(
                int(i) for i in doc.get("replacement_ids", ())
            ),
            labels=tuple(doc.get("labels", ())),
        )


def _check_op(op: str) -> None:
    if op not in MEMBERSHIP_OPS:
        raise ValueError(
            f"unknown membership op {op!r}; expected one of {MEMBERSHIP_OPS}"
        )


def _unique_ints(tag_ids: Iterable[int], what: str) -> List[int]:
    ids = [int(i) for i in tag_ids]
    if not ids:
        raise ValueError(f"{what} must name at least one tag")
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate IDs in {what}")
    for i in ids:
        if i < 0:
            raise ValueError(f"negative tag ID in {what}")
    return ids


class PopulationRegistry:
    """The epoch-versioned system of record for one monitored set.

    Construction is two-phase: :meth:`seed` records the baseline set at
    epoch 0 (no epoch bump — a never-churned registry is
    indistinguishable from the paper's static ``T*``), then
    :meth:`commission` / :meth:`decommission` / :meth:`replace` each
    advance the epoch by exactly one and append a
    :class:`MembershipDelta` to :attr:`history`.
    """

    def __init__(self) -> None:
        self._records: Dict[int, TagRecord] = {}
        self._epoch = 0
        self._seeded = False
        self.history: List[MembershipDelta] = []

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The population epoch — bumped by every mutation."""
        return self._epoch

    @property
    def size(self) -> int:
        """``n`` — the number of *active* tags."""
        return sum(1 for r in self._records.values() if r.active)

    @property
    def active_ids(self) -> List[int]:
        """Active tag IDs in commissioning order."""
        return [r.tag_id for r in self._records.values() if r.active]

    def record(self, tag_id: int) -> TagRecord:
        """The lifecycle record for one tag (active or retired).

        Raises:
            KeyError: for an ID the registry has never seen.
        """
        return self._records[int(tag_id)]

    def __len__(self) -> int:
        return self.size

    def __contains__(self, tag_id: int) -> bool:
        rec = self._records.get(int(tag_id))
        return rec is not None and rec.active

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def seed(
        self,
        tag_ids: Iterable[int],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        """Record the baseline set at epoch 0, once.

        Raises:
            RuntimeError: if the registry was already seeded.
            ValueError: on duplicate or negative IDs.
        """
        if self._seeded:
            raise RuntimeError("registry is already seeded")
        ids = _unique_ints(tag_ids, "baseline set")
        label_list = self._labels_for(ids, labels, "baseline set")
        for tag_id, label in zip(ids, label_list):
            self._records[tag_id] = TagRecord(tag_id, label, 0)
        self._seeded = True

    def commission(
        self,
        tag_ids: Iterable[int],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> MembershipDelta:
        """Add new tags to the active set; returns the applied delta."""
        ids = _unique_ints(tag_ids, "commission")
        label_list = self._labels_for(ids, labels, "commission")
        for i in ids:
            rec = self._records.get(i)
            if rec is not None and rec.active:
                raise ValueError(f"tag {i:#x} is already active")
        epoch = self._epoch + 1
        for tag_id, label in zip(ids, label_list):
            self._records[tag_id] = TagRecord(tag_id, label, epoch)
        self._epoch = epoch
        delta = MembershipDelta(
            epoch, "commission", tuple(ids), (), tuple(label_list)
        )
        self.history.append(delta)
        return delta

    def decommission(self, tag_ids: Iterable[int]) -> MembershipDelta:
        """Retire active tags; returns the applied delta."""
        ids = _unique_ints(tag_ids, "decommission")
        self._require_active(ids, "decommission")
        epoch = self._epoch + 1
        for i in ids:
            self._records[i].decommissioned_epoch = epoch
        self._epoch = epoch
        delta = MembershipDelta(epoch, "decommission", tuple(ids))
        self.history.append(delta)
        return delta

    def replace(
        self,
        tag_ids: Iterable[int],
        replacement_ids: Iterable[int],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> MembershipDelta:
        """Atomically swap active tags for fresh ones (one epoch bump).

        The i-th outgoing tag's record points at the i-th incoming ID
        via ``replaced_by``; the incoming record inherits the outgoing
        label unless ``labels`` overrides it.
        """
        out_ids = _unique_ints(tag_ids, "replace (outgoing)")
        in_ids = _unique_ints(replacement_ids, "replace (incoming)")
        if len(in_ids) != len(out_ids):
            raise ValueError(
                "replace needs one replacement ID per outgoing ID"
            )
        if set(in_ids) & set(out_ids):
            raise ValueError("a tag cannot replace itself")
        self._require_active(out_ids, "replace")
        for i in in_ids:
            rec = self._records.get(i)
            if rec is not None and rec.active:
                raise ValueError(f"replacement tag {i:#x} is already active")
        label_list = self._labels_for(in_ids, labels, "replace")
        inherited = tuple(
            label if label is not None else self._records[out].label
            for out, label in zip(out_ids, label_list)
        )
        epoch = self._epoch + 1
        for out, incoming, label in zip(out_ids, in_ids, inherited):
            self._records[out].decommissioned_epoch = epoch
            self._records[out].replaced_by = incoming
            self._records[incoming] = TagRecord(incoming, label, epoch)
        self._epoch = epoch
        delta = MembershipDelta(
            epoch, "replace", tuple(out_ids), tuple(in_ids), inherited
        )
        self.history.append(delta)
        return delta

    def apply(self, delta: MembershipDelta) -> MembershipDelta:
        """Replay a delta produced elsewhere (replication path).

        The delta must be the next epoch in sequence — replicas apply
        the log in order, and a gap means a missed update.

        Raises:
            ValueError: on an out-of-sequence epoch or an op the
                current state cannot accept.
        """
        if delta.epoch != self._epoch + 1:
            raise ValueError(
                f"delta for epoch {delta.epoch} cannot apply at "
                f"epoch {self._epoch}"
            )
        _check_op(delta.op)
        labels = delta.labels or None
        if delta.op == "commission":
            return self.commission(delta.tag_ids, labels)
        if delta.op == "decommission":
            return self.decommission(delta.tag_ids)
        return self.replace(delta.tag_ids, delta.replacement_ids, labels)

    # ------------------------------------------------------------------
    # persistence & equivalence
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """The full registry as a schema-tagged JSON document."""
        return {
            "schema": POPULATION_SCHEMA,
            "epoch": self._epoch,
            "seeded": self._seeded,
            "records": [r.to_dict() for r in self._records.values()],
            "history": [d.to_dict() for d in self.history],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "PopulationRegistry":
        """Rebuild a registry from :meth:`to_json` output.

        Raises:
            ValueError: on a foreign or malformed document.
        """
        if not isinstance(doc, dict) or doc.get("schema") != POPULATION_SCHEMA:
            raise ValueError(
                f"not a {POPULATION_SCHEMA} document: "
                f"{doc.get('schema') if isinstance(doc, dict) else doc!r}"
            )
        registry = cls()
        registry._epoch = int(doc.get("epoch", 0))
        registry._seeded = bool(doc.get("seeded", False))
        for rdoc in doc.get("records", ()):
            rec = TagRecord.from_dict(rdoc)
            registry._records[rec.tag_id] = rec
        registry.history = [
            MembershipDelta.from_dict(d) for d in doc.get("history", ())
        ]
        if registry.history and registry.history[-1].epoch != registry._epoch:
            raise ValueError(
                "malformed registry document: history does not end at "
                "the recorded epoch"
            )
        return registry

    def epoch_digest(self) -> str:
        """Deterministic digest of (epoch, active membership).

        Two registries that applied the same deltas — whether natively
        or via :meth:`apply` replication — produce the same digest;
        equivalence tests pin on it.
        """
        payload = json.dumps(
            {
                "schema": POPULATION_SCHEMA,
                "epoch": self._epoch,
                "active": [
                    [r.tag_id, r.label]
                    for r in self._records.values()
                    if r.active
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _require_active(self, ids: Sequence[int], what: str) -> None:
        for i in ids:
            rec = self._records.get(i)
            if rec is None:
                raise KeyError(f"{what}: tag {i:#x} was never commissioned")
            if not rec.active:
                raise ValueError(f"{what}: tag {i:#x} is already retired")

    @staticmethod
    def _labels_for(
        ids: Sequence[int],
        labels: Optional[Sequence[Optional[str]]],
        what: str,
    ) -> Tuple[Optional[str], ...]:
        if labels is None:
            return tuple([None] * len(ids))
        label_list = tuple(labels)
        if len(label_list) != len(ids):
            raise ValueError(f"{what}: labels must match tag_ids in length")
        return label_list
