"""Scripted churn plans: deterministic membership schedules.

A :class:`ChurnPlan` is to membership what
:class:`~repro.fleet.registry.FleetScenario`'s theft events are to
loss: a declarative, JSON-persistable schedule of *when* which group
commissions, decommissions or replaces how many tags. Campaigns and
drills load a plan, apply its events at the scheduled ticks, and —
because the IDs themselves are drawn from a dedicated churn RNG
dimension — two runs of the same plan at the same master seed are
bit-identical.

An **empty plan is the identity**: no events means no epoch bumps, no
membership frames, and byte-for-byte the pre-churn behaviour — the
equivalence anchor this subsystem is tested against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .registry import MEMBERSHIP_OPS

__all__ = ["CHURN_PLAN_SCHEMA", "ChurnEvent", "ChurnPlan"]

#: Schema identifier for persisted churn plans.
CHURN_PLAN_SCHEMA = "repro.population.churn/v1"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership mutation.

    Attributes:
        tick: campaign tick (0-based) *before* which the event applies.
        group: target group name.
        op: one of :data:`~repro.population.registry.MEMBERSHIP_OPS`.
        count: how many tags the op touches (for ``replace``, how many
            pairs).
    """

    tick: int
    group: str
    op: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError("tick must be >= 0")
        if self.op not in MEMBERSHIP_OPS:
            raise ValueError(
                f"unknown churn op {self.op!r}; expected one of "
                f"{MEMBERSHIP_OPS}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not self.group:
            raise ValueError("group must be non-empty")

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "group": self.group,
            "op": self.op,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ChurnEvent":
        return cls(
            tick=int(doc["tick"]),
            group=str(doc["group"]),
            op=str(doc["op"]),
            count=int(doc.get("count", 1)),
        )


@dataclass(frozen=True)
class ChurnPlan:
    """A full membership schedule for one campaign."""

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def events_at(self, tick: int) -> List[ChurnEvent]:
        """Events scheduled for ``tick``, in plan order."""
        return [e for e in self.events if e.tick == tick]

    def op_totals(self) -> Dict[str, int]:
        """Tag count per op over the whole plan (absent ops omitted)."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.op] = totals.get(event.op, 0) + event.count
        return totals

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": CHURN_PLAN_SCHEMA,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ChurnPlan":
        """Raises:
            ValueError: on a foreign or malformed document.
        """
        if not isinstance(doc, dict) or doc.get("schema") != CHURN_PLAN_SCHEMA:
            raise ValueError(
                f"not a {CHURN_PLAN_SCHEMA} document"
            )
        events = doc.get("events")
        if not isinstance(events, list):
            raise ValueError("malformed churn plan: events must be a list")
        return cls(tuple(ChurnEvent.from_dict(e) for e in events))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ChurnPlan":
        with open(path) as fh:
            return cls.from_json(json.load(fh))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def scripted(
        cls, entries: Iterable[Tuple[int, str, str, int]]
    ) -> "ChurnPlan":
        """Build a plan from ``(tick, group, op, count)`` tuples."""
        return cls(
            tuple(
                ChurnEvent(tick, group, op, count)
                for tick, group, op, count in entries
            )
        )
