"""Incremental frame-plan maintenance under population churn.

Eq. 2 / Eq. 3 frame sizes are pure functions of ``(n, m, alpha, ...)``
— and a membership delta only moves ``n``. Re-running the binary
search on every commission/decommission would put tens of milliseconds
of solver work on the membership path; this module keeps the decision
current in **O(1) amortized** instead:

* frame size as a function of ``n`` is a step function, so consecutive
  deltas overwhelmingly land on an ``n`` the maintainer has already
  planned (``replace`` never changes ``n`` at all). Those lookups are
  one dict probe.
* the first visit to a fresh ``n`` consults the process-wide
  :mod:`repro.core.plancache` (so a fleet of groups with the same
  shape shares solves) and only solves from scratch on a cold cache —
  once per distinct ``n`` over the maintainer's lifetime.

The *verification-side* state (expected bitstrings, UTRP counter
mirrors) is maintained by the database delta itself: commissioned
tags enter the mirror at counter 0 (a fresh tag's hardware ``ct``),
decommissioned tags leave it, and each round's expected bitstring is
derived from the post-delta ID set — so a single delta costs O(delta)
there, never O(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.plancache import PlanCache, default_cache
from ..core.utrp_analysis import DEFAULT_SLACK_SLOTS

__all__ = ["FramePlan", "PlanMaintainer"]


@dataclass(frozen=True)
class FramePlan:
    """The frame-size decision for one population size.

    Attributes:
        population: ``n`` the plan was sized for.
        tolerance: ``m``.
        confidence: ``alpha``.
        trp_frame_size: Eq. 2 optimum.
        utrp_frame_size: Eq. 3 optimum (``None`` for counter-free
            deployments that never run UTRP).
    """

    population: int
    tolerance: int
    confidence: float
    trp_frame_size: int
    utrp_frame_size: Optional[int] = None


class PlanMaintainer:
    """Keeps one group's frame plan current as its population churns.

    Attributes:
        stats: monotonic counters — ``deltas_applied`` (membership
            deltas observed), ``plan_reuses`` (O(1) local-memo hits),
            ``replans`` (fresh ``n`` values that needed a cache/solver
            consult).
    """

    def __init__(
        self,
        tolerance: int,
        confidence: float,
        comm_budget: Optional[int] = None,
        slack: int = DEFAULT_SLACK_SLOTS,
        cache: Optional[PlanCache] = None,
    ):
        """Args:
            tolerance, confidence: the fixed ``(m, alpha)`` policy.
            comm_budget: UTRP collusion budget ``c``; ``None`` skips
                UTRP planning entirely.
            slack: UTRP slack slots, forwarded to the Eq. 3 solver.
            cache: plan cache to consult on fresh ``n`` (defaults to
                the process-wide cache).
        """
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self.tolerance = int(tolerance)
        self.confidence = float(confidence)
        self.comm_budget = comm_budget
        self.slack = int(slack)
        self._cache = cache
        self._plans: Dict[int, FramePlan] = {}
        self._current: Optional[FramePlan] = None
        self.stats: Dict[str, int] = {
            "deltas_applied": 0,
            "plan_reuses": 0,
            "replans": 0,
        }

    @property
    def current(self) -> Optional[FramePlan]:
        """The plan for the most recently observed population size."""
        return self._current

    def plan_for(self, population: int) -> FramePlan:
        """The plan for ``population`` tags; O(1) when already known."""
        if population <= self.tolerance:
            raise ValueError(
                f"population {population} cannot satisfy tolerance "
                f"{self.tolerance} (need n > m)"
            )
        plan = self._plans.get(population)
        if plan is not None:
            self.stats["plan_reuses"] += 1
            self._current = plan
            return plan
        self.stats["replans"] += 1
        cache = self._cache if self._cache is not None else default_cache()
        trp = cache.trp_frame_size(
            population, self.tolerance, self.confidence
        )
        utrp = None
        if self.comm_budget is not None:
            utrp = cache.utrp_frame_size(
                population,
                self.tolerance,
                self.confidence,
                self.comm_budget,
                self.slack,
            )
        plan = FramePlan(
            population, self.tolerance, self.confidence, trp, utrp
        )
        self._plans[population] = plan
        self._current = plan
        return plan

    def apply_delta(self, op: str, count: int, population_after: int) -> FramePlan:
        """Fold one membership delta into the plan.

        Args:
            op: the membership op (``replace`` is the guaranteed-O(1)
                case — ``n`` is unchanged, so the current plan stands).
            count: how many tags the delta touched (bookkeeping only).
            population_after: ``n`` after the delta.

        Returns:
            The (possibly reused) plan for the new population.
        """
        self.stats["deltas_applied"] += 1
        if (
            op == "replace"
            and self._current is not None
            and self._current.population == population_after
        ):
            self.stats["plan_reuses"] += 1
            return self._current
        return self.plan_for(population_after)
