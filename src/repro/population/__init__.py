"""repro.population — epoch-versioned tag lifecycle.

The subsystem that relaxes the paper's static-set assumption: a
registry of lifecycle records (:mod:`~repro.population.registry`),
O(1)-amortized frame-plan maintenance under churn
(:mod:`~repro.population.maintain`) and deterministic scripted churn
schedules (:mod:`~repro.population.churn`). See ``docs/POPULATION.md``
for the lifecycle model and epoch semantics.
"""

from .churn import CHURN_PLAN_SCHEMA, ChurnEvent, ChurnPlan
from .maintain import FramePlan, PlanMaintainer
from .registry import (
    MEMBERSHIP_OPS,
    POPULATION_SCHEMA,
    MembershipDelta,
    PopulationRegistry,
    TagRecord,
)

__all__ = [
    "CHURN_PLAN_SCHEMA",
    "ChurnEvent",
    "ChurnPlan",
    "FramePlan",
    "PlanMaintainer",
    "MEMBERSHIP_OPS",
    "POPULATION_SCHEMA",
    "MembershipDelta",
    "PopulationRegistry",
    "TagRecord",
]
