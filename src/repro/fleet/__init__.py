"""repro.fleet — multi-group monitoring orchestration.

The protocol engines in :mod:`repro.core` monitor one tag population.
A deployment monitors many: per-zone groups with their own ``(n, m,
alpha)`` requirements, reader trust levels and channel quality. This
package runs such fleets as *campaigns* — a registry of groups, a
priority scheduler, a thread-pool executor that overlaps reader air
time, a resilience layer (retry transient failures, escalate repeated
alarms all the way to tag identification) and a metrics/journal pair
that makes every campaign reproducible: same seed, same journal
digest, regardless of the ``jobs`` setting.
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FleetAlert,
    GroupRuntime,
    format_campaign_result,
    run_campaign,
)
from .executor import ParallelExecutor, resolve_jobs
from .journal import FleetJournal, RoundRecord
from .metrics import (
    CostSummary,
    FleetMetrics,
    GroupMetrics,
    MetricsTotals,
    render_metrics_table,
)
from .registry import (
    FleetRegistry,
    FleetScenario,
    GroupSpec,
    TheftEvent,
    default_scenario,
)
from .remote import (
    RemoteCampaignConfig,
    RemoteCampaignResult,
    RemoteRound,
    drive_remote_campaign,
    drive_remote_campaign_async,
    format_remote_campaign,
)
from .resilience import (
    EscalationLevel,
    EscalationPolicy,
    RetryExhausted,
    RetryPolicy,
    run_with_retry,
)
from .rounds import (
    AirTimeModel,
    RoundTimeout,
    SimulatedRound,
    detection_diagnostic,
    run_simulated_round,
)
from .scheduler import RoundScheduler, ScheduledRound

__all__ = [
    "AirTimeModel",
    "CampaignConfig",
    "CampaignResult",
    "CostSummary",
    "EscalationLevel",
    "EscalationPolicy",
    "FleetAlert",
    "FleetJournal",
    "FleetMetrics",
    "FleetRegistry",
    "FleetScenario",
    "GroupMetrics",
    "GroupRuntime",
    "GroupSpec",
    "MetricsTotals",
    "ParallelExecutor",
    "RemoteCampaignConfig",
    "RemoteCampaignResult",
    "RemoteRound",
    "RetryExhausted",
    "RetryPolicy",
    "RoundRecord",
    "RoundScheduler",
    "RoundTimeout",
    "ScheduledRound",
    "SimulatedRound",
    "TheftEvent",
    "default_scenario",
    "detection_diagnostic",
    "drive_remote_campaign",
    "drive_remote_campaign_async",
    "format_campaign_result",
    "format_remote_campaign",
    "render_metrics_table",
    "resolve_jobs",
    "run_campaign",
    "run_simulated_round",
    "run_with_retry",
]
