"""Drive a *remote* monitoring service as a fleet campaign.

:mod:`repro.fleet.campaign` orchestrates in-process monitors; this
module points the same campaign idea at a network endpoint — a plain
``python -m repro serve`` instance or the sharded gateway
(:mod:`repro.shard`), which speak the identical ``repro.serve/v1``
protocol. Each group gets one :class:`~repro.serve.ReaderClient`
session running its rounds sequentially; sessions overlap up to the
resolved concurrency (``jobs`` resolves exactly like the fleet
executor's ``--jobs``), so the campaign shape matches the local fleet's
while the verdicts come off the wire.

Populations are rebuilt reader-side from ``seed + group_index`` — the
shared convention of ``serve``, ``shard`` and ``loadgen`` — so the
remote server and this driver agree on which tags exist without any
out-of-band exchange.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..rfid.channel import SlottedChannel
from ..serve.client import ReaderClient
from ..serve.protocol import ProtocolError
from ..serve.server import MonitoringService
from .executor import resolve_jobs

__all__ = [
    "RemoteCampaignConfig",
    "RemoteRound",
    "RemoteCampaignResult",
    "drive_remote_campaign",
    "drive_remote_campaign_async",
    "format_remote_campaign",
]

#: Default master seed, matching the experiment grid's.
DEFAULT_SEED = 20080617


@dataclass(frozen=True)
class RemoteCampaignConfig:
    """Shape of one campaign against a remote endpoint.

    Attributes:
        host / port: the service (or gateway) to drive.
        groups: group sessions to run; group ``i`` is named
            ``{group_prefix}-{i:03d}`` and rebuilt from ``seed + i``.
        rounds: sequential rounds per group.
        protocol: ``"trp"`` or ``"utrp"``.
        counter_tags: population counter mode; defaults to "only for
            UTRP", the loadgen convention.
        jobs: fleet-style parallelism knob; ``None`` defers to
            ``concurrency``, otherwise :func:`~repro.fleet.executor.
            resolve_jobs` decides (0 = one per CPU).
        wire_version: highest framing each session offers at connection
            open (1 = JSON only, no HELLO; 2 = negotiate the binary
            framing, falling back to v1 against old servers).
        pipeline_depth: client-side round overlap per session; > 1
            requires ``wire_version`` 2 and degrades to sequential on
            connections that negotiated down to v1.

    Raises:
        ValueError: on non-positive shape values or a bad protocol.
    """

    host: str
    port: int
    groups: int = 8
    rounds: int = 3
    protocol: str = "trp"
    population: int = 100
    tolerance: int = 2
    confidence: float = 0.9
    seed: int = DEFAULT_SEED
    counter_tags: Optional[bool] = None
    group_prefix: str = "group"
    concurrency: int = 8
    jobs: Optional[int] = None
    wire_version: int = 1
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        for name in ("groups", "rounds", "population", "concurrency"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.protocol not in ("trp", "utrp"):
            raise ValueError("protocol must be 'trp' or 'utrp'")
        if self.port < 1 or self.port > 65535:
            raise ValueError(f"port must be in [1, 65535], got {self.port}")
        if self.wire_version not in (1, 2):
            raise ValueError(
                f"wire_version must be 1 or 2, got {self.wire_version!r}"
            )
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.pipeline_depth > 1 and self.wire_version < 2:
            raise ValueError("pipeline_depth > 1 requires wire_version 2")

    @property
    def effective_counter_tags(self) -> bool:
        if self.counter_tags is not None:
            return self.counter_tags
        return self.protocol == "utrp"

    @property
    def effective_concurrency(self) -> int:
        if self.jobs is None:
            return self.concurrency
        return resolve_jobs(self.jobs)

    def group_name(self, index: int) -> str:
        return f"{self.group_prefix}-{index:03d}"


@dataclass(frozen=True)
class RemoteRound:
    """One wire round's verdict, as the campaign recorded it."""

    group: str
    round_index: int
    verdict: str
    alarm: bool
    frame_size: int
    mismatched_slots: int
    elapsed_us: float


@dataclass
class RemoteCampaignResult:
    """Everything one remote campaign produced."""

    per_group: Dict[str, List[RemoteRound]]
    protocol_errors: List[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def rounds_completed(self) -> int:
        return sum(len(rounds) for rounds in self.per_group.values())

    @property
    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rounds in self.per_group.values():
            for record in rounds:
                counts[record.verdict] = counts.get(record.verdict, 0) + 1
        return counts

    def verdict_sequence(self, group: str) -> List[str]:
        return [r.verdict for r in self.per_group.get(group, [])]


async def drive_remote_campaign_async(
    config: RemoteCampaignConfig,
    on_round: Optional[Callable[[RemoteRound], None]] = None,
    tracer=None,
) -> RemoteCampaignResult:
    """Run the campaign inside an existing event loop.

    ``on_round`` fires after every completed round — the shard drill
    uses it to time its mid-campaign worker kill. ``tracer`` (a
    :class:`~repro.obs.tracing.Tracer`) makes every round traced: each
    group's client roots a ``reader.round`` span and propagates its
    context on the wire, which is how the drill stitches the
    reader → gateway → worker causal chain.
    """
    per_group: Dict[str, List[RemoteRound]] = {
        config.group_name(i): [] for i in range(config.groups)
    }
    errors: List[str] = []
    gate = asyncio.Semaphore(config.effective_concurrency)

    async def run_group(index: int) -> None:
        name = config.group_name(index)
        population = MonitoringService.build_population_for(
            config.population,
            seed=config.seed + index,
            counter_tags=config.effective_counter_tags,
        )
        channel = SlottedChannel(population.tags)
        def record_outcome(outcome) -> None:
            record = RemoteRound(
                group=name,
                round_index=outcome.round_index,
                verdict=outcome.verdict,
                alarm=outcome.alarm,
                frame_size=outcome.frame_size,
                mismatched_slots=outcome.mismatched_slots,
                elapsed_us=outcome.elapsed_us,
            )
            per_group[name].append(record)
            if on_round is not None:
                on_round(record)

        async with gate:
            try:
                client = ReaderClient(
                    config.host,
                    config.port,
                    channel,
                    tracer=tracer,
                    wire_version=config.wire_version,
                    pipeline_depth=config.pipeline_depth,
                )
                async with client:
                    if config.pipeline_depth > 1:
                        for outcome in await client.run_rounds(
                            name, config.rounds, config.protocol
                        ):
                            record_outcome(outcome)
                    else:
                        for _ in range(config.rounds):
                            record_outcome(
                                await client.run_round(name, config.protocol)
                            )
            except (ProtocolError, ConnectionError, OSError) as exc:
                errors.append(f"group {name}: {exc}")

    started = time.perf_counter()
    await asyncio.gather(*(run_group(i) for i in range(config.groups)))
    return RemoteCampaignResult(
        per_group=per_group,
        protocol_errors=errors,
        wall_s=time.perf_counter() - started,
    )


def drive_remote_campaign(
    config: RemoteCampaignConfig,
    on_round: Optional[Callable[[RemoteRound], None]] = None,
    tracer=None,
) -> RemoteCampaignResult:
    """Blocking wrapper around :func:`drive_remote_campaign_async`."""
    return asyncio.run(
        drive_remote_campaign_async(config, on_round=on_round, tracer=tracer)
    )


def format_remote_campaign(result: RemoteCampaignResult) -> str:
    """Human-readable campaign summary for the CLI."""
    verdicts = ", ".join(
        f"{k}={v}" for k, v in sorted(result.verdict_counts.items())
    ) or "none"
    lines = [
        f"groups driven    : {len(result.per_group)}",
        f"rounds completed : {result.rounds_completed}",
        f"verdicts         : {verdicts}",
        f"protocol errors  : {len(result.protocol_errors)}",
        f"wall time        : {result.wall_s:.3f} s",
    ]
    lines.extend(f"  {err}" for err in result.protocol_errors[:5])
    return "\n".join(lines)
