"""Simulated monitoring rounds, sized for fleet-scale campaigns.

The protocol engines in :mod:`repro.core` walk per-tag state machines
— the right fidelity for protocol tests, far too slow to run thousands
of rounds across a fleet. This module is the campaign-grade path: one
round is a handful of vectorised numpy operations (hash registered
IDs, hash present IDs, drop lost replies, compare occupancy), the same
detection model the cross-validated fast path in
:mod:`repro.simulation.fastpath` uses.

Two deliberate simplifications versus the slow path, both
detection-equivalent for occupancy bitstrings:

* UTRP rounds are modelled as counter-hashed occupancy scans at the
  Eq. 3 frame size rather than a full per-slot re-seeding cascade; the
  defence-relevant quantities the fleet tracks (frame cost, counter
  sync, detection probability) are preserved.
* collisions are not distinguished from singletons — the protocols
  only ever consume the occupied/empty bit.

The module also owns the two *failure* models a campaign exercises —
session outages (re-raised from :mod:`repro.rfid.channel`) and round
timeouts — and the :class:`AirTimeModel` that converts a round's slot
accounting into simulated reader air time. Air time is what the
parallel executor overlaps across groups: each group has its own
reader, so while group A's reader walks its frame, group B's can too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.verification import (
    VerificationResult,
    compare_bitstrings,
    salvage_partial_scan,
)
from ..rfid.channel import ChannelOutage
from ..rfid.hashing import (
    slots_for_tags_with_counters,
    splitmix64_array,
    slots_for_tags,
)
from ..rfid.timing import GEN2_TYPICAL, LinkTiming
from ..simulation.batched import batched_theft_detected

__all__ = [
    "RoundTimeout",
    "AirTimeModel",
    "SimulatedRound",
    "run_simulated_round",
    "detection_diagnostic",
]

_SEED_SPACE = 1 << 62


class RoundTimeout(RuntimeError):
    """The round's air time exceeded the operator's per-round budget.

    Transient in the same sense as an outage: the round produced no
    trustworthy bitstring (a reader that overruns its window may have
    been stalled by interference or tampering), so the resilience layer
    retries it.
    """


@dataclass(frozen=True)
class AirTimeModel:
    """Converts slot accounting into (scaled) wall-clock seconds.

    Attributes:
        timing: the link budget (defaults to the Gen2-flavoured one).
        time_scale: how many times faster than real time the simulation
            runs. ``8`` means one second of air time costs 125 ms of
            wall clock; ``0`` disables sleeping entirely (tests, and
            any caller that only wants the accounting).
    """

    timing: LinkTiming = GEN2_TYPICAL
    time_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.time_scale < 0:
            raise ValueError("time_scale must be >= 0")

    def round_air_us(self, frame_size: int, occupied_slots: int) -> float:
        """Air time of one occupancy round, in simulated microseconds.

        Occupied slots carry the 16-bit random burst TRP replies with;
        empty slots cost only the polling overhead.
        """
        empty = frame_size - occupied_slots
        return (
            self.timing.seed_broadcast_us
            + empty * self.timing.empty_slot_us
            + occupied_slots * (self.timing.reply_slot_us + 16 * self.timing.bit_us)
        )

    def wall_seconds(self, air_us: float) -> float:
        """Wall-clock seconds this much air time should occupy."""
        if self.time_scale == 0:
            return 0.0
        return air_us / 1e6 / self.time_scale


@dataclass
class SimulatedRound:
    """Everything one simulated round produced.

    Attributes:
        result: the server's verdict (the same
            :class:`~repro.core.verification.VerificationResult` the
            protocol engines emit).
        observed: the occupancy bitstring the reader returned.
        expected: the server's predicted bitstring.
        frame_size: ``f`` used.
        seed: the challenge seed ``r``.
        occupied_slots: occupied count in the observed bitstring.
        air_us: simulated air time of the scan.
        lost_replies: replies dropped by the lossy channel this round
            (benign ``miss_rate``, burst erasures and fades combined).
        injected: fault names applied to this round (journal evidence).
        seed_losses: tags that missed this round's seed broadcast.
    """

    result: VerificationResult
    observed: np.ndarray
    expected: np.ndarray
    frame_size: int
    seed: int
    occupied_slots: int
    air_us: float
    lost_replies: int
    injected: Optional[List[str]] = None
    seed_losses: int = 0

    @property
    def mismatches(self) -> int:
        return len(self.result.mismatched_slots)


def run_simulated_round(
    registered_ids: np.ndarray,
    present_mask: np.ndarray,
    frame_size: int,
    seed: int,
    counter: int = 0,
    miss_rate: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    air_model: Optional[AirTimeModel] = None,
    faults=None,
    counter_lag: Optional[np.ndarray] = None,
    mirror_lag: Optional[np.ndarray] = None,
    salvage_partial: bool = False,
    critical_missing: int = 1,
) -> SimulatedRound:
    """One occupancy round: prediction, scan, verdict.

    Args:
        registered_ids: the server's full ID set (defines the
            prediction).
        present_mask: boolean mask over ``registered_ids`` — which tags
            are physically in the reader's field.
        frame_size: the round's ``f``.
        seed: the round's ``r``.
        counter: the group-wide tag counter folded into the hash
            (0 for plain TRP tags; counter tags tick every round).
        miss_rate: per-reply benign loss probability.
        rng: required when ``miss_rate > 0``.
        air_model: optional air-time accounting (no sleeping here —
            the campaign owns pacing; this only fills ``air_us``).
        faults: optional :class:`~repro.faults.inject.RoundFaults` to
            apply — pre-drawn by the injector, so passing ``None`` (or
            an empty one) leaves this function's rng consumption and
            output bit-identical to the fault-free path.
        counter_lag: per-tag count of seed broadcasts each *physical*
            tag has missed so far — a lagging tag hashes with
            ``counter - lag`` and lands in the wrong slot.
        mirror_lag: per-tag lag the *server* has learned (via resync);
            the prediction hashes with ``counter - mirror_lag``.
        salvage_partial: verify a crash-truncated frame at its achieved
            confidence instead of rejecting it as malformed.
        critical_missing: theft size the salvaged confidence is quoted
            at (``m + 1`` by the planning convention).

    Raises:
        ValueError: on shape mismatches or a missing rng.
    """
    ids = np.asarray(registered_ids, dtype=np.uint64)
    mask = np.asarray(present_mask, dtype=bool)
    if ids.shape != mask.shape:
        raise ValueError("registered_ids and present_mask must align")
    if miss_rate > 0.0 and rng is None:
        raise ValueError("a lossy round needs an rng")

    if mirror_lag is not None and np.any(mirror_lag):
        mirror_counters = np.full(ids.shape, counter, dtype=np.int64) - mirror_lag
        slots = slots_for_tags_with_counters(ids, seed, frame_size, mirror_counters)
    else:
        slots = slots_for_tags(ids, seed, frame_size, counter=counter)
    expected_counts = np.bincount(slots, minlength=frame_size)
    expected = (expected_counts > 0).astype(np.uint8)

    # Physical reality: a lagging tag replies in the slot its *own*
    # counter selects, not the one the mirror predicts.
    if counter_lag is not None and np.any(counter_lag):
        physical_counters = np.full(ids.shape, counter, dtype=np.int64) - counter_lag
        physical_slots = slots_for_tags_with_counters(
            ids, seed, frame_size, physical_counters
        )
    else:
        physical_slots = slots
    present_slots = physical_slots[mask]
    lost = 0
    seed_losses = 0

    # Tag-side faults, aligned to the present-tag axis: a tag that
    # missed the seed broadcast never joins the frame; a faded tag is
    # silent from its brown-out slot onward.
    if faults is not None and not faults.empty:
        silent = np.zeros(present_slots.size, dtype=bool)
        if faults.seed_loss is not None:
            deaf = faults.seed_loss[mask]
            seed_losses = int(deaf.sum())
            silent |= deaf
        if faults.fade_after is not None:
            faded = present_slots >= faults.fade_after[mask]
            lost += int((faded & ~silent).sum())
            silent |= faded
        if silent.any():
            present_slots = present_slots[~silent]

    if miss_rate > 0.0 and present_slots.size:
        kept = rng.random(present_slots.size) >= miss_rate
        lost += int(present_slots.size - kept.sum())
        present_slots = present_slots[kept]

    # Medium-side burst erasure: every surviving reply in a masked slot
    # is swallowed at once.
    if faults is not None and faults.loss_mask is not None and present_slots.size:
        survived = ~faults.loss_mask[present_slots]
        lost += int(present_slots.size - survived.sum())
        present_slots = present_slots[survived]

    observed_counts = np.bincount(present_slots, minlength=frame_size)
    observed = (observed_counts > 0).astype(np.uint8)

    polled = frame_size
    if faults is not None and faults.crash_fraction is not None:
        polled = faults.polled_slots(frame_size)
        observed = observed[:polled]
    if polled < frame_size:
        if salvage_partial:
            result = salvage_partial_scan(
                expected, observed, frame_size, ids.size, critical_missing
            )
        else:
            result = compare_bitstrings(expected, observed, frame_size)
    else:
        result = compare_bitstrings(expected, observed, frame_size)
    occupied = int(np.count_nonzero(observed))
    model = air_model if air_model is not None else AirTimeModel()
    air_us = model.round_air_us(polled, occupied)
    return SimulatedRound(
        result=result,
        observed=observed,
        expected=expected,
        frame_size=frame_size,
        seed=seed,
        occupied_slots=occupied,
        air_us=air_us,
        lost_replies=lost,
        injected=list(faults.injected) if faults is not None else None,
        seed_losses=seed_losses,
    )


def detection_diagnostic(
    registered_ids: np.ndarray,
    frame_size: int,
    critical_missing: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Empirical ``g(n, m+1, f)`` for *this* group's actual IDs.

    Eq. 2 sizes frames assuming a uniform hash; this diagnostic
    measures the detection probability the deployed ID set really
    achieves at the critical theft size, so each journal entry carries
    evidence the group still clears its ``alpha``. It is also the
    campaign's CPU-heavy verification work, implemented as single large
    array operations (a ``(trials, n)`` hash matrix and one fleet-wide
    ``bincount``) — numpy releases the GIL inside them, which is what
    makes thread-level round parallelism worthwhile on multi-core
    hosts.

    Args:
        registered_ids: the group's ID set.
        frame_size: the frame to evaluate.
        critical_missing: theft size per trial (``m + 1`` is the
            paper's worst case).
        trials: Monte Carlo sample size.
        rng: the group's generator (draws ``trials`` seeds + thefts).

    Returns:
        Fraction of trials in which the theft produced a mismatch.

    Raises:
        ValueError: on invalid sizes.
    """
    ids = np.asarray(registered_ids, dtype=np.uint64)
    n = ids.size
    if not 0 < critical_missing <= n:
        raise ValueError("critical_missing must be within (0, n]")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")

    seeds = rng.integers(0, _SEED_SPACE, size=trials, dtype=np.uint64)
    # (trials, n) slot matrix in one vectorised hash.
    words = ids[None, :] ^ seeds[:, None]
    slot_matrix = (splitmix64_array(words) % np.uint64(frame_size)).astype(
        np.int64
    )

    # Exactly `critical_missing` stolen per trial: threshold each row's
    # uniforms at its x-th smallest value.
    u = rng.random((trials, n))
    kth = np.partition(u, critical_missing - 1, axis=1)[
        :, critical_missing - 1 : critical_missing
    ]
    stolen = u <= kth

    detected = batched_theft_detected(
        slot_matrix, stolen, frame_size, critical_missing
    )
    return float(detected.mean())
