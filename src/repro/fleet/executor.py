"""Parallel round execution.

The fleet's unit of concurrency is one monitoring round on one group.
A round's wall-clock cost has two very different components:

* **air time** — the reader walking the frame slot by slot. This is
  I/O from the server's point of view (in simulation: a scaled sleep),
  and rounds on *different* groups use different readers on different
  channels, so their air time overlaps perfectly;
* **verification CPU** — numpy hashing/bincount over the registered
  IDs. NumPy's inner loops release the GIL, so on multi-core hosts
  this overlaps too.

:class:`ParallelExecutor` therefore uses a plain thread pool: threads
are enough to overlap both components, there is no pickling tax, and
``jobs=1`` degrades to a serial loop with zero overhead. Results come
back in submission order and exceptions propagate to the caller (the
resilience layer handles the *expected* failures before they get
here), so ``map`` is a drop-in for the serial loops it replaces — the
figure sweeps in :mod:`repro.experiments` route through it for their
``--jobs`` flag.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["ParallelExecutor", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a user-facing ``--jobs`` value.

    ``None`` means "not requested" and resolves to 1 (serial); ``0``
    means "all cores" and resolves to the host's CPU count.

    Raises:
        ValueError: if ``jobs`` is negative.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        import os

        return os.cpu_count() or 1
    return jobs


class ParallelExecutor:
    """Order-preserving map over a thread pool (serial when ``jobs=1``).

    The executor is stateless between calls and safe to reuse; each
    :meth:`map` call builds (and tears down) its own pool sized to
    ``min(jobs, len(items))`` so short batches never pay for idle
    threads.
    """

    def __init__(self, jobs: int = 1):
        """Args:
            jobs: maximum concurrent tasks. 1 = run serially.

        Raises:
            ValueError: if ``jobs`` is not positive (use
                :func:`resolve_jobs` to translate CLI conventions).
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order.

        The first exception (in item order) propagates to the caller
        once all submitted tasks have settled — identical observable
        behaviour to the serial loop, whatever the interleaving.
        """
        work: Sequence[T] = list(items)
        if self.jobs == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(work))) as pool:
            futures = [pool.submit(fn, item) for item in work]
            # Collect in submission order; .result() re-raises the
            # earliest-submitted failure, matching serial semantics.
            return [f.result() for f in futures]
