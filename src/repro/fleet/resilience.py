"""Retries, backoff and protocol escalation.

Two distinct failure ladders meet here:

* **transient link failures** — a session outage or a round timeout
  yields no bitstring at all. The right response is to retry the same
  round with capped exponential backoff (in *simulated* time: backoff
  is charged to the round's latency accounting, never slept raw), and
  to give up after a bounded number of attempts rather than wedge the
  fleet on one dead reader;
* **repeated alarms** — a round that *does* verify and says NOT-INTACT
  is not a failure but evidence. When the evidence repeats, the fleet
  escalates scrutiny: a trusted-reader group's TRP rounds are upgraded
  to UTRP-grade checks (the reader may be the thief — Sec. 5's threat
  model), and if alarms persist the group enters identification mode
  (:mod:`repro.core.identification`) to *name* the missing tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from ..rfid.channel import ChannelOutage
from .rounds import RoundTimeout

__all__ = [
    "RetryPolicy",
    "RetryExhausted",
    "run_with_retry",
    "EscalationLevel",
    "EscalationPolicy",
    "TRANSIENT_FAILURES",
]

R = TypeVar("R")

#: Exception types the retry layer absorbs; anything else propagates.
TRANSIENT_FAILURES = (ChannelOutage, RoundTimeout)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient round failures.

    Attributes:
        max_attempts: total tries per round (first attempt included).
        base_backoff_us: simulated wait before the first retry.
        multiplier: backoff growth factor per retry.
        max_backoff_us: ceiling on any single wait.
    """

    max_attempts: int = 3
    base_backoff_us: float = 50_000.0
    multiplier: float = 2.0
    max_backoff_us: float = 400_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def backoff_us(self, retry_index: int) -> float:
        """Simulated wait before retry number ``retry_index`` (0-based).

        Raises:
            ValueError: if ``retry_index`` is negative.
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return min(
            self.base_backoff_us * self.multiplier**retry_index,
            self.max_backoff_us,
        )


class RetryExhausted(RuntimeError):
    """Every attempt a :class:`RetryPolicy` allows failed transiently.

    Attributes:
        attempts: how many attempts were made.
        last_error: the final transient failure.
    """

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"round failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


def run_with_retry(
    attempt: Callable[[int], R],
    policy: RetryPolicy,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> Tuple[R, int, float]:
    """Run ``attempt`` until it succeeds or the policy is exhausted.

    Args:
        attempt: callable receiving the 0-based attempt index.
        policy: the backoff schedule.
        on_retry: observer invoked once per *absorbed* failure with
            ``(attempt_index, error, charged_backoff_us)`` — the hook
            the fleet uses to surface retries on the obs bus. Not
            called for the final failure (that one raises). Observer
            exceptions propagate: a broken observer is a bug, not a
            transient.

    Returns:
        ``(result, attempts_used, total_backoff_us)``. The backoff
        total is *simulated* time for the caller's latency accounting.

    Raises:
        RetryExhausted: when all attempts fail transiently. The final
            transient failure is chained as ``__cause__`` and kept on
            ``last_error``.
        Exception: non-transient errors propagate from the first
            attempt that raises one.
    """
    total_backoff = 0.0
    for index in range(policy.max_attempts):
        try:
            return attempt(index), index + 1, total_backoff
        except TRANSIENT_FAILURES as error:
            if index + 1 >= policy.max_attempts:
                raise RetryExhausted(index + 1, error) from error
            charged = policy.backoff_us(index)
            total_backoff += charged
            if on_retry is not None:
                on_retry(index, error, charged)
    raise AssertionError("unreachable")  # pragma: no cover


class EscalationLevel(enum.Enum):
    """How much scrutiny a group is currently under."""

    TRP = "trp"
    UTRP = "utrp"
    IDENTIFY = "identify"

    @property
    def rank(self) -> int:
        return {"trp": 0, "utrp": 1, "identify": 2}[self.value]


@dataclass(frozen=True)
class EscalationPolicy:
    """When and how repeated alarms raise the scrutiny level.

    Attributes:
        alarm_streak: consecutive alarming rounds needed to escalate
            one level. An intact round resets both the streak and the
            level (back to the group's base protocol).
    """

    alarm_streak: int = 2

    def __post_init__(self) -> None:
        if self.alarm_streak < 1:
            raise ValueError("alarm_streak must be >= 1")

    def next_level(
        self, level: EscalationLevel, counter_tags: bool
    ) -> EscalationLevel:
        """The level one step up from ``level``.

        TRP escalates to UTRP only when the tags carry the hardware
        counter UTRP needs; otherwise the only sharper tool is
        identification.
        """
        if level is EscalationLevel.TRP:
            return (
                EscalationLevel.UTRP if counter_tags else EscalationLevel.IDENTIFY
            )
        return EscalationLevel.IDENTIFY

    def should_escalate(self, consecutive_alarms: int) -> bool:
        return consecutive_alarms >= self.alarm_streak
