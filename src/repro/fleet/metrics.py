"""Per-group counters and cost histograms for a campaign.

Metrics answer the operator's dashboard questions — how many rounds,
how many alarms, how much air time, where did the retries go — while
the journal (:mod:`repro.fleet.journal`) answers the forensic ones.

Since the obs layer landed, the numbers live in a
:class:`repro.obs.metrics.MetricsRegistry` (labelled counters and
fixed-bucket histograms) instead of ad-hoc integers:
:class:`GroupMetrics` is now a per-group *view* over that registry, so
the same campaign that prints the operator table can export a
Prometheus snapshot or fold into a digest without a second set of
books. Aggregation still happens on the campaign thread in
deterministic record order, and histograms retain raw samples, so the
printed table is byte-identical to the pre-registry one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "CostSummary",
    "GroupMetrics",
    "MetricsTotals",
    "FleetMetrics",
    "render_metrics_table",
    "SLOT_COST_BUCKETS",
    "AIR_US_BUCKETS",
]

#: Fixed frame-size buckets (slots): powers of two spanning the Eq. 2 /
#: Eq. 3 frames any plausible deployment sizes.
SLOT_COST_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << e) for e in range(4, 17)
)

#: Fixed air-time buckets (simulated microseconds), 1-2-5 decades from
#: 100us to 1000s.
AIR_US_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(2, 9) for m in (1.0, 2.0, 5.0)
)


@dataclass
class CostSummary:
    """Order statistics over one cost series (slots, air time, ...)."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "CostSummary":
        """Summarise a series; empty series summarise to zeros."""
        if not len(values):
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, max=0.0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
        )


class GroupMetrics:
    """One group's view over the fleet's metrics registry.

    Reads (``rounds_completed``, ``slot_costs``, summaries) keep the
    pre-obs attribute API; writes go through the ``record_*`` methods
    the campaign's aggregator calls.
    """

    def __init__(self, registry: MetricsRegistry, group: str):
        self.group = group

        def counter(suffix: str, help: str):
            return registry.counter(
                f"repro_fleet_{suffix}", help, labelnames=("group",)
            ).labels(group=group)

        self._rounds_completed = counter(
            "rounds_completed_total", "rounds that produced a verdict"
        )
        self._rounds_failed = counter(
            "rounds_failed_total", "rounds abandoned after retry exhaustion"
        )
        self._alarms = counter(
            "alarms_total", "rounds whose verdict paged the operator"
        )
        self._retries = counter(
            "retries_total", "extra attempts spent on transient failures"
        )
        self._escalations = counter(
            "escalations_total", "level changes triggered by repeated alarms"
        )
        self._identification_rounds = counter(
            "identification_rounds_total", "rounds run in identification mode"
        )
        self._confirmed_missing = counter(
            "confirmed_missing_total", "distinct tags named by identification"
        )
        self._replies_lost = counter(
            "replies_lost_total", "tag replies the channel swallowed"
        )
        self._faults_injected = counter(
            "faults_injected_total", "fault-plan injections applied to rounds"
        )
        self._rounds_salvaged = counter(
            "rounds_salvaged_total", "crash-truncated rounds verified partially"
        )
        self._alarms_suppressed = counter(
            "alarms_suppressed_total", "raw alarms absorbed by k-of-r voting"
        )
        self._tags_resynced = counter(
            "tags_resynced_total", "counter offsets recovered by resync"
        )
        self._slot_costs = registry.histogram(
            "repro_fleet_round_slots",
            "per-round frame sizes (completed rounds)",
            labelnames=("group",),
            buckets=SLOT_COST_BUCKETS,
        ).labels(group=group)
        self._air_us = registry.histogram(
            "repro_fleet_round_air_us",
            "per-round simulated air time including backoff",
            labelnames=("group",),
            buckets=AIR_US_BUCKETS,
        ).labels(group=group)

    # -- writes (campaign thread, record order) ------------------------

    def record_retries(self, count: int) -> None:
        if count:
            self._retries.inc(count)

    def record_failed_round(self) -> None:
        self._rounds_failed.inc()

    def record_completed_round(self, slots: float, air_us: float) -> None:
        self._rounds_completed.inc()
        self._slot_costs.observe(slots)
        self._air_us.observe(air_us)

    def record_alarm(self) -> None:
        self._alarms.inc()

    def record_escalation(self) -> None:
        self._escalations.inc()

    def record_identification_round(self) -> None:
        self._identification_rounds.inc()

    def record_confirmed_missing(self, count: int) -> None:
        if count:
            self._confirmed_missing.inc(count)

    def record_replies_lost(self, count: int) -> None:
        if count:
            self._replies_lost.inc(count)

    def record_faults_injected(self, count: int) -> None:
        if count:
            self._faults_injected.inc(count)

    def record_salvaged_round(self) -> None:
        self._rounds_salvaged.inc()

    def record_suppressed_alarm(self) -> None:
        self._alarms_suppressed.inc()

    def record_tags_resynced(self, count: int) -> None:
        if count:
            self._tags_resynced.inc(count)

    # -- reads (the pre-obs attribute API) -----------------------------

    @property
    def rounds_completed(self) -> int:
        return int(self._rounds_completed.value)

    @property
    def rounds_failed(self) -> int:
        return int(self._rounds_failed.value)

    @property
    def alarms(self) -> int:
        return int(self._alarms.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def escalations(self) -> int:
        return int(self._escalations.value)

    @property
    def identification_rounds(self) -> int:
        return int(self._identification_rounds.value)

    @property
    def confirmed_missing(self) -> int:
        return int(self._confirmed_missing.value)

    @property
    def replies_lost(self) -> int:
        return int(self._replies_lost.value)

    @property
    def faults_injected(self) -> int:
        return int(self._faults_injected.value)

    @property
    def rounds_salvaged(self) -> int:
        return int(self._rounds_salvaged.value)

    @property
    def alarms_suppressed(self) -> int:
        return int(self._alarms_suppressed.value)

    @property
    def tags_resynced(self) -> int:
        return int(self._tags_resynced.value)

    @property
    def slot_costs(self) -> List[float]:
        return list(self._slot_costs.samples)

    @property
    def air_us(self) -> List[float]:
        return list(self._air_us.samples)

    @property
    def slot_summary(self) -> CostSummary:
        return CostSummary.of(self.slot_costs)

    @property
    def air_summary(self) -> CostSummary:
        return CostSummary.of(self.air_us)


@dataclass
class MetricsTotals:
    """Fleet-wide roll-up snapshot (same read attributes as a group)."""

    rounds_completed: int = 0
    rounds_failed: int = 0
    alarms: int = 0
    retries: int = 0
    escalations: int = 0
    identification_rounds: int = 0
    confirmed_missing: int = 0
    replies_lost: int = 0
    faults_injected: int = 0
    rounds_salvaged: int = 0
    alarms_suppressed: int = 0
    tags_resynced: int = 0
    slot_costs: List[float] = field(default_factory=list)
    air_us: List[float] = field(default_factory=list)

    @property
    def slot_summary(self) -> CostSummary:
        return CostSummary.of(self.slot_costs)

    @property
    def air_summary(self) -> CostSummary:
        return CostSummary.of(self.air_us)


class FleetMetrics:
    """Per-group metrics, keyed by group name, over one obs registry.

    Supply a registry to co-locate fleet metrics with the rest of an
    :class:`repro.obs.ObsContext`; by default each instance owns a
    private one (the pre-obs behaviour).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._groups: Dict[str, GroupMetrics] = {}

    def group(self, name: str) -> GroupMetrics:
        """The group's metrics view, created on first touch."""
        if name not in self._groups:
            self._groups[name] = GroupMetrics(self.registry, name)
        return self._groups[name]

    @property
    def groups(self) -> Dict[str, GroupMetrics]:
        return dict(self._groups)

    def totals(self) -> MetricsTotals:
        """Fleet-wide roll-up of every counter."""
        total = MetricsTotals()
        for gm in self._groups.values():
            total.rounds_completed += gm.rounds_completed
            total.rounds_failed += gm.rounds_failed
            total.alarms += gm.alarms
            total.retries += gm.retries
            total.escalations += gm.escalations
            total.identification_rounds += gm.identification_rounds
            total.confirmed_missing += gm.confirmed_missing
            total.replies_lost += gm.replies_lost
            total.faults_injected += gm.faults_injected
            total.rounds_salvaged += gm.rounds_salvaged
            total.alarms_suppressed += gm.alarms_suppressed
            total.tags_resynced += gm.tags_resynced
            total.slot_costs.extend(gm.slot_costs)
            total.air_us.extend(gm.air_us)
        return total


def render_metrics_table(metrics: FleetMetrics) -> str:
    """The per-group campaign table the fleet CLI prints."""
    headers = [
        "group",
        "rounds",
        "failed",
        "alarms",
        "suppr.",
        "retries",
        "escal.",
        "named",
        "lost",
        "slots p50",
        "slots p95",
        "air ms p50",
    ]
    rows = []
    for name in sorted(metrics.groups):
        gm = metrics.groups[name]
        slots = gm.slot_summary
        air = gm.air_summary
        rows.append(
            [
                name,
                str(gm.rounds_completed),
                str(gm.rounds_failed),
                str(gm.alarms),
                str(gm.alarms_suppressed),
                str(gm.retries),
                str(gm.escalations),
                str(gm.confirmed_missing),
                str(gm.replies_lost),
                f"{slots.p50:.0f}",
                f"{slots.p95:.0f}",
                f"{air.p50 / 1000:.1f}",
            ]
        )
    total = metrics.totals()
    rows.append(
        [
            "TOTAL",
            str(total.rounds_completed),
            str(total.rounds_failed),
            str(total.alarms),
            str(total.alarms_suppressed),
            str(total.retries),
            str(total.escalations),
            str(total.confirmed_missing),
            str(total.replies_lost),
            f"{total.slot_summary.p50:.0f}",
            f"{total.slot_summary.p95:.0f}",
            f"{total.air_summary.p50 / 1000:.1f}",
        ]
    )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
