"""Per-group counters and cost histograms for a campaign.

Metrics answer the operator's dashboard questions — how many rounds,
how many alarms, how much air time, where did the retries go — while
the journal (:mod:`repro.fleet.journal`) answers the forensic ones.
Counters are plain integers aggregated on the campaign thread (round
results come back through the executor in deterministic order), so the
table a campaign prints is identical run-to-run under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["CostSummary", "GroupMetrics", "FleetMetrics", "render_metrics_table"]


@dataclass
class CostSummary:
    """Order statistics over one cost series (slots, air time, ...)."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "CostSummary":
        """Summarise a series; empty series summarise to zeros."""
        if not len(values):
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, max=0.0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
        )


@dataclass
class GroupMetrics:
    """Everything the fleet counts about one group.

    Attributes:
        rounds_completed: rounds that produced a verdict.
        rounds_failed: rounds abandoned after retry exhaustion.
        alarms: rounds whose verdict paged (per the group's policy).
        retries: extra attempts spent on transient failures.
        escalations: level changes triggered by repeated alarms.
        identification_rounds: rounds run in identification mode.
        confirmed_missing: distinct tags named by identification.
        slot_costs: per-round frame sizes (completed rounds).
        air_us: per-round simulated air time including backoff.
    """

    rounds_completed: int = 0
    rounds_failed: int = 0
    alarms: int = 0
    retries: int = 0
    escalations: int = 0
    identification_rounds: int = 0
    confirmed_missing: int = 0
    slot_costs: List[float] = field(default_factory=list)
    air_us: List[float] = field(default_factory=list)

    @property
    def slot_summary(self) -> CostSummary:
        return CostSummary.of(self.slot_costs)

    @property
    def air_summary(self) -> CostSummary:
        return CostSummary.of(self.air_us)


class FleetMetrics:
    """Per-group metrics, keyed by group name."""

    def __init__(self) -> None:
        self._groups: Dict[str, GroupMetrics] = {}

    def group(self, name: str) -> GroupMetrics:
        """The group's metrics, created on first touch."""
        if name not in self._groups:
            self._groups[name] = GroupMetrics()
        return self._groups[name]

    @property
    def groups(self) -> Dict[str, GroupMetrics]:
        return dict(self._groups)

    def totals(self) -> GroupMetrics:
        """Fleet-wide roll-up of every counter."""
        total = GroupMetrics()
        for gm in self._groups.values():
            total.rounds_completed += gm.rounds_completed
            total.rounds_failed += gm.rounds_failed
            total.alarms += gm.alarms
            total.retries += gm.retries
            total.escalations += gm.escalations
            total.identification_rounds += gm.identification_rounds
            total.confirmed_missing += gm.confirmed_missing
            total.slot_costs.extend(gm.slot_costs)
            total.air_us.extend(gm.air_us)
        return total


def render_metrics_table(metrics: FleetMetrics) -> str:
    """The per-group campaign table the fleet CLI prints."""
    headers = [
        "group",
        "rounds",
        "failed",
        "alarms",
        "retries",
        "escal.",
        "named",
        "slots p50",
        "slots p95",
        "air ms p50",
    ]
    rows = []
    for name in sorted(metrics.groups):
        gm = metrics.groups[name]
        slots = gm.slot_summary
        air = gm.air_summary
        rows.append(
            [
                name,
                str(gm.rounds_completed),
                str(gm.rounds_failed),
                str(gm.alarms),
                str(gm.retries),
                str(gm.escalations),
                str(gm.confirmed_missing),
                f"{slots.p50:.0f}",
                f"{slots.p95:.0f}",
                f"{air.p50 / 1000:.1f}",
            ]
        )
    total = metrics.totals()
    rows.append(
        [
            "TOTAL",
            str(total.rounds_completed),
            str(total.rounds_failed),
            str(total.alarms),
            str(total.retries),
            str(total.escalations),
            str(total.confirmed_missing),
            f"{total.slot_summary.p50:.0f}",
            f"{total.slot_summary.p95:.0f}",
            f"{total.air_summary.p50 / 1000:.1f}",
        ]
    )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
