"""Campaign execution: the fleet's main loop.

A campaign takes a :class:`~repro.fleet.registry.FleetScenario` and a
:class:`CampaignConfig` and runs the scenario's timeline tick by tick:
scripted thefts apply, the scheduler nominates the due groups, the
executor runs their rounds (in parallel when ``jobs > 1``), and every
outcome lands in the metrics and the journal.

Determinism is the design invariant. Each group owns a generator
derived from ``(master_seed, group_index)`` and *only that group's
round* ever draws from it; thefts apply on the campaign thread before
rounds launch; the executor returns results in scheduling order; and
aggregation happens serially on the campaign thread. Consequently the
journal — alarms, escalations, named tags, everything — is identical
across runs and across ``jobs`` settings, and
:meth:`~repro.fleet.journal.FleetJournal.digest` proves it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.analysis import optimal_trp_frame_size
from ..core.estimation import (
    AlarmPolicy,
    StrictAlarmPolicy,
    ThresholdAlarmPolicy,
    estimate_missing_count,
)
from ..core.identification import MissingTagIdentifier
from ..core.utrp_analysis import optimal_utrp_frame_size
from ..core.verification import AlarmConfirmation, Verdict
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..rfid.channel import ChannelOutage
from ..rfid.hashing import slots_for_tags_with_counters
from ..rfid.ids import random_tag_ids
from ..obs.profiling import NULL_PROFILER
from ..population.churn import ChurnPlan
from ..rfid.timing import GEN2_TYPICAL, LinkTiming
from ..simulation.rng import derive_seed
from .executor import ParallelExecutor
from .journal import FleetJournal, RoundRecord
from .metrics import FleetMetrics, render_metrics_table
from .registry import FleetScenario, GroupSpec
from .resilience import (
    EscalationLevel,
    EscalationPolicy,
    RetryExhausted,
    RetryPolicy,
    run_with_retry,
)
from .rounds import (
    AirTimeModel,
    RoundTimeout,
    SimulatedRound,
    detection_diagnostic,
    run_simulated_round,
)
from .scheduler import RoundScheduler, ScheduledRound

__all__ = [
    "CampaignConfig",
    "FleetAlert",
    "CampaignResult",
    "GroupRuntime",
    "run_campaign",
    "format_campaign_result",
]

_SEED_SPACE = 1 << 62
#: Dimension tag separating fleet seed derivation from the figure
#: experiments' (which use their figure numbers).
_FLEET_DIMENSION = 99
#: Dimension tag for membership-churn randomness. Churn draws from its
#: own stream so a campaign with an empty churn plan consumes exactly
#: the round seeds a pre-churn build consumed — the journal digest
#: equivalence the churn feature is pinned against.
_CHURN_DIMENSION = 53


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs for one campaign run.

    Attributes:
        ticks: how many scheduler ticks to run.
        jobs: concurrent rounds (1 = serial).
        master_seed: campaign-level seed; every group derives from it.
        time_scale: air-time pacing — ``0`` runs as fast as the CPU
            allows (tests), ``k > 0`` sleeps each round's air time at
            ``k``x real speed so concurrency is observable.
        diagnostic_trials: per-round Monte Carlo trials for the
            empirical-detection diagnostic (0 = skip).
        retry: backoff schedule for transient failures.
        escalation: repeated-alarm escalation policy.
        round_timeout_us: abort any round whose air time exceeds this
            (``None`` = no timeout).
        timing: link budget for air-time accounting.
        fault_plan: optional declarative fault plan
            (:class:`~repro.faults.plan.FaultPlan`); faults draw from
            their own seed dimension, so ``None`` leaves the campaign
            byte-identical to a build without the faults package.
        vote_quorum: ``k`` of the k-of-r alarm-confirmation vote
            (0 disables voting — every raw alarm pages, the paper's
            behaviour).
        vote_window: ``r`` of the vote (must be >= ``vote_quorum``).
        salvage_partial: verify crash-truncated frames at achieved
            confidence instead of rejecting them as malformed.
        auto_resync: after a counter-tag group's alarm, run the bounded
            counter-resync handshake; an alarm fully explained by
            recovered desync is withdrawn.
        resync_max_offset: largest per-tag broadcast deficit the resync
            hypothesis search considers.
        resync_max_rounds: probe-round budget per resync handshake.
        churn_plan: optional scripted membership timeline
            (:class:`~repro.population.churn.ChurnPlan`); events apply
            on the campaign thread before the tick's rounds launch,
            drawing tag choices from a dedicated seed dimension.
            ``None`` (or an empty plan) leaves every round — and the
            journal digest — byte-identical to a churn-free build.
    """

    ticks: int = 5
    jobs: int = 1
    master_seed: int = 20080617
    time_scale: float = 0.0
    diagnostic_trials: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    escalation: EscalationPolicy = field(default_factory=EscalationPolicy)
    round_timeout_us: Optional[float] = None
    timing: LinkTiming = GEN2_TYPICAL
    fault_plan: Optional[FaultPlan] = None
    vote_quorum: int = 0
    vote_window: int = 0
    salvage_partial: bool = False
    auto_resync: bool = False
    resync_max_offset: int = 8
    resync_max_rounds: int = 6
    churn_plan: Optional[ChurnPlan] = None

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.diagnostic_trials < 0:
            raise ValueError("diagnostic_trials must be >= 0")
        if self.round_timeout_us is not None and self.round_timeout_us <= 0:
            raise ValueError("round_timeout_us must be positive")
        if self.vote_quorum < 0 or self.vote_window < 0:
            raise ValueError("vote parameters must be >= 0")
        if (self.vote_quorum == 0) != (self.vote_window == 0):
            raise ValueError("set both vote_quorum and vote_window, or neither")
        if self.vote_quorum > self.vote_window:
            raise ValueError("vote_quorum must be <= vote_window")
        if self.resync_max_offset < 0:
            raise ValueError("resync_max_offset must be >= 0")
        if self.resync_max_rounds < 1:
            raise ValueError("resync_max_rounds must be >= 1")


@dataclass(frozen=True)
class FleetAlert:
    """An operator page, qualified with its group and tick."""

    group: str
    tick: int
    protocol: str
    estimated_missing: float

    def describe(self) -> str:
        return (
            f"[{self.group}] tick {self.tick} ({self.protocol.upper()}): "
            f"~{self.estimated_missing:.1f} tags estimated missing"
        )


class GroupRuntime:
    """One group's live state across a campaign.

    Owns the group's IDs, presence mask, generator, counter mirror,
    escalation state and identification accumulator. All methods are
    called either on the campaign thread (thefts, between ticks) or by
    exactly one executor worker at a time (the group's own round), so
    no locking is needed.
    """

    def __init__(
        self,
        spec: GroupSpec,
        config: CampaignConfig,
        index: int,
        injector: Optional[FaultInjector] = None,
    ):
        self.spec = spec
        self.config = config
        self.index = index
        self.injector = injector
        self.rng = np.random.default_rng(
            derive_seed(config.master_seed, _FLEET_DIMENSION, index)
        )
        # Churn never touches self.rng: tag choices and fresh IDs come
        # from this separate stream, so an empty churn plan leaves the
        # round-seed sequence (hence the journal digest) untouched.
        self.churn_rng = np.random.default_rng(
            derive_seed(config.master_seed, _CHURN_DIMENSION, index)
        )
        self.population_epoch = 0
        self.ids = random_tag_ids(spec.population, self.rng)
        self.present = np.ones(spec.population, dtype=bool)
        self.counter = 0
        # Physical vs learned counter deficits. ``counter_lag`` is
        # simulation ground truth — broadcasts each tag actually missed;
        # ``mirror_lag`` is what the server has recovered via resync.
        # The group is in sync when the two agree.
        self.counter_lag = np.zeros(spec.population, dtype=np.int64)
        self.mirror_lag = np.zeros(spec.population, dtype=np.int64)
        self.confirmation: Optional[AlarmConfirmation] = (
            AlarmConfirmation(quorum=config.vote_quorum, window=config.vote_window)
            if config.vote_quorum > 0
            else None
        )
        self.degraded = False
        self.base_level = (
            EscalationLevel.TRP
            if spec.trusted_reader
            else EscalationLevel.UTRP
        )
        self.level = self.base_level
        self.consecutive_alarms = 0
        self.stolen_total = 0
        self.identifier: Optional[MissingTagIdentifier] = None
        self.alarm_policy: AlarmPolicy = (
            ThresholdAlarmPolicy(tolerance=spec.tolerance)
            if spec.tolerant_alarms
            else StrictAlarmPolicy()
        )
        self.trp_frame = optimal_trp_frame_size(
            spec.population, spec.tolerance, spec.confidence
        )
        self.utrp_frame = optimal_utrp_frame_size(
            spec.population, spec.tolerance, spec.confidence, spec.comm_budget
        )
        self.air_model = AirTimeModel(
            timing=config.timing, time_scale=config.time_scale
        )

    # ------------------------------------------------------------------
    # timeline events (campaign thread)
    # ------------------------------------------------------------------

    def apply_theft(self, count: int) -> int:
        """Steal up to ``count`` random present tags; returns the take."""
        present_idx = np.nonzero(self.present)[0]
        take = min(count, present_idx.size)
        if take:
            chosen = self.rng.choice(present_idx, size=take, replace=False)
            self.present[chosen] = False
            self.stolen_total += take
        return take

    def apply_churn(self, op: str, count: int) -> int:
        """Apply one membership event; returns how many tags it moved.

        Commission appends fresh IDs (present, counters in sync: a
        factory-fresh tag's hardware counter is 0 on both the physical
        and the mirrored side). Decommission retires random *present*
        tags — an operator retires tags that are in hand, and the
        request is capped so ``n`` stays above the tolerance the group
        monitors at. Replace retires then commissions in one event, so
        ``n`` is unchanged. Every applied event advances the group's
        population epoch; decision-variable frame sizes are recomputed
        from the new ``n`` immediately (the plan cache absorbs the
        cost when ``n`` lands on a previously planned value).
        """
        removed = 0
        added = 0
        if op in ("decommission", "replace"):
            present_idx = np.nonzero(self.present)[0]
            limit = present_idx.size
            if op == "decommission":
                # Keep the monitored invariant n > m intact.
                limit = min(limit, self.ids.size - self.spec.tolerance - 1)
            removed = min(count, max(0, limit))
            if removed:
                chosen = self.churn_rng.choice(
                    present_idx, size=removed, replace=False
                )
                keep = np.ones(self.ids.size, dtype=bool)
                keep[chosen] = False
                self.ids = self.ids[keep]
                self.present = self.present[keep]
                self.counter_lag = self.counter_lag[keep]
                self.mirror_lag = self.mirror_lag[keep]
        if op in ("commission", "replace"):
            added = count if op == "commission" else removed
            if added:
                existing = set(self.ids.tolist())
                fresh: List[int] = []
                while len(fresh) < added:
                    for candidate in random_tag_ids(
                        added - len(fresh), self.churn_rng
                    ).tolist():
                        if candidate not in existing:
                            existing.add(candidate)
                            fresh.append(candidate)
                self.ids = np.concatenate(
                    [self.ids, np.asarray(fresh, dtype=self.ids.dtype)]
                )
                self.present = np.concatenate(
                    [self.present, np.ones(added, dtype=bool)]
                )
                # A new tag's hardware counter is 0 while the group
                # counter is already at self.counter: both the physical
                # lag and the mirrored lag start at that deficit, so
                # the tag is born in sync.
                born_lag = np.full(added, self.counter, dtype=np.int64)
                self.counter_lag = np.concatenate([self.counter_lag, born_lag])
                self.mirror_lag = np.concatenate([self.mirror_lag, born_lag])
        moved = removed if op != "commission" else added
        if moved or (op == "replace" and removed):
            self.population_epoch += 1
            n = int(self.ids.size)
            self.trp_frame = optimal_trp_frame_size(
                n, self.spec.tolerance, self.spec.confidence
            )
            self.utrp_frame = optimal_utrp_frame_size(
                n,
                self.spec.tolerance,
                self.spec.confidence,
                self.spec.comm_budget,
            )
            # The identification accumulator indexes the old roster.
            self.identifier = None
        return moved

    # ------------------------------------------------------------------
    # round execution (one executor worker)
    # ------------------------------------------------------------------

    def _frame_for(self, level: EscalationLevel) -> int:
        # Identification runs forensic TRP-style sweeps at the TRP frame.
        return self.utrp_frame if level is EscalationLevel.UTRP else self.trp_frame

    def run_round(self, tick: int) -> RoundRecord:
        """Execute one scheduled round, retries and escalation included."""
        level = self.level
        frame = self._frame_for(level)
        spec = self.spec
        retry_errors: List[str] = []
        injected_on_failure: List[str] = []

        def attempt(index: int) -> SimulatedRound:
            faults = None
            if self.injector is not None:
                faults = self.injector.faults_for(
                    spec.name, self.index, tick, index, frame, spec.population
                )
                if faults.outage:
                    injected_on_failure.extend(faults.injected)
                    raise ChannelOutage(
                        f"{spec.name}: injected outage (attempt {index + 1})"
                    )
            if spec.outage_rate > 0.0 and self.rng.random() < spec.outage_rate:
                raise ChannelOutage(
                    f"{spec.name}: session lost (attempt {index + 1})"
                )
            seed = int(self.rng.integers(0, _SEED_SPACE))
            # Identification replays must be counter-free so the
            # core identifier can re-derive the slot map; operational
            # TRP/UTRP rounds on counter tags tick the shared counter.
            counter_round = spec.counter_tags and level is not EscalationLevel.IDENTIFY
            counter = self.counter + 1 if counter_round else 0
            outcome = run_simulated_round(
                self.ids,
                self.present,
                frame,
                seed,
                counter=counter,
                miss_rate=spec.miss_rate,
                rng=self.rng,
                air_model=self.air_model,
                faults=faults,
                counter_lag=self.counter_lag if counter_round else None,
                mirror_lag=self.mirror_lag if counter_round else None,
                salvage_partial=self.config.salvage_partial,
                critical_missing=spec.tolerance + 1,
            )
            timeout = self.config.round_timeout_us
            if timeout is not None and outcome.air_us > timeout:
                raise RoundTimeout(
                    f"{spec.name}: round air time {outcome.air_us:.0f}us "
                    f"exceeds budget {timeout:.0f}us"
                )
            if counter_round:
                self.counter = counter
                if faults is not None and faults.seed_loss is not None:
                    # Present tags that missed this broadcast fall one
                    # further behind the mirror — the UTRP desync the
                    # resync handshake exists to repair.
                    deaf = faults.seed_loss & self.present
                    self.counter_lag[deaf] += 1
            pause = self.air_model.wall_seconds(outcome.air_us)
            if pause > 0:
                time.sleep(pause)
            return outcome

        def note_retry(index: int, error: BaseException, charged_us: float) -> None:
            retry_errors.append(str(error))

        try:
            outcome, attempts, backoff_us = run_with_retry(
                attempt, self.config.retry, on_retry=note_retry
            )
        except RetryExhausted as error:
            # The round is abandoned and the group marked degraded; the
            # schedule moves on — one dead reader never stalls the fleet.
            self.consecutive_alarms = 0
            newly_degraded = not self.degraded
            self.degraded = True
            retry_errors.append(str(error.last_error))
            return RoundRecord(
                tick=tick,
                group=spec.name,
                protocol=level.value,
                verdict="failed",
                attempts=error.attempts,
                backoff_us=backoff_us_of(self.config.retry, error.attempts),
                failure=str(error.last_error),
                injected=sorted(set(injected_on_failure)),
                degraded=newly_degraded,
                retry_errors=retry_errors,
            )
        self.degraded = False
        return self._conclude(
            tick, level, outcome, attempts, backoff_us, retry_errors
        )

    def _conclude(
        self,
        tick: int,
        level: EscalationLevel,
        outcome: SimulatedRound,
        attempts: int,
        backoff_us: float,
        retry_errors: Optional[List[str]] = None,
    ) -> RoundRecord:
        spec = self.spec
        # Current roster size, not the spec's: churn moves n mid-run.
        n, f = int(self.ids.size), outcome.frame_size
        mismatches = outcome.mismatches
        estimate = estimate_missing_count(mismatches, n, f)
        raw_alarmed = outcome.result.verdict.alarm and self.alarm_policy.should_alarm(
            mismatches, n, f
        )
        alarmed = raw_alarmed
        vote_suppressed = False
        # k-of-r confirmation: occupancy verdicts feed the vote; the
        # rejected-* verdicts (malformed frames without salvage) bypass
        # it — they indicate reader misbehaviour, not channel noise.
        if self.confirmation is not None and outcome.result.verdict in (
            Verdict.INTACT,
            Verdict.NOT_INTACT,
        ):
            paged = self.confirmation.observe(raw_alarmed)
            if raw_alarmed:
                alarmed = paged
                vote_suppressed = not paged

        resync_recovered = 0
        resync_unresolved = 0
        resync_air = 0.0
        if (
            alarmed
            and self.config.auto_resync
            and spec.counter_tags
            and level is not EscalationLevel.IDENTIFY
        ):
            resync_recovered, resync_unresolved, resync_air = self._run_resync()
            if resync_recovered and resync_unresolved == 0:
                # Every mismatch traced back to recovered desync: the
                # set is intact, the page is withdrawn.
                alarmed = False
                if self.confirmation is not None:
                    self.confirmation.reset()

        named: List[int] = []
        if level is EscalationLevel.IDENTIFY:
            if self.identifier is None:
                self.identifier = MissingTagIdentifier(self.ids)
            before = self.identifier.confirmed_missing
            self.identifier.ingest(f, outcome.seed, outcome.observed)
            named = sorted(self.identifier.confirmed_missing - before)

        escalated_to: Optional[str] = None
        if alarmed:
            self.consecutive_alarms += 1
            if (
                self.config.escalation.should_escalate(self.consecutive_alarms)
                and self.level is not EscalationLevel.IDENTIFY
            ):
                self.level = self.config.escalation.next_level(
                    self.level, spec.counter_tags
                )
                escalated_to = self.level.value
                self.consecutive_alarms = 0
        else:
            self.consecutive_alarms = 0
            self.level = self.base_level

        diagnostic: Optional[float] = None
        if self.config.diagnostic_trials > 0:
            diagnostic = detection_diagnostic(
                self.ids,
                f,
                spec.tolerance + 1,
                self.config.diagnostic_trials,
                self.rng,
            )

        return RoundRecord(
            tick=tick,
            group=spec.name,
            protocol=level.value,
            verdict=outcome.result.verdict.value,
            frame_size=f,
            seed=outcome.seed,
            mismatches=mismatches,
            estimated_missing=round(estimate, 3),
            alarmed=alarmed,
            attempts=attempts,
            backoff_us=backoff_us,
            air_us=outcome.air_us + resync_air,
            escalated_to=escalated_to,
            confirmed_missing=[int(t) for t in named],
            empirical_detection=diagnostic,
            injected=list(outcome.injected or []),
            replies_lost=outcome.lost_replies,
            polled_slots=outcome.result.polled_slots,
            salvaged=outcome.result.salvaged,
            achieved_confidence=(
                round(outcome.result.achieved_confidence, 6)
                if outcome.result.achieved_confidence is not None
                else None
            ),
            vote_suppressed=vote_suppressed,
            resync_recovered=resync_recovered,
            resync_unresolved=resync_unresolved,
            retry_errors=list(retry_errors or []),
        )

    def _run_resync(self) -> "tuple[int, int, float]":
        """Bounded counter-resync over sparse probe frames.

        The fleet-scale analogue of
        :func:`repro.core.utrp.run_counter_resync`: hypothesis
        elimination over per-tag broadcast deficits ``d`` in
        ``[0, resync_max_offset]``. Probe frames are sparse (8 slots
        per tag) so a wrong hypothesis survives a probe only with
        probability about ``1 - e^{-n/f}``; a handful of rounds pins
        every answering tag. Tags that never answer stay unresolved —
        a genuinely stolen tag cannot be absorbed by recovery.

        Returns:
            ``(recovered, unresolved, air_us)`` — offsets newly
            learned, tags unaccounted for, and the probes' air cost.
        """
        n = self.ids.size
        max_offset = self.config.resync_max_offset
        f = max(64, 8 * n)
        mirror = self.counter - self.mirror_lag
        alive = np.ones((n, max_offset + 1), dtype=bool)
        air_us = 0.0
        rounds_run = 0
        for probe in range(1, self.config.resync_max_rounds + 1):
            seed = int(self.rng.integers(0, _SEED_SPACE))
            rounds_run = probe
            # Physical truth: every present tag hears the probe and
            # replies with its own counter. Probes are short sparse
            # frames run back to back; they are modelled loss-free.
            physical = (self.counter - self.counter_lag + probe)[self.present]
            present_slots = slots_for_tags_with_counters(
                self.ids[self.present], seed, f, physical
            )
            occupied = np.zeros(f, dtype=bool)
            occupied[present_slots] = True
            air_us += self.air_model.round_air_us(f, int(occupied.sum()))
            for d in range(max_offset + 1):
                column = alive[:, d]
                if not column.any():
                    continue
                hypothesis = slots_for_tags_with_counters(
                    self.ids[column], seed, f, mirror[column] + probe - d
                )
                alive[column, d] &= occupied[hypothesis]
            if (alive.sum(axis=1) <= 1).all():
                break
        survivors = alive.sum(axis=1)
        best = np.where(survivors > 0, np.argmax(alive, axis=1), 0).astype(
            np.int64
        )
        recovered = int(((survivors >= 1) & (best > 0)).sum())
        unresolved = int((survivors == 0).sum())
        # Commit: the probes ticked every tag, and the server now knows
        # each answering tag's deficit.
        self.counter += rounds_run
        self.mirror_lag = self.mirror_lag + best
        return recovered, unresolved, air_us


def backoff_us_of(policy: RetryPolicy, attempts: int) -> float:
    """Total simulated backoff a fully-exhausted round accumulated."""
    return sum(policy.backoff_us(i) for i in range(max(0, attempts - 1)))


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Attributes:
        journal: the full round journal (deterministic under the seed).
        metrics: per-group counters and cost summaries.
        alerts: operator pages, in journal order.
        wall_seconds: host wall-clock the campaign took (excluded from
            the journal digest — it varies with jobs and host).
        config: the configuration that ran.
        group_names: roster, in registration order.
        churn_applied: tags moved per membership op over the run
            (empty when no churn plan ran). Kept out of the journal on
            purpose: the digest must stay comparable across builds
            with and without churn support.
        population_epochs: final per-group epoch (only groups a churn
            event actually touched; everything else is implicitly 0).
    """

    journal: FleetJournal
    metrics: FleetMetrics
    alerts: List[FleetAlert]
    wall_seconds: float
    config: CampaignConfig
    group_names: List[str]
    churn_applied: Dict[str, int] = field(default_factory=dict)
    population_epochs: Dict[str, int] = field(default_factory=dict)


def run_campaign(
    scenario: FleetScenario,
    config: CampaignConfig,
    on_alert: Optional[Callable[[FleetAlert], None]] = None,
    obs=None,
) -> CampaignResult:
    """Run a scenario to completion.

    Args:
        scenario: roster + theft timeline.
        config: execution knobs.
        on_alert: optional callback fired (on the campaign thread, in
            journal order) for every page; exceptions propagate.
        obs: optional :class:`repro.obs.ObsContext`. When given, fleet
            counters land in ``obs.registry``, round/theft events are
            published to ``obs.bus`` (on the campaign thread, in
            journal order — so the trace digest is ``jobs``-invariant
            like the journal digest), and per-round wall clock
            accumulates in ``obs.profiler`` under the ``fleet.round``
            phase.

    Raises:
        ValueError: on an invalid scenario.
    """
    scenario.validate()
    churn_plan = config.churn_plan
    if churn_plan:
        known = set(scenario.registry.names)
        for event in churn_plan.events:
            if event.group not in known:
                raise ValueError(
                    f"churn plan names unknown group {event.group!r}"
                )
    injector = (
        FaultInjector(config.fault_plan, config.master_seed)
        if config.fault_plan is not None
        else None
    )
    runtimes: Dict[str, GroupRuntime] = {}
    scheduler = RoundScheduler()
    for index, spec in enumerate(scenario.registry):
        runtimes[spec.name] = GroupRuntime(spec, config, index, injector=injector)
        scheduler.add_group(
            spec.name, interval=spec.interval, priority=spec.priority
        )

    executor = ParallelExecutor(config.jobs)
    journal = FleetJournal()
    metrics = FleetMetrics(registry=obs.registry if obs is not None else None)
    alerts: List[FleetAlert] = []
    profiler = obs.profiler if obs is not None else NULL_PROFILER

    def run_one(item: ScheduledRound) -> RoundRecord:
        with profiler.timer("fleet.round") as timer:
            record = runtimes[item.group].run_round(item.tick)
            timer.sim_air_us = record.air_us + record.backoff_us
        return record

    if obs is not None:
        obs.bus.emit(
            "fleet.campaign.begin",
            scope="fleet",
            groups=list(scenario.registry.names),
            ticks=config.ticks,
            master_seed=config.master_seed,
        )
    churn_applied: Dict[str, int] = {}
    start = time.perf_counter()
    for tick in range(config.ticks):
        scope = f"fleet/tick:{tick:06d}"
        for event in scenario.events_at(tick):
            taken = runtimes[event.group].apply_theft(event.count)
            if obs is not None:
                obs.bus.emit(
                    "fleet.theft",
                    scope=scope,
                    group=event.group,
                    requested=event.count,
                    taken=taken,
                )
        if churn_plan:
            for event in churn_plan.events_at(tick):
                runtime = runtimes[event.group]
                moved = runtime.apply_churn(event.op, event.count)
                churn_applied[event.op] = (
                    churn_applied.get(event.op, 0) + moved
                )
                if obs is not None:
                    obs.bus.emit(
                        "fleet.churn",
                        scope=scope,
                        group=event.group,
                        op=event.op,
                        moved=moved,
                        epoch=runtime.population_epoch,
                        population=int(runtime.ids.size),
                    )
        due = scheduler.due(tick)
        records = executor.map(run_one, due)
        for record in records:
            journal.append(record)
            _aggregate(metrics, record)
            if obs is not None:
                # All emission happens here, on the campaign thread in
                # journal order, so traces stay jobs-invariant.
                for attempt_index, error in enumerate(record.retry_errors):
                    final = attempt_index == len(record.retry_errors) - 1
                    obs.bus.emit(
                        "fleet.retry",
                        scope=scope,
                        group=record.group,
                        attempt=attempt_index + 1,
                        backoff_us=(
                            0.0
                            if record.failure is not None and final
                            else config.retry.backoff_us(attempt_index)
                        ),
                        error=error,
                        exhausted=record.failure is not None and final,
                    )
                if record.injected:
                    obs.bus.emit(
                        "fleet.fault",
                        scope=scope,
                        group=record.group,
                        injected=record.injected,
                        replies_lost=record.replies_lost,
                    )
                obs.bus.emit(
                    "fleet.round",
                    scope=scope,
                    group=record.group,
                    protocol=record.protocol,
                    verdict=record.verdict,
                    frame_size=record.frame_size,
                    seed=record.seed,
                    mismatches=record.mismatches,
                    estimated_missing=record.estimated_missing,
                    alarmed=record.alarmed,
                    attempts=record.attempts,
                    escalated_to=record.escalated_to,
                    confirmed_missing=record.confirmed_missing,
                )
                if record.salvaged:
                    obs.bus.emit(
                        "fleet.salvage",
                        scope=scope,
                        group=record.group,
                        polled_slots=record.polled_slots,
                        frame_size=record.frame_size,
                        achieved_confidence=record.achieved_confidence,
                    )
                if record.vote_suppressed:
                    obs.bus.emit(
                        "fleet.alarm.suppressed",
                        scope=scope,
                        group=record.group,
                        mismatches=record.mismatches,
                    )
                if record.resync_recovered or record.resync_unresolved:
                    obs.bus.emit(
                        "fleet.resync",
                        scope=scope,
                        group=record.group,
                        recovered=record.resync_recovered,
                        unresolved=record.resync_unresolved,
                    )
                if record.escalated_to is not None:
                    obs.bus.emit(
                        "fleet.escalation",
                        scope=scope,
                        group=record.group,
                        escalated_to=record.escalated_to,
                    )
                if record.degraded:
                    obs.bus.emit(
                        "fleet.group.degraded",
                        scope=scope,
                        group=record.group,
                        failure=record.failure,
                    )
            if record.alarmed:
                alert = FleetAlert(
                    group=record.group,
                    tick=record.tick,
                    protocol=record.protocol,
                    estimated_missing=record.estimated_missing,
                )
                alerts.append(alert)
                if on_alert is not None:
                    on_alert(alert)
    wall = time.perf_counter() - start
    if obs is not None:
        obs.bus.emit(
            "fleet.campaign.end",
            scope="fleet",
            rounds=len(journal),
            alerts=len(alerts),
            journal_digest=journal.digest(),
        )

    return CampaignResult(
        journal=journal,
        metrics=metrics,
        alerts=alerts,
        wall_seconds=wall,
        config=config,
        group_names=scenario.registry.names,
        churn_applied=churn_applied,
        population_epochs={
            name: runtime.population_epoch
            for name, runtime in runtimes.items()
            if runtime.population_epoch
        },
    )


def _aggregate(metrics: FleetMetrics, record: RoundRecord) -> None:
    gm = metrics.group(record.group)
    gm.record_retries(max(0, record.attempts - 1))
    gm.record_faults_injected(len(record.injected))
    if record.failure is not None:
        gm.record_failed_round()
        return
    gm.record_completed_round(
        slots=float(record.frame_size),
        air_us=record.air_us + record.backoff_us,
    )
    gm.record_replies_lost(record.replies_lost)
    if record.salvaged:
        gm.record_salvaged_round()
    if record.vote_suppressed:
        gm.record_suppressed_alarm()
    gm.record_tags_resynced(record.resync_recovered)
    if record.alarmed:
        gm.record_alarm()
    if record.escalated_to is not None:
        gm.record_escalation()
    if record.protocol == EscalationLevel.IDENTIFY.value:
        gm.record_identification_round()
    gm.record_confirmed_missing(len(record.confirmed_missing))


def format_campaign_result(result: CampaignResult) -> str:
    """The operator-facing campaign report."""
    cfg = result.config
    lines = [
        f"fleet campaign: {len(result.group_names)} group(s), "
        f"{cfg.ticks} tick(s), jobs={cfg.jobs}, seed={cfg.master_seed}",
        f"wall clock: {result.wall_seconds:.2f}s "
        f"(time_scale={cfg.time_scale:g})",
        "",
        render_metrics_table(result.metrics),
    ]
    if result.alerts:
        lines.append("")
        lines.append(f"operator pages ({len(result.alerts)}):")
        lines.extend(f"  {alert.describe()}" for alert in result.alerts)
    escalations = result.journal.escalations()
    if escalations:
        lines.append("")
        lines.append("escalations:")
        lines.extend(
            f"  [{r.group}] tick {r.tick}: {r.protocol} -> {r.escalated_to}"
            for r in escalations
        )
    named = [
        r for r in result.journal.records if r.confirmed_missing
    ]
    if named:
        total = sum(len(r.confirmed_missing) for r in named)
        lines.append("")
        lines.append(f"identification named {total} missing tag(s)")
    faulted = result.journal.faulted()
    if faulted:
        total_injected = sum(len(r.injected) for r in faulted)
        resynced = sum(r.resync_recovered for r in result.journal.records)
        lines.append("")
        lines.append(
            f"fault injection: {total_injected} fault(s) across "
            f"{len(faulted)} round(s); "
            f"{len(result.journal.salvages())} frame(s) salvaged, "
            f"{len(result.journal.suppressed())} alarm(s) voted down, "
            f"{resynced} counter offset(s) resynced"
        )
    degraded = [r.group for r in result.journal.records if r.degraded]
    if degraded:
        lines.append("")
        lines.append(
            "degraded groups: " + ", ".join(sorted(set(degraded)))
        )
    if result.churn_applied:
        moved = result.churn_applied
        epochs = ", ".join(
            f"{name}={epoch}"
            for name, epoch in sorted(result.population_epochs.items())
        )
        lines.append("")
        lines.append(
            f"membership churn: {moved.get('commission', 0)} commissioned, "
            f"{moved.get('decommission', 0)} decommissioned, "
            f"{moved.get('replace', 0)} replaced; "
            f"final epochs: {epochs or 'none'}"
        )
    lines.append("")
    lines.append(f"journal digest: {result.journal.digest()}")
    return "\n".join(lines)
