"""The fleet registry: named groups and the campaign scenario format.

A *fleet* is many independently-policied tag groups monitored by one
server — the shelves, pallets and stockrooms of Sec. 1's deployment
story, each with its own ``(n, m, alpha)`` requirement, reader-trust
level and channel quality. :class:`GroupSpec` is the declarative
description of one such group; :class:`FleetScenario` bundles the
group roster with a deterministic event timeline (thefts at known
ticks) so an entire campaign is reproducible from one JSON file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from ..core.parameters import MonitorRequirement

__all__ = [
    "GroupSpec",
    "TheftEvent",
    "FleetRegistry",
    "FleetScenario",
    "default_scenario",
]


@dataclass(frozen=True)
class GroupSpec:
    """Declarative description of one monitored group.

    Attributes:
        name: unique label; appears in alerts, metrics and the journal.
        population: ``n`` — registered tags in the group.
        tolerance: ``m`` — acceptable missing count.
        confidence: ``alpha`` — required detection probability.
        trusted_reader: True runs TRP rounds; False runs UTRP-grade
            rounds from the start (the group's reader is not trusted).
        counter_tags: whether the group's tags carry the UTRP hardware
            counter. Required for untrusted readers and for TRP→UTRP
            escalation.
        comm_budget: collusion budget ``c`` assumed when sizing UTRP
            frames for this group.
        miss_rate: per-reply benign loss probability on this group's
            channel (scratched tags, blocking items).
        outage_rate: per-attempt probability the whole session drops
            (:class:`~repro.rfid.channel.ChannelOutage`); the
            resilience layer retries these.
        interval: ticks between successive rounds on this group.
        priority: lower numbers are scheduled first within a tick
            (high-value stockrooms before overflow shelving).
        tolerant_alarms: use the missing-count-estimating
            :class:`~repro.core.estimation.ThresholdAlarmPolicy`
            instead of the paper's strict any-mismatch rule.
    """

    name: str
    population: int
    tolerance: int
    confidence: float = 0.95
    trusted_reader: bool = True
    counter_tags: bool = True
    comm_budget: int = 20
    miss_rate: float = 0.0
    outage_rate: float = 0.0
    interval: int = 1
    priority: int = 0
    tolerant_alarms: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        # Delegate (n, m, alpha) validation to the policy object.
        MonitorRequirement(self.population, self.tolerance, self.confidence)
        if not self.trusted_reader and not self.counter_tags:
            raise ValueError(
                f"group {self.name!r}: an untrusted reader needs counter tags"
            )
        if self.comm_budget < 0:
            raise ValueError("comm_budget must be >= 0")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ValueError("miss_rate must be within [0, 1)")
        if not 0.0 <= self.outage_rate < 1.0:
            raise ValueError("outage_rate must be within [0, 1)")
        if self.interval < 1:
            raise ValueError("interval must be >= 1 tick")

    @property
    def requirement(self) -> MonitorRequirement:
        """The group's ``(n, m, alpha)`` policy object."""
        return MonitorRequirement(
            self.population, self.tolerance, self.confidence
        )


@dataclass(frozen=True)
class TheftEvent:
    """A scripted theft: ``count`` random tags vanish before ``tick``.

    Attributes:
        group: which group loses tags.
        tick: the scheduler tick the loss precedes (the next round on
            the group can detect it).
        count: how many tags are stolen.
    """

    group: str
    tick: int
    count: int

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError("tick must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")


class FleetRegistry:
    """Ordered collection of :class:`GroupSpec`, keyed by name."""

    def __init__(self, specs: Optional[List[GroupSpec]] = None):
        self._specs: Dict[str, GroupSpec] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: GroupSpec) -> GroupSpec:
        """Register a group.

        Raises:
            ValueError: on a duplicate name.
        """
        if spec.name in self._specs:
            raise ValueError(f"group {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> GroupSpec:
        """Look up a group.

        Raises:
            KeyError: on an unknown name.
        """
        return self._specs[name]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[GroupSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    @property
    def names(self) -> List[str]:
        return list(self._specs)

    @property
    def total_population(self) -> int:
        return sum(s.population for s in self._specs.values())


@dataclass
class FleetScenario:
    """A complete, reproducible campaign description.

    Attributes:
        registry: the group roster.
        events: the theft timeline (sorted on access by tick, then
            group name, so application order never depends on how the
            scenario was authored).
    """

    registry: FleetRegistry
    events: List[TheftEvent] = field(default_factory=list)

    def events_at(self, tick: int) -> List[TheftEvent]:
        """The thefts to apply just before ``tick``'s rounds run."""
        hits = [e for e in self.events if e.tick == tick]
        return sorted(hits, key=lambda e: e.group)

    def validate(self) -> None:
        """Cross-check events against the roster.

        Raises:
            ValueError: if an event names an unknown group.
        """
        for event in self.events:
            if event.group not in self.registry:
                raise ValueError(
                    f"event at tick {event.tick} names unknown group "
                    f"{event.group!r}"
                )

    # ------------------------------------------------------------------
    # serialisation (the scenario-file format)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "groups": [asdict(spec) for spec in self.registry],
            "events": [asdict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FleetScenario":
        """Rebuild a scenario from its JSON document.

        Raises:
            ValueError: on malformed documents or dangling event
                references.
        """
        if "groups" not in doc:
            raise ValueError("scenario document lacks a 'groups' list")
        registry = FleetRegistry(
            [GroupSpec(**group) for group in doc["groups"]]
        )
        events = [TheftEvent(**event) for event in doc.get("events", [])]
        scenario = cls(registry=registry, events=events)
        scenario.validate()
        return scenario

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FleetScenario":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def default_scenario(groups: int = 4) -> FleetScenario:
    """A synthetic-but-plausible fleet for demos and the CLI.

    Group shapes cycle through four archetypes (big trusted stockroom,
    lossy shelf, untrusted dock reader, small high-priority vault) and
    the event timeline stages both a sub-tolerance loss (absorbed by
    ``m``) and super-tolerance thefts (alarm, then escalation as the
    alarms repeat). Everything downstream is derived from the campaign
    seed, so the same ``groups`` count always produces the same
    scenario structure.

    Raises:
        ValueError: if ``groups`` is not positive.
    """
    if groups < 1:
        raise ValueError("groups must be >= 1")
    specs: List[GroupSpec] = []
    events: List[TheftEvent] = []
    for i in range(groups):
        archetype = i % 4
        name = f"group-{i:02d}"
        if archetype == 0:  # large trusted stockroom, clean channel
            spec = GroupSpec(
                name=name,
                population=2000 + 250 * (i // 4),
                tolerance=20,
                trusted_reader=True,
                priority=1,
            )
            # Repeated super-tolerance theft: alarm on tick 1's round,
            # again on tick 2's -> escalates TRP -> UTRP -> identify.
            events.append(TheftEvent(group=name, tick=1, count=35))
            events.append(TheftEvent(group=name, tick=2, count=15))
        elif archetype == 1:  # lossy shelf, tolerant alarms, flaky link
            spec = GroupSpec(
                name=name,
                population=1200 + 200 * (i // 4),
                tolerance=30,
                miss_rate=0.004,
                outage_rate=0.25,
                tolerant_alarms=True,
                priority=2,
            )
            # Sub-tolerance loss: the whole point of m is to absorb it.
            events.append(TheftEvent(group=name, tick=2, count=8))
        elif archetype == 2:  # dock door with an untrusted reader
            spec = GroupSpec(
                name=name,
                population=1500 + 200 * (i // 4),
                tolerance=10,
                trusted_reader=False,
                interval=2,
                priority=3,
            )
            events.append(TheftEvent(group=name, tick=2, count=25))
        else:  # small high-value vault, checked first every tick
            spec = GroupSpec(
                name=name,
                population=600 + 100 * (i // 4),
                tolerance=5,
                priority=0,
            )
        specs.append(spec)
    return FleetScenario(registry=FleetRegistry(specs), events=events)
