"""The append-only round journal: a campaign's forensic record.

Every round — completed, alarmed, escalated or abandoned — appends one
structured record. The journal is the campaign's source of truth for
post-hoc questions ("when did group-03 first alarm?", "what did
identification name?") and for the determinism guarantee: two runs of
the same scenario under the same seed must produce byte-identical
journals, which :meth:`FleetJournal.digest` makes checkable in one
comparison. Wall-clock quantities are deliberately excluded from the
digest — simulated time is part of the experiment, host speed is not.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

__all__ = ["RoundRecord", "FleetJournal"]


@dataclass(frozen=True)
class RoundRecord:
    """One round's journal entry.

    Attributes:
        tick: scheduler tick the round ran at.
        group: group checked.
        protocol: "trp", "utrp" or "identify".
        verdict: the verdict value, or "failed" when retries ran out.
        frame_size: ``f`` used (0 for failed rounds).
        seed: challenge seed (0 for failed rounds).
        mismatches: mismatched slot count.
        estimated_missing: missing-count estimate from the mismatches.
        alarmed: whether this round paged the operator.
        attempts: attempts the round took (1 = clean first try).
        backoff_us: simulated backoff spent on retries.
        air_us: simulated air time (successful attempt only).
        escalated_to: new level when this round triggered escalation.
        confirmed_missing: tag IDs newly named by identification.
        empirical_detection: measured ``g(n, m+1, f)`` diagnostic for
            the round's frame, when the campaign runs diagnostics.
        failure: the final transient error for abandoned rounds.
        injected: fault names the plan injected into this round.
        replies_lost: replies the channel swallowed this round.
        polled_slots: slots the reader actually returned (equals
            ``frame_size`` except for salvaged partial frames).
        salvaged: the verdict rests on a crash-truncated frame.
        achieved_confidence: detection probability a salvaged frame
            actually delivered (``None`` for full frames).
        vote_suppressed: a raw alarm the k-of-r confirmation absorbed.
        resync_recovered: tags whose counter offset a resync handshake
            pinned down after this round.
        resync_unresolved: tags a resync could not account for (they
            never answered a probe — genuinely missing candidates).
        degraded: the group entered degraded mode on this round
            (retries exhausted; schedule continues without it failing
            the campaign).
        retry_errors: transient error messages, one per attempt that
            failed (the obs bus replays these as ``fleet.retry``
            events in journal order).
    """

    tick: int
    group: str
    protocol: str
    verdict: str
    frame_size: int = 0
    seed: int = 0
    mismatches: int = 0
    estimated_missing: float = 0.0
    alarmed: bool = False
    attempts: int = 1
    backoff_us: float = 0.0
    air_us: float = 0.0
    escalated_to: Optional[str] = None
    confirmed_missing: List[int] = field(default_factory=list)
    empirical_detection: Optional[float] = None
    failure: Optional[str] = None
    injected: List[str] = field(default_factory=list)
    replies_lost: int = 0
    polled_slots: int = 0
    salvaged: bool = False
    achieved_confidence: Optional[float] = None
    vote_suppressed: bool = False
    resync_recovered: int = 0
    resync_unresolved: int = 0
    degraded: bool = False
    retry_errors: List[str] = field(default_factory=list)


class FleetJournal:
    """Append-only, digestible sequence of :class:`RoundRecord`."""

    def __init__(self) -> None:
        self._records: List[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[RoundRecord]:
        return list(self._records)

    def for_group(self, group: str) -> List[RoundRecord]:
        return [r for r in self._records if r.group == group]

    def alarms(self) -> List[RoundRecord]:
        return [r for r in self._records if r.alarmed]

    def escalations(self) -> List[RoundRecord]:
        return [r for r in self._records if r.escalated_to is not None]

    def failures(self) -> List[RoundRecord]:
        return [r for r in self._records if r.failure is not None]

    def faulted(self) -> List[RoundRecord]:
        return [r for r in self._records if r.injected]

    def suppressed(self) -> List[RoundRecord]:
        return [r for r in self._records if r.vote_suppressed]

    def salvages(self) -> List[RoundRecord]:
        return [r for r in self._records if r.salvaged]

    # ------------------------------------------------------------------
    # determinism / persistence
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of every record, in order.

        Two campaigns replayed under the same seed — whatever their
        ``jobs`` setting or host speed — must produce equal digests.
        """
        payload = json.dumps(
            [asdict(r) for r in self._records], sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def dump(self, path: str) -> None:
        """Write the journal as JSON lines (one record per line)."""
        with open(path, "w") as fh:
            for record in self._records:
                fh.write(json.dumps(asdict(record), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str) -> "FleetJournal":
        """Rebuild a journal from its JSONL file.

        Raises:
            ValueError: on malformed lines.
        """
        journal = cls()
        with open(path) as fh:
            for lineno, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    journal.append(RoundRecord(**json.loads(line)))
                except (TypeError, json.JSONDecodeError) as error:
                    raise ValueError(
                        f"{path}:{lineno + 1}: bad journal line ({error})"
                    ) from error
        return journal
