"""Round scheduling: which groups get checked at each tick.

Time in a campaign is a virtual integer clock ("ticks"); each group
declares an ``interval`` (check every k ticks) and a ``priority``
(order within a tick). The scheduler is a priority heap over
``(due_tick, priority, insertion_seq)`` — deterministic by
construction: two runs that add the same groups in the same order pop
the same rounds in the same order, which is what lets the campaign
journal replay bit-for-bit under a fixed seed.

The scheduler knows nothing about protocols or channels; it only
answers "who is due now?" and "when is someone next due?". Failure
handling (retries, escalation) happens *within* a round and never
perturbs the timeline — a group that exhausts its retries simply keeps
its next slot, which keeps scheduling decisions independent of round
outcomes and therefore trivially reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["ScheduledRound", "RoundScheduler"]


@dataclass(frozen=True)
class ScheduledRound:
    """One due round, as popped from the scheduler.

    Attributes:
        tick: the tick it became due.
        group: the group to check.
        priority: the group's priority (kept for display/auditing).
    """

    tick: int
    group: str
    priority: int


class RoundScheduler:
    """Interval + priority scheduler over a virtual tick clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, str]] = []
        self._intervals: Dict[str, int] = {}
        self._priorities: Dict[str, int] = {}
        self._seq = 0

    def add_group(
        self,
        name: str,
        interval: int = 1,
        priority: int = 0,
        first_tick: int = 0,
    ) -> None:
        """Start scheduling a group.

        Args:
            name: unique group name.
            interval: ticks between rounds (>= 1).
            priority: lower runs first within a tick.
            first_tick: when the group's first round is due.

        Raises:
            ValueError: on a duplicate group or a non-positive interval.
        """
        if name in self._intervals:
            raise ValueError(f"group {name!r} already scheduled")
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if first_tick < 0:
            raise ValueError("first_tick must be >= 0")
        self._intervals[name] = interval
        self._priorities[name] = priority
        self._push(first_tick, name)

    def _push(self, tick: int, name: str) -> None:
        heapq.heappush(
            self._heap, (tick, self._priorities[name], self._seq, name)
        )
        self._seq += 1

    @property
    def groups(self) -> List[str]:
        return list(self._intervals)

    def next_due_tick(self) -> Optional[int]:
        """The earliest tick with work pending, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def due(self, tick: int) -> List[ScheduledRound]:
        """Pop every round due at or before ``tick``, priority-ordered.

        Each popped group is immediately rescheduled at
        ``tick + interval``, so the cadence is anchored to when the
        round *ran*, not when it was nominally due — a stalled campaign
        does not come back to a thundering herd of make-up rounds.

        Raises:
            ValueError: if ``tick`` is negative.
        """
        if tick < 0:
            raise ValueError("tick must be >= 0")
        popped: List[Tuple[int, int, int, str]] = []
        while self._heap and self._heap[0][0] <= tick:
            popped.append(heapq.heappop(self._heap))
        rounds = [
            ScheduledRound(tick=tick, group=name, priority=priority)
            for (_due, priority, _seq, name) in popped
        ]
        for item in rounds:
            self._push(tick + self._intervals[item.group], item.group)
        return rounds
