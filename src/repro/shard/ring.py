"""Consistent-hash ring: group id → worker, deterministic and bounded.

The gateway must answer "which worker owns group ``g``?" identically in
every process that asks — the supervisor when placing groups, the
gateway when routing a round, a test re-deriving the mapping under a
different ``--jobs`` setting. Python's builtin ``hash`` is salted per
process, so positions come from BLAKE2b over ``"{seed}|…"`` instead:
the ring is a pure function of ``(nodes, replicas, seed)``.

Classic consistent hashing (Karger et al.) with virtual nodes gives the
two properties failover leans on:

* **bounded movement** — removing a worker reassigns *only* the keys it
  owned; adding one steals only the keys that now land on its points.
  Every other group keeps its owner, so a re-shard never touches
  healthy workers' state;
* **balance** — ``replicas`` virtual points per worker keep the largest
  shard within a small factor of ``keys / workers``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

__all__ = ["HashRing"]


def _position(seed: int, data: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}|{data}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A deterministic consistent-hash ring over named workers."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        replicas: int = 64,
        seed: int = 0,
    ):
        """Args:
            nodes: initial worker names (order-insensitive).
            replicas: virtual points per worker; more points = better
                balance, linearly more memory.
            seed: hash-domain seed — rings built with different seeds
                are independent mappings.

        Raises:
            ValueError: on a non-positive replica count or a non-int
                seed (``bool`` counts as non-int here: a flag passed
                where a seed belongs is a bug worth failing on).
        """
        if isinstance(replicas, bool) or not isinstance(replicas, int):
            raise ValueError("replicas must be an int")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError("seed must be an int")
        self._replicas = replicas
        self._seed = seed
        self._nodes: set = set()
        # Sorted, parallel: point position -> owning node. Ties broken
        # by node name so the mapping is total even on hash collisions.
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current workers, sorted (deterministic iteration order)."""
        return tuple(sorted(self._nodes))

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        """Add a worker (its ``replicas`` points join the ring).

        Raises:
            ValueError: on an empty name or a duplicate.
        """
        if not node or not isinstance(node, str):
            raise ValueError("node name must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self._replicas):
            point = (_position(self._seed, f"node:{node}:{i}"), node)
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
        self._positions = [p[0] for p in self._points]

    def remove(self, node: str) -> None:
        """Remove a worker; only *its* keys change owner.

        Raises:
            ValueError: if the worker is not on the ring.
        """
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._positions = [p[0] for p in self._points]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The worker owning ``key`` (first point clockwise).

        Raises:
            LookupError: on an empty ring.
        """
        if not self._points:
            raise LookupError("ring has no nodes")
        position = _position(self._seed, f"key:{key}")
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """``worker -> [keys]`` for every current worker (maybe empty)."""
        shards: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for key in keys:
            shards[self.owner(key)].append(key)
        return shards
