"""Shard cluster configuration, validated hard at startup.

The satellite fix this module carries: every knob that could make a
worker or the gateway die *mid-campaign* — a NaN heartbeat interval, a
float port, a zero worker count — is rejected as :class:`ValueError`
at construction instead, mirroring the ``server.seeds`` guard that
refuses a non-finite UTRP timer before it can poison a challenge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ShardConfig", "ShardGroupSpec", "DEFAULT_SEED"]

#: Default master seed, matching the experiment grid's and loadgen's.
DEFAULT_SEED = 20080617


def _require_int(name: str, value, minimum: int, maximum: int = None) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an int, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")


def _require_finite(name: str, value, minimum: float, strict: bool) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and not value > minimum:
        raise ValueError(f"{name} must be > {minimum}, got {value}")
    if not strict and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


@dataclass(frozen=True)
class ShardGroupSpec:
    """Everything needed to rebuild one group *deterministically*.

    This is the unit failover moves between workers: a group restored
    from its spec via :meth:`~repro.serve.MonitoringService.
    create_group` has the same tag IDs and the same issuer RNG stream
    as the original, which is what makes snapshot replay bit-exact.
    """

    name: str
    population: int
    tolerance: int
    confidence: float = 0.9
    seed: int = 0
    counter_tags: bool = False
    comm_budget: int = 20

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("group name must be a non-empty string")
        _require_int("population", self.population, 1)
        _require_int("tolerance", self.tolerance, 0)
        _require_int("seed", self.seed, -(2**63), 2**63 - 1)
        _require_int("comm_budget", self.comm_budget, 1)
        _require_finite("confidence", self.confidence, 0.0, strict=True)
        if not self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "population": self.population,
            "tolerance": self.tolerance,
            "confidence": self.confidence,
            "seed": self.seed,
            "counter_tags": self.counter_tags,
            "comm_budget": self.comm_budget,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardGroupSpec":
        try:
            return cls(
                name=doc["name"],
                population=doc["population"],
                tolerance=doc["tolerance"],
                confidence=doc["confidence"],
                seed=doc["seed"],
                counter_tags=bool(doc["counter_tags"]),
                comm_budget=doc["comm_budget"],
            )
        except KeyError as error:
            raise ValueError(f"malformed group spec: missing {error}") from error


@dataclass(frozen=True)
class ShardConfig:
    """One cluster's shape: workers, groups, ports, patience.

    Attributes:
        workers: worker processes to spawn.
        groups: tag groups sharded across them.
        host / port: gateway listen address (port 0 = ephemeral).
        population / tolerance / confidence: per-group ``(n, m, alpha)``.
        seed: master seed; group ``i`` is built from ``seed + i`` — the
            same convention ``python -m repro serve`` and the loadgen
            use, so existing clients work against the gateway unchanged.
        counter_tags: host counter-mode groups (UTRP-capable). Defaults
            off: counter-free TRP groups are stateless, which is what
            lets a re-scanned round after failover stay bit-identical.
        group_prefix: group names are ``{prefix}-{index:03d}``.
        heartbeat_interval_s: worker heartbeat period on the control
            socket.
        start_timeout_s: how long the supervisor waits for every worker
            to report in before declaring the cluster dead on arrival.
        failover_timeout_s: ceiling on one group adoption handshake.
        upstream_timeout_s: gateway-side ceiling on waiting for a
            worker's reply to a proxied frame.
        max_round_retries: proxied-round attempts across re-shards
            before the gateway gives up with ``ERROR shard-unavailable``.
        timer_scale: forwarded to workers as ``wall_us_per_s`` (0 =
            trust reported air time — the deterministic mode).
        ring_replicas: virtual points per worker on the hash ring.
        state_dir: snapshot directory; ``None`` = private tempdir.
        restart_max_attempts: automatic worker restarts per worker
            before the supervisor declares it permanently down. 0 (the
            default) disables self-healing entirely — a killed worker
            stays dead and its groups stay failed over, the PR 6
            behaviour.
        restart_backoff_base_s / restart_backoff_cap_s: the restart
            delay for attempt ``k`` is ``min(cap, base * 2**(k-1))``
            scaled by a deterministic jitter in ``[0.5, 1.0)`` seeded
            from ``(seed, worker_id, k)`` — the whole restart timeline
            replays exactly under a fixed master seed.
        breaker_failure_threshold: consecutive upstream failures on one
            worker before the gateway's per-worker circuit breaker
            opens.
        breaker_open_s: how long an open breaker rejects attempts
            before letting one half-open probe through.
        round_deadline_s: total retry budget for one proxied round; the
            remaining budget propagates into every upstream wait, so a
            round can never spend ``max_round_retries x
            upstream_timeout_s`` wedged.
        drain_timeout_s: ceiling on waiting for a group's in-flight
            rounds to finish before a hand-back migrates it.
        frame_idle_timeout_s: mid-frame stall ceiling on the
            gateway->worker hop (the reader-side dribble guard's
            upstream twin); ``None`` disables it.
        chaos_seed: seed for the chaos drill's stochastic fault draws;
            ``None`` = reuse ``seed``.
        wire_versions: wire framings the cluster accepts, forwarded to
            every worker and to the gateway's listener. When 2 is
            listed the gateway also negotiates v2 on its upstream hops,
            so a v1 reader still traverses a binary gateway<->worker
            link; ``(1,)`` pins the whole cluster to JSON framing.

    Raises:
        ValueError: on any non-finite, non-integral or out-of-range
            knob — at construction, never mid-campaign.
    """

    workers: int = 4
    groups: int = 8
    host: str = "127.0.0.1"
    port: int = 0
    population: int = 100
    tolerance: int = 2
    confidence: float = 0.9
    seed: int = DEFAULT_SEED
    counter_tags: bool = False
    comm_budget: int = 20
    group_prefix: str = "group"
    heartbeat_interval_s: float = 0.5
    start_timeout_s: float = 20.0
    failover_timeout_s: float = 10.0
    upstream_timeout_s: float = 30.0
    max_round_retries: int = 6
    timer_scale: float = 0.0
    ring_replicas: int = 64
    state_dir: Optional[str] = None
    max_sessions: int = 256
    wire_versions: Tuple[int, ...] = (1, 2)
    restart_max_attempts: int = 0
    restart_backoff_base_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    breaker_failure_threshold: int = 3
    breaker_open_s: float = 0.25
    round_deadline_s: float = 30.0
    drain_timeout_s: float = 5.0
    frame_idle_timeout_s: Optional[float] = 10.0
    chaos_seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require_int("workers", self.workers, 1)
        _require_int("groups", self.groups, 1)
        _require_int("port", self.port, 0, 65535)
        _require_int("population", self.population, 1)
        _require_int("tolerance", self.tolerance, 0)
        _require_int("seed", self.seed, -(2**63), 2**63 - 1)
        _require_int("comm_budget", self.comm_budget, 1)
        _require_int("max_round_retries", self.max_round_retries, 1)
        _require_int("ring_replicas", self.ring_replicas, 1)
        _require_int("max_sessions", self.max_sessions, 1)
        if not self.host or not isinstance(self.host, str):
            raise ValueError("host must be a non-empty string")
        if not self.group_prefix or not isinstance(self.group_prefix, str):
            raise ValueError("group_prefix must be a non-empty string")
        _require_finite("confidence", self.confidence, 0.0, strict=True)
        if not self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        _require_finite(
            "heartbeat_interval_s", self.heartbeat_interval_s, 0.0, strict=True
        )
        _require_finite("start_timeout_s", self.start_timeout_s, 0.0, strict=True)
        _require_finite(
            "failover_timeout_s", self.failover_timeout_s, 0.0, strict=True
        )
        _require_finite(
            "upstream_timeout_s", self.upstream_timeout_s, 0.0, strict=True
        )
        _require_finite("timer_scale", self.timer_scale, 0.0, strict=False)
        _require_int("restart_max_attempts", self.restart_max_attempts, 0)
        _require_finite(
            "restart_backoff_base_s",
            self.restart_backoff_base_s,
            0.0,
            strict=True,
        )
        _require_finite(
            "restart_backoff_cap_s", self.restart_backoff_cap_s, 0.0, strict=True
        )
        if self.restart_backoff_cap_s < self.restart_backoff_base_s:
            raise ValueError(
                f"restart_backoff_cap_s must be >= restart_backoff_base_s, "
                f"got {self.restart_backoff_cap_s} < "
                f"{self.restart_backoff_base_s}"
            )
        _require_int(
            "breaker_failure_threshold", self.breaker_failure_threshold, 1
        )
        _require_finite("breaker_open_s", self.breaker_open_s, 0.0, strict=True)
        _require_finite(
            "round_deadline_s", self.round_deadline_s, 0.0, strict=True
        )
        _require_finite("drain_timeout_s", self.drain_timeout_s, 0.0, strict=True)
        if self.frame_idle_timeout_s is not None:
            _require_finite(
                "frame_idle_timeout_s",
                self.frame_idle_timeout_s,
                0.0,
                strict=True,
            )
        if self.chaos_seed is not None:
            _require_int("chaos_seed", self.chaos_seed, -(2**63), 2**63 - 1)
        versions = tuple(self.wire_versions)
        if not versions or any(
            isinstance(v, bool) or not isinstance(v, int) for v in versions
        ):
            raise ValueError(
                f"wire_versions must be a non-empty tuple of ints, "
                f"got {self.wire_versions!r}"
            )
        if 1 not in versions:
            raise ValueError("wire_versions must include 1 (the HELLO framing)")
        if set(versions) - {1, 2}:
            raise ValueError(
                f"unsupported wire versions: {sorted(set(versions) - {1, 2})}"
            )
        object.__setattr__(self, "wire_versions", versions)

    # ------------------------------------------------------------------
    # derived shapes
    # ------------------------------------------------------------------

    def group_name(self, index: int) -> str:
        return f"{self.group_prefix}-{index:03d}"

    def group_specs(self) -> Tuple[ShardGroupSpec, ...]:
        """The cluster's groups, in index order.

        Group ``i`` derives from ``seed + i`` exactly as a plain
        ``MonitoringService`` deployment would, so any reader that can
        rebuild populations for ``python -m repro serve`` can rebuild
        them for the gateway too.
        """
        return tuple(
            ShardGroupSpec(
                name=self.group_name(i),
                population=self.population,
                tolerance=self.tolerance,
                confidence=self.confidence,
                seed=self.seed + i,
                counter_tags=self.counter_tags,
                comm_budget=self.comm_budget,
            )
            for i in range(self.groups)
        )

    def worker_ids(self) -> Tuple[str, ...]:
        return tuple(f"w{i:02d}" for i in range(self.workers))
