"""Worker processes and their supervisor.

One worker is one ordinary :class:`~repro.serve.MonitoringService` in
its own OS process, hosting a disjoint shard of the cluster's groups —
sharding multiplies the single-process server instead of replacing it,
so every serve-layer property (strict alternation, deadline verdicts,
backpressure) holds per worker unchanged.

What the shard layer adds per worker:

* **durability** — :class:`ShardWorkerService` overrides
  ``observe_verdict`` to write the group's failover snapshot *before*
  the VERDICT frame is flushed. A worker can therefore be SIGKILLed at
  any instant without losing a verified round: either the verdict
  reached the reader, or it is in the snapshot a survivor restores.
* **a control link** — each worker dials the supervisor's control
  socket at startup (newline-delimited JSON), reports its serve port,
  then heartbeats. Supervisor → worker commands: ``adopt`` (restore a
  snapshotted group) and ``shutdown``.

The supervisor owns placement: a :class:`~repro.shard.ring.HashRing`
maps groups onto workers, and on worker death the survivors adopt the
orphaned groups ring-deterministically (:meth:`WorkerSupervisor.
ensure_failover`), so the gateway, the supervisor and any test agree
on where every group lives after any membership change.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import signal
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..faults.inject import DiskFaultInjector
from ..faults.plan import FaultPlan
from ..obs import ObsContext
from ..obs.agg import merge_snapshots, snapshot_registry
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..serve.server import MonitoringService
from ..serve.session import SessionConfig
from .config import ShardConfig, ShardGroupSpec, _require_finite, _require_int
from .failover import (
    initial_snapshot,
    load_snapshot,
    reconcile_snapshots,
    restore_group,
    snapshot_doc,
    snapshot_path,
    write_snapshot,
)
from .ring import HashRing

__all__ = [
    "ShardWorkerService",
    "WorkerSpec",
    "WorkerSupervisor",
    "restart_backoff_s",
    "worker_spans_path",
]


def restart_backoff_s(
    master_seed: int,
    worker_id: str,
    attempt: int,
    base_s: float,
    cap_s: float,
) -> float:
    """The delay before restart ``attempt`` of one worker — pure.

    Exponential backoff with deterministic jitter:
    ``min(cap, base * 2**(attempt-1))`` scaled by a factor in
    ``[0.5, 1.0)`` derived from ``blake2b(seed|worker|attempt)``. A
    pure function of its arguments, so a chaos drill's whole restart
    timeline replays exactly under a fixed master seed, while distinct
    workers (and distinct attempts) still de-synchronise their
    respawns the way jitter is meant to.

    Raises:
        ValueError: on a non-positive attempt number.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    raw = min(float(cap_s), float(base_s) * (2.0 ** (attempt - 1)))
    digest = hashlib.blake2b(
        f"{master_seed}|{worker_id}|{attempt}".encode(), digest_size=8
    ).digest()
    jitter = 0.5 + (int.from_bytes(digest, "big") / 2.0**64) * 0.5
    return raw * jitter


def worker_spans_path(state_dir: str, worker_id: str) -> str:
    """Where one worker appends its span JSONL."""
    return os.path.join(state_dir, f"spans-{worker_id}.jsonl")


# ----------------------------------------------------------------------
# the worker-side service
# ----------------------------------------------------------------------


class ShardWorkerService(MonitoringService):
    """A monitoring service that snapshots every verdict to disk.

    The snapshot write sits in :meth:`observe_verdict`, which the
    session state machine calls *before* flushing the VERDICT frame —
    the ordering the zero-verdict-loss drill depends on.

    Known limitation (documented in ``docs/SHARDING.md``): a round that
    aborts between CHALLENGE and VERDICT (malformed proof, evicted
    session) consumed issuer randomness that is not in the replay
    history; a restore after such a round re-issues that challenge.
    Verdicts are unaffected — only the never-reuse property weakens to
    "never reused across *verified* rounds" across a failover.
    """

    def __init__(
        self,
        state_dir: str,
        worker_id: str = "",
        generation: int = 0,
        disk_faults: Optional[DiskFaultInjector] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.state_dir = state_dir
        self.worker_id = worker_id
        self.generation = int(generation)
        #: Metrics identity. Each *incarnation* of a restarted worker
        #: publishes under its own source (``w01``, ``w01+r1``, ...):
        #: a fresh process restarts its registry and its ``seq`` at
        #: zero, and under max-seq merge a reborn ``w01`` would lose to
        #: its own predecessor forever — distinct sources make the two
        #: registries *add* in the cluster merge instead, which is what
        #: keeps the /metrics scrape exact across restarts.
        self.metrics_source = (
            worker_id if not generation else f"{worker_id}+r{generation}"
        )
        self._disk_faults = disk_faults
        self._write_counts: Dict[str, int] = {}
        #: Injected snapshot-write faults suffered, by mode.
        self.snapshot_fault_counts: Dict[str, int] = {}
        self._stall_until = 0.0
        self.stalled_refusals = 0
        self._specs: Dict[str, ShardGroupSpec] = {}
        self._history: Dict[str, List[str]] = {}
        self._last_verdict: Dict[str, Optional[dict]] = {}
        self._metrics_seq = 0
        #: Predecessors' registry snapshots, harvested from adopted
        #: group snapshots and re-embedded in every snapshot this
        #: worker writes — so a failover chain never sheds the counts
        #: of a worker that is no longer around to heartbeat.
        self._inherited_metrics: Dict[str, dict] = {}

    def metrics_snapshot(self) -> Optional[dict]:
        """This worker's registry as a snapshot doc (seq increments).

        ``None`` without an obs context. The ``seq`` is monotonic over
        the worker's life, so any receiver holding several snapshots of
        this worker keeps the freshest by comparing ``seq`` — never by
        summing them.
        """
        if self.obs is None:
            return None
        self._metrics_seq += 1
        return snapshot_registry(
            self.obs.registry, seq=self._metrics_seq, source=self.metrics_source
        )

    def host_spec(self, spec: ShardGroupSpec):
        """Host a fresh group from its deterministic spec."""
        group = self.create_group(
            spec.name,
            spec.population,
            spec.tolerance,
            spec.confidence,
            seed=spec.seed,
            counter_tags=spec.counter_tags,
            comm_budget=spec.comm_budget,
        )
        self._specs[spec.name] = spec
        self._history[spec.name] = []
        self._last_verdict[spec.name] = None
        # First boot only: never clobber a predecessor's snapshot (the
        # supervisor restores from disk when re-placing a group).
        if not os.path.exists(snapshot_path(self.state_dir, spec.name)):
            write_snapshot(self.state_dir, initial_snapshot(spec))
        return group

    def adopt(self, doc: dict) -> Tuple[int, Optional[dict]]:
        """Restore a snapshotted group onto this worker.

        Returns ``(rounds_verified, last_verdict)`` so the supervisor
        can tell the gateway how far the group had progressed.

        Raises:
            ValueError: on a malformed or mismatched snapshot.
        """
        spec, rounds_verified, last_verdict = restore_group(self, doc)
        self._specs[spec.name] = spec
        self._history[spec.name] = list(doc["protocol_history"])
        self._last_verdict[spec.name] = last_verdict
        # Keep the dead owner's embedded registry (and anything *it*
        # inherited): its verdicts stay counted after the file below
        # overwrites the snapshot they arrived in. Prior incarnations
        # of *this* worker are predecessors too — only the current
        # incarnation's own source is excluded.
        for source, mdoc in (doc.get("metrics") or {}).items():
            if source == self.metrics_source:
                continue
            held = self._inherited_metrics.get(source)
            if held is None or int(mdoc.get("seq", 0)) >= int(held.get("seq", 0)):
                self._inherited_metrics[source] = mdoc
        self._write_group_snapshot(spec.name)
        return rounds_verified, last_verdict

    def handback(self, doc: dict) -> Tuple[int, Optional[dict]]:
        """Take back a group this worker's predecessor owned.

        Mechanically :meth:`adopt` — the same deterministic
        rebuild-and-replay restore — under the name the hand-back
        protocol uses, so the control-channel traffic reads as what it
        is: anti-entropy returning a group to its ring home.

        Raises:
            ValueError: on a malformed or mismatched snapshot.
        """
        return self.adopt(doc)

    async def release_group(self, name: str) -> dict:
        """Stop hosting ``name``; returns its final snapshot document.

        The releasing half of a hand-back. Taking the group's round
        lock first means no round is mid-flight when the final
        snapshot is cut, so the document carries every verdict this
        worker ever verified for the group. The final write bypasses
        fault injection: a hand-back is a deliberate migration, not a
        crash, and its document must be trustworthy.

        Raises:
            ValueError: when the group is not hosted here.
        """
        group = self.groups.get(name)
        if group is None or name not in self._specs:
            raise ValueError(f"group {name!r} is not hosted on this worker")
        async with group.lock:
            doc = self._snapshot(name)
            write_snapshot(self.state_dir, doc)
            self.groups.pop(name, None)
            self._specs.pop(name, None)
            self._history.pop(name, None)
            self._last_verdict.pop(name, None)
            self._write_counts.pop(name, None)
        return doc

    def stall(self, seconds: float) -> None:
        """Refuse *new* sessions for ``seconds`` (chaos drills only).

        Existing connections and in-flight rounds are untouched — on
        purpose. A live worker that re-received a RESEED would advance
        its issuer RNG off the deterministic script, so the stall
        models the one upstream failure that is bit-safe: connects
        that die before the worker reads a single frame. The gateway
        experiences connect-then-EOF, trips its circuit breaker, and
        retries the round against the same challenge after recovery.
        """
        self._stall_until = time.monotonic() + max(0.0, float(seconds))

    async def _accept(self, reader, writer) -> None:
        if time.monotonic() < self._stall_until:
            self.stalled_refusals += 1
            writer.close()
            return
        await super()._accept(reader, writer)

    def _write_group_snapshot(self, name: str) -> None:
        """Persist one group, suffering any planned disk fault.

        Write indexes count per group, so a plan's ``at_tick`` pins
        "the n-th persisted snapshot of group g" deterministically.
        Every failed write — ``enospc``, ``fsync-fail``, and torn /
        short writes caught by :func:`write_snapshot`'s read-back
        verification — is retried once on the honest path: the
        zero-verdict-loss ordering (snapshot durable *before* the
        VERDICT frame flushes) must survive a lying disk. Surviving
        *reads* of corpses corrupted behind the writer's back is
        ``load_snapshot``'s job.
        """
        doc = self._snapshot(name)
        index = self._write_counts.get(name, 0)
        self._write_counts[name] = index + 1
        fault = (
            self._disk_faults.fault_for(name, index)
            if self._disk_faults is not None
            else None
        )
        if fault is None:
            write_snapshot(self.state_dir, doc)
            return
        self.snapshot_fault_counts[fault] = (
            self.snapshot_fault_counts.get(fault, 0) + 1
        )
        if self.obs is not None:
            self.obs.registry.counter(
                "shard_snapshot_faults_total",
                "injected snapshot-write faults suffered",
                labelnames=("mode",),
            ).labels(mode=fault).inc()
        try:
            write_snapshot(self.state_dir, doc, fault=fault)
        except OSError:
            if self.obs is not None:
                self.obs.registry.counter(
                    "shard_snapshot_write_errors_total",
                    "snapshot writes that raised and were retried",
                ).inc()
            write_snapshot(self.state_dir, doc)

    def _snapshot(self, name: str) -> dict:
        group = self.groups[name]
        metrics = dict(self._inherited_metrics)
        own = self.metrics_snapshot()
        if own is not None:
            metrics[self.metrics_source] = own
        return snapshot_doc(
            self._specs[name],
            group.monitor,
            protocol_history=self._history[name],
            last_verdict=self._last_verdict[name],
            resync=getattr(group, "pending_resync", None),
            metrics=metrics or None,
        )

    def observe_verdict(self, group, proto, result, timed_out=False, **kwargs) -> None:
        # Registry first: the snapshot written below embeds a registry
        # copy that must already count this verdict.
        super().observe_verdict(group, proto, result, timed_out=timed_out, **kwargs)
        name = group.name
        if name not in self._specs:
            return
        history = self._history[name]
        history.append(proto)
        self._last_verdict[name] = {
            "group": name,
            "round": len(history) - 1,
            "verdict": result.verdict.value,
            "frame_size": int(result.frame_size),
            "mismatched_slots": len(result.mismatched_slots),
            "elapsed_us": float(result.elapsed),
            "alarm": bool(result.verdict.alarm),
        }
        # One atomic write (tmp + rename) carries the verdict state AND
        # the metrics registry. Two separate files would leave a window
        # — SIGKILL between them lets the gateway serve this verdict
        # from the snapshot while no persisted registry counts it (or
        # vice versa), and the /metrics scrape stops being exact.
        self._write_group_snapshot(name)

    def apply_membership(
        self, group_name, op, tag_ids, replacement_ids=None
    ) -> int:
        # Same durability ordering as verdicts: the delta is applied
        # and snapshotted before the MEMBERSHIP ack flushes, so a
        # SIGKILL can never acknowledge a churn that a survivor's
        # restore would then silently undo.
        epoch = super().apply_membership(
            group_name, op, tag_ids, replacement_ids=replacement_ids
        )
        if group_name in self._specs:
            self._write_group_snapshot(group_name)
        return epoch

    @property
    def verdicts_persisted(self) -> int:
        return sum(len(h) for h in self._history.values())


# ----------------------------------------------------------------------
# worker process plumbing
# ----------------------------------------------------------------------


class WorkerSpec:
    """Everything one worker process needs, picklable via ``to_dict``.

    Raises:
        ValueError: at construction on invalid ports, intervals or
            scales — the startup-time guard the shard layer promises
            (a worker must never die mid-campaign on a config value it
            could have rejected before serving a single frame).
    """

    def __init__(
        self,
        worker_id: str,
        control_host: str,
        control_port: int,
        state_dir: str,
        groups: Tuple[ShardGroupSpec, ...],
        heartbeat_interval_s: float = 0.5,
        timer_scale: float = 0.0,
        max_sessions: int = 256,
        wire_versions: Tuple[int, ...] = (1, 2),
        generation: int = 0,
        fault_plan: Optional[dict] = None,
        fault_seed: int = 0,
    ):
        if not worker_id or not isinstance(worker_id, str):
            raise ValueError("worker_id must be a non-empty string")
        if not control_host or not isinstance(control_host, str):
            raise ValueError("control_host must be a non-empty string")
        _require_int("control_port", control_port, 1, 65535)
        _require_int("max_sessions", max_sessions, 1)
        _require_int("generation", generation, 0)
        _require_int("fault_seed", fault_seed, -(2**63), 2**63 - 1)
        _require_finite(
            "heartbeat_interval_s", heartbeat_interval_s, 0.0, strict=True
        )
        _require_finite("timer_scale", timer_scale, 0.0, strict=False)
        if fault_plan is not None and not isinstance(fault_plan, dict):
            raise ValueError(
                f"fault_plan must be a plan document or None, "
                f"got {fault_plan!r}"
            )
        wire_versions = tuple(wire_versions)
        if 1 not in wire_versions or set(wire_versions) - {1, 2}:
            raise ValueError(
                f"wire_versions must include 1 and only known versions, "
                f"got {wire_versions!r}"
            )
        self.worker_id = worker_id
        self.control_host = control_host
        self.control_port = control_port
        self.state_dir = state_dir
        self.groups = tuple(groups)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.timer_scale = timer_scale
        self.max_sessions = max_sessions
        self.wire_versions = wire_versions
        self.generation = generation
        self.fault_plan = fault_plan
        self.fault_seed = fault_seed

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "control_host": self.control_host,
            "control_port": self.control_port,
            "state_dir": self.state_dir,
            "groups": [g.to_dict() for g in self.groups],
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "timer_scale": self.timer_scale,
            "max_sessions": self.max_sessions,
            "wire_versions": list(self.wire_versions),
            "generation": self.generation,
            "fault_plan": self.fault_plan,
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkerSpec":
        return cls(
            worker_id=doc["worker_id"],
            control_host=doc["control_host"],
            control_port=doc["control_port"],
            state_dir=doc["state_dir"],
            groups=tuple(
                ShardGroupSpec.from_dict(g) for g in doc["groups"]
            ),
            heartbeat_interval_s=doc["heartbeat_interval_s"],
            timer_scale=doc["timer_scale"],
            max_sessions=doc["max_sessions"],
            wire_versions=tuple(doc.get("wire_versions", (1, 2))),
            generation=doc.get("generation", 0),
            fault_plan=doc.get("fault_plan"),
            fault_seed=doc.get("fault_seed", 0),
        )


def _send_line(writer: asyncio.StreamWriter, obj: dict) -> None:
    writer.write(json.dumps(obj).encode("utf-8") + b"\n")


async def _heartbeat_loop(
    service: ShardWorkerService,
    spec: WorkerSpec,
    writer: asyncio.StreamWriter,
) -> None:
    while True:
        await asyncio.sleep(spec.heartbeat_interval_s)
        try:
            # Metrics piggyback on the heartbeat: the supervisor's live
            # view of the cluster registry rides the control channel it
            # already trusts for liveness. The registry copy embedded in
            # each group snapshot covers the window between the last
            # heartbeat and a kill.
            _send_line(
                writer,
                {
                    "type": "hb",
                    "worker": spec.worker_id,
                    "sessions": service.active_sessions,
                    "verdicts": service.verdicts_persisted,
                    "metrics": service.metrics_snapshot(),
                },
            )
            await writer.drain()
        except (ConnectionError, OSError):
            return


async def _worker_main(spec: WorkerSpec) -> None:
    # Every worker is born observable: its own registry (snapshotted to
    # the supervisor and to disk) and its own span file. The tracer's
    # process label carries the worker identity so the span-tree digest
    # — which excludes it — stays invariant across worker counts.
    obs = ObsContext()
    tracer = Tracer(
        f"worker:{spec.worker_id}",
        path=worker_spans_path(spec.state_dir, spec.worker_id),
    )
    disk_faults = None
    if spec.fault_plan:
        disk_faults = DiskFaultInjector(
            FaultPlan.from_dict(spec.fault_plan), spec.fault_seed
        )
    service = ShardWorkerService(
        spec.state_dir,
        worker_id=spec.worker_id,
        generation=spec.generation,
        disk_faults=disk_faults,
        session_config=SessionConfig(wall_us_per_s=spec.timer_scale),
        max_sessions=spec.max_sessions,
        obs=obs,
        tracer=tracer,
        wire_versions=spec.wire_versions,
    )
    for group in spec.groups:
        service.host_spec(group)
    await service.start("127.0.0.1", 0)

    reader = writer = None
    deadline = time.monotonic() + 10.0
    while True:
        try:
            reader, writer = await asyncio.open_connection(
                spec.control_host, spec.control_port
            )
            break
        except OSError:
            if time.monotonic() > deadline:
                await service.close()
                return
            await asyncio.sleep(0.05)

    _send_line(
        writer,
        {
            "type": "hello",
            "worker": spec.worker_id,
            "pid": os.getpid(),
            "port": service.port,
            "groups": [g.name for g in spec.groups],
        },
    )
    await writer.drain()
    heartbeat = asyncio.ensure_future(_heartbeat_loop(service, spec, writer))
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            command = json.loads(line)
            kind = command.get("type")
            if kind == "adopt":
                snapshot = command.get("snapshot") or {}
                try:
                    rounds_verified, last_verdict = service.adopt(snapshot)
                    reply = {
                        "type": "adopted",
                        "group": snapshot.get("group"),
                        "rounds_verified": rounds_verified,
                        "last_verdict": last_verdict,
                    }
                except (ValueError, KeyError) as error:
                    reply = {
                        "type": "adopt-failed",
                        "group": snapshot.get("group"),
                        "error": str(error),
                    }
                reply["req"] = command.get("req")
                _send_line(writer, reply)
                await writer.drain()
            elif kind == "handback":
                snapshot = command.get("snapshot") or {}
                try:
                    rounds_verified, last_verdict = service.handback(snapshot)
                    reply = {
                        "type": "handed-back",
                        "group": snapshot.get("group"),
                        "rounds_verified": rounds_verified,
                        "last_verdict": last_verdict,
                    }
                except (ValueError, KeyError) as error:
                    reply = {
                        "type": "handback-failed",
                        "group": snapshot.get("group"),
                        "error": str(error),
                    }
                reply["req"] = command.get("req")
                _send_line(writer, reply)
                await writer.drain()
            elif kind == "release":
                name = command.get("group")
                try:
                    doc = await service.release_group(name)
                    reply = {
                        "type": "released",
                        "group": name,
                        "snapshot": doc,
                    }
                except (ValueError, KeyError) as error:
                    reply = {
                        "type": "release-failed",
                        "group": name,
                        "error": str(error),
                    }
                reply["req"] = command.get("req")
                _send_line(writer, reply)
                await writer.drain()
            elif kind == "stall":
                service.stall(float(command.get("seconds", 0.0)))
            elif kind == "shutdown":
                break
    except (ConnectionError, OSError):
        pass
    finally:
        heartbeat.cancel()
        await asyncio.gather(heartbeat, return_exceptions=True)
        await service.close()
        writer.close()


def _worker_entry(spec_dict: dict) -> None:
    """Child-process entry point (top-level: must pickle under spawn)."""
    try:
        # Forked from inside a running event loop: the child inherits
        # the parent's "a loop is running" marker and asyncio.run would
        # refuse to start. Clear it — this process has no loop yet.
        asyncio.events._set_running_loop(None)
    except Exception:
        pass
    spec = WorkerSpec.from_dict(spec_dict)
    asyncio.run(_worker_main(spec))


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------


class _WorkerHandle:
    def __init__(self, worker_id: str, process):
        self.worker_id = worker_id
        self.process = process
        self.port: Optional[int] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.alive = False
        self.ready = asyncio.Event()
        self.sessions = 0
        self.verdicts = 0
        #: Latest heartbeat-borne metrics snapshot (survives death —
        #: a dead worker's last-known state still merges).
        self.metrics: Optional[dict] = None
        self.last_heartbeat: float = 0.0
        #: Completed automatic restarts of this worker slot.
        self.restarts = 0
        #: Incarnation number of the *current* process (0 = original);
        #: feeds the worker's distinct per-incarnation metrics source.
        self.generation = 0
        #: Set when the restart budget is exhausted: the slot stays
        #: dead, its groups stay failed over, and /healthz keeps
        #: reporting it down.
        self.permanently_down = False
        #: Heartbeat snapshots of dead incarnations, kept so their
        #: sources still merge into the cluster registry.
        self.prior_metrics: List[dict] = []

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def is_running(self) -> bool:
        return self.alive and self.process.is_alive()


class WorkerSupervisor:
    """Spawns, watches, and re-shards the worker fleet.

    Failover is **ring-driven and single-flight**: the first signal
    that a worker is gone (control-socket EOF or a gateway-side
    transport failure) starts one failover task; every later caller
    awaits that same task. The task removes the dead worker from the
    ring, loads each orphaned group's snapshot and asks the group's new
    ring owner to adopt it — so after any kill sequence every survivor
    agrees on placement without coordination.
    """

    def __init__(
        self,
        config: ShardConfig,
        state_dir: str,
        group_specs: Optional[Tuple[ShardGroupSpec, ...]] = None,
        obs=None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.config = config
        self.state_dir = state_dir
        self.obs = obs
        #: Forwarded to every worker (original and restarted alike) so
        #: the disk-fault injector torments the same snapshot writes no
        #: matter which incarnation performs them.
        self.fault_plan = fault_plan
        self.fault_seed = (
            config.chaos_seed if config.chaos_seed is not None else config.seed
        )
        specs = group_specs if group_specs is not None else config.group_specs()
        self._specs: Dict[str, ShardGroupSpec] = {g.name: g for g in specs}
        self.ring = HashRing(
            config.worker_ids(), replicas=config.ring_replicas, seed=config.seed
        )
        self.owners: Dict[str, str] = {
            name: self.ring.owner(name) for name in self._specs
        }
        #: group -> {"rounds_verified", "last_verdict"} for groups that
        #: changed owner; the gateway consults this to finish a round
        #: whose verdict died with the previous owner.
        self.adoptions: Dict[str, dict] = {}
        self.handles: Dict[str, _WorkerHandle] = {}
        self.reshards = 0
        self.failovers = 0
        self.restarts = 0
        self.handbacks = 0
        self.snapshot_corrupt = 0
        self.failover_latencies: List[float] = []
        self._failover_tasks: Dict[str, asyncio.Task] = {}
        self._restart_tasks: Dict[str, asyncio.Task] = {}
        self._adopt_waiters: Dict[Tuple[str, int], asyncio.Future] = {}
        self._req_seq = 0
        #: Serialises ownership mutations: a failover and a rejoin
        #: hand-back racing on the same groups would double-assign.
        self._migration_lock = asyncio.Lock()
        #: group -> gate event while a hand-back migrates it; the
        #: gateway's round_gate blocks here so no round races the move.
        self._migrations: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, int] = {}
        #: Called with the worker id after every completed rejoin (the
        #: gateway resets that worker's circuit breaker here).
        self.rejoin_listeners: List[Callable[[str], None]] = []
        self._control: Optional[asyncio.base_events.Server] = None
        self._control_port: Optional[int] = None
        self._closing = False
        # Register the whole metric family up front so a snapshot taken
        # before the first heartbeat (or a campaign with no failover)
        # still exposes every shard_* series at zero.
        if self.obs is not None:
            self._gauge("shard_workers", 0)
            for worker_id in config.worker_ids():
                self._gauge("shard_worker_sessions", 0, worker=worker_id)
            self._count("shard_reshards_total", 0)
            self._count("shard_failovers_total", 0)
            self._count("shard_worker_restarts_total", 0)
            self._count("shard_handbacks_total", 0)
            self._count("shard_snapshot_corrupt_total", 0)
            self.obs.registry.histogram(
                "shard_failover_seconds",
                "failover latency: worker-death signal to last group adopted",
            )

    # -- observability -------------------------------------------------

    def _gauge(self, name: str, value: float, **labels) -> None:
        if self.obs is None:
            return
        gauge = self.obs.registry.gauge(
            name, name.replace("_", " "),
            labelnames=tuple(sorted(labels)) if labels else (),
        )
        (gauge.labels(**labels) if labels else gauge).set(value)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.obs is None:
            return
        self.obs.registry.counter(name, name.replace("_", " ")).inc(amount)

    def _observe_latency(self, seconds: float) -> None:
        if self.obs is None:
            return
        self.obs.registry.histogram(
            "shard_failover_seconds",
            "failover latency: worker-death signal to last group adopted",
        ).observe(seconds)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker and wait until all have reported in.

        Raises:
            RuntimeError: when a worker fails to report within
                ``start_timeout_s`` (the cluster is torn down first).
        """
        self._control = await asyncio.start_server(
            self._on_control, host="127.0.0.1", port=0
        )
        self._control_port = self._control.sockets[0].getsockname()[1]
        shards = self.ring.assignments(sorted(self._specs))
        for worker_id in self.ring.nodes:
            spec = self._worker_spec(
                worker_id,
                groups=tuple(
                    self._specs[name] for name in shards.get(worker_id, [])
                ),
            )
            self.handles[worker_id] = _WorkerHandle(
                worker_id, self._spawn(spec)
            )
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(h.ready.wait() for h in self.handles.values())
                ),
                timeout=self.config.start_timeout_s,
            )
        except asyncio.TimeoutError:
            missing = sorted(
                h.worker_id for h in self.handles.values() if not h.ready.is_set()
            )
            await self.close()
            raise RuntimeError(
                f"workers failed to start within "
                f"{self.config.start_timeout_s}s: {missing}"
            )
        self._gauge("shard_workers", self.live_workers)

    def _worker_spec(
        self,
        worker_id: str,
        groups: Tuple[ShardGroupSpec, ...] = (),
        generation: int = 0,
    ) -> WorkerSpec:
        return WorkerSpec(
            worker_id=worker_id,
            control_host="127.0.0.1",
            control_port=self._control_port,
            state_dir=self.state_dir,
            groups=groups,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            timer_scale=self.config.timer_scale,
            max_sessions=self.config.max_sessions,
            wire_versions=self.config.wire_versions,
            generation=generation,
            fault_plan=(
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
            fault_seed=self.fault_seed,
        )

    @staticmethod
    def _spawn(spec: WorkerSpec):
        context = multiprocessing.get_context()
        process = context.Process(
            target=_worker_entry,
            args=(spec.to_dict(),),
            daemon=True,
            name=f"repro-shard-{spec.worker_id}",
        )
        process.start()
        return process

    @property
    def live_workers(self) -> int:
        return sum(1 for h in self.handles.values() if h.is_running())

    async def _on_control(self, reader, writer) -> None:
        try:
            line = await reader.readline()
            if not line:
                writer.close()
                return
            hello = json.loads(line)
            handle = self.handles.get(hello.get("worker"))
            if handle is None or hello.get("type") != "hello":
                writer.close()
                return
            handle.port = int(hello["port"])
            handle.writer = writer
            handle.alive = True
            handle.ready.set()
            self._gauge("shard_workers", self.live_workers)
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = json.loads(line)
                kind = message.get("type")
                if kind == "hb":
                    handle.sessions = int(message.get("sessions", 0))
                    handle.verdicts = int(message.get("verdicts", 0))
                    if message.get("metrics") is not None:
                        handle.metrics = message["metrics"]
                    handle.last_heartbeat = time.monotonic()
                    self._gauge(
                        "shard_worker_sessions",
                        handle.sessions,
                        worker=handle.worker_id,
                    )
                elif kind in (
                    "adopted",
                    "adopt-failed",
                    "released",
                    "release-failed",
                    "handed-back",
                    "handback-failed",
                ):
                    waiter = self._adopt_waiters.get(
                        (handle.worker_id, message.get("req"))
                    )
                    if waiter is not None and not waiter.done():
                        waiter.set_result(message)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            handle = next(
                (h for h in self.handles.values() if h.writer is writer), None
            )
            if handle is not None:
                handle.alive = False
                self._gauge("shard_workers", self.live_workers)
                if not self._closing:
                    self.ensure_failover(handle.worker_id)

    # -- cluster observability -----------------------------------------

    def worker_metric_snapshots(self) -> List[dict]:
        """The freshest registry snapshot per source worker.

        Candidates per source come from two channels — the last
        heartbeat (live, but up to one interval stale) and the copies
        embedded in the group snapshots on disk (exact, written in the
        same atomic rename as the verdict they count, so they survive
        SIGKILL) — and the highest ``seq`` wins. Candidates of one
        source are never summed; two snapshots of the same registry are
        states, not increments, and the cumulative one with the larger
        ``seq`` subsumes the other.
        """
        best: Dict[str, dict] = {}

        def consider(doc) -> None:
            if not isinstance(doc, dict):
                return
            source = str(doc.get("source") or "")
            if not source:
                return
            held = best.get(source)
            if held is None or int(doc.get("seq", 0)) >= int(held.get("seq", 0)):
                best[source] = doc

        for worker_id in sorted(self.handles):
            handle = self.handles[worker_id]
            consider(handle.metrics)
            # Dead incarnations of a restarted worker publish under
            # their own sources; their last heartbeats still count.
            for doc in handle.prior_metrics:
                consider(doc)
        for name in self._specs:
            try:
                with open(snapshot_path(self.state_dir, name)) as fh:
                    embedded = json.load(fh).get("metrics") or {}
            except (OSError, ValueError):
                continue
            for doc in embedded.values():
                consider(doc)
        return [best[source] for source in sorted(best)]

    def cluster_registry(self) -> MetricsRegistry:
        """One merged registry: every worker's metrics + the shard ones.

        The merge is the deterministic fold from
        :func:`repro.obs.agg.merge_snapshots`; the gateway's
        ``/metrics`` endpoint renders exactly this.
        """
        merged = MetricsRegistry()
        if self.obs is not None:
            merge_snapshots([snapshot_registry(self.obs.registry)], into=merged)
        merge_snapshots(self.worker_metric_snapshots(), into=merged)
        return merged

    def health(self) -> Dict[str, dict]:
        """Per-worker liveness, as the ``/healthz`` endpoint reports it."""
        now = time.monotonic()
        out: Dict[str, dict] = {}
        for worker_id in sorted(self.handles):
            handle = self.handles[worker_id]
            out[worker_id] = {
                "alive": handle.is_running(),
                "pid": handle.pid,
                "port": handle.port,
                "sessions": handle.sessions,
                "verdicts": handle.verdicts,
                "groups": sorted(
                    name
                    for name, owner in self.owners.items()
                    if owner == worker_id
                ),
                "heartbeat_age_s": (
                    round(now - handle.last_heartbeat, 3)
                    if handle.last_heartbeat
                    else None
                ),
                "restarts": handle.restarts,
                "permanently_down": handle.permanently_down,
            }
        return out

    # -- routing and failover ------------------------------------------

    async def round_gate(self, group: str) -> None:
        """Admit one proxied round, waiting out any live migration.

        A hand-back must never race a round: the gateway calls this at
        round entry, blocking while the group is mid-migration, then
        registers the round as in flight so the migration's drain step
        can in turn wait for *it*.
        """
        while True:
            gate = self._migrations.get(group)
            if gate is None:
                break
            await gate.wait()
        self._inflight[group] = self._inflight.get(group, 0) + 1

    def round_done(self, group: str) -> None:
        """The matching exit for :meth:`round_gate` (finally-safe)."""
        count = self._inflight.get(group, 0) - 1
        if count <= 0:
            self._inflight.pop(group, None)
        else:
            self._inflight[group] = count

    def _on_corrupt_snapshot(self, group: str, error: Exception) -> None:
        self.snapshot_corrupt += 1
        self._count("shard_snapshot_corrupt_total")

    async def worker_for(self, group: str) -> _WorkerHandle:
        """The live handle owning ``group``, failing over as needed.

        Unknown groups route by raw ring position: the worker answers
        with the protocol's own ``unknown-group`` ERROR, exactly like a
        single-process service would.

        Raises:
            RuntimeError: when no live owner can be produced.
        """
        for _ in range(len(self.handles) + 2):
            if self._closing:
                raise RuntimeError("supervisor is shutting down")
            worker_id = self.owners.get(group)
            if worker_id is None:
                worker_id = self.ring.owner(group)
            handle = self.handles[worker_id]
            if handle.is_running():
                return handle
            await self.ensure_failover(worker_id)
        raise RuntimeError(f"no live worker available for group {group!r}")

    async def worker_failed(self, worker_id: str) -> bool:
        """Gateway signal: a connection to ``worker_id`` broke.

        Returns True when the worker is actually gone (failover ran);
        False for a transient transport error on a live worker.
        """
        handle = self.handles[worker_id]
        if handle.is_running():
            return False
        await self.ensure_failover(worker_id)
        return True

    def ensure_failover(self, worker_id: str) -> asyncio.Task:
        """Single-flight failover for one dead worker."""
        task = self._failover_tasks.get(worker_id)
        if task is None:
            task = asyncio.ensure_future(self._failover(worker_id))

            def _observe(t: asyncio.Task, wid: str = worker_id) -> None:
                # Observe the exception even if no caller ever awaits —
                # and un-latch a *failed* failover so the next trouble
                # report retries it once workers are back.
                if t.cancelled():
                    return
                if t.exception() is not None:
                    if self._failover_tasks.get(wid) is t:
                        self._failover_tasks.pop(wid, None)

            task.add_done_callback(_observe)
            self._failover_tasks[worker_id] = task
        return task

    async def _failover(self, worker_id: str) -> None:
        started = time.perf_counter()
        handle = self.handles[worker_id]
        handle.alive = False
        if handle.writer is not None:
            handle.writer.close()
        async with self._migration_lock:
            if worker_id in self.ring:
                self.ring.remove(worker_id)
            orphans = sorted(
                name
                for name, owner in self.owners.items()
                if owner == worker_id
            )
            moved = 0
            for name in orphans:
                doc = load_snapshot(
                    self.state_dir, name, on_corrupt=self._on_corrupt_snapshot
                )
                if doc is None:
                    doc = initial_snapshot(self._specs[name])
                while True:
                    if not len(self.ring):
                        raise RuntimeError(
                            "no surviving workers to adopt orphaned groups"
                        )
                    target = self.ring.owner(name)
                    target_handle = self.handles[target]
                    if not target_handle.is_running():
                        # Don't await the dependent failover while
                        # holding the migration lock (it needs the same
                        # lock). Drop the dead target from the ring now
                        # and let its own queued failover re-home
                        # whatever this loop already assigned to it.
                        if target in self.ring:
                            self.ring.remove(target)
                        self.ensure_failover(target)
                        continue
                    try:
                        reply = await self._request(
                            target_handle,
                            name,
                            {"type": "adopt", "snapshot": doc},
                        )
                    except (asyncio.TimeoutError, ConnectionError, OSError):
                        target_handle.alive = False
                        continue
                    if reply.get("type") != "adopted":
                        raise RuntimeError(
                            f"worker {target} refused group {name!r}: "
                            f"{reply.get('error')}"
                        )
                    self.owners[name] = target
                    self.adoptions[name] = {
                        "rounds_verified": int(reply["rounds_verified"]),
                        "last_verdict": reply.get("last_verdict"),
                    }
                    moved += 1
                    break
        self.reshards += moved
        self.failovers += 1
        elapsed = time.perf_counter() - started
        self.failover_latencies.append(elapsed)
        self._count("shard_reshards_total", moved or 1)
        self._count("shard_failovers_total")
        self._observe_latency(elapsed)
        self._gauge("shard_workers", self.live_workers)
        self._maybe_schedule_restart(worker_id)

    async def _request(
        self, handle: _WorkerHandle, group: str, command: dict
    ) -> dict:
        """One command/reply exchange about ``group`` on the control link.

        Replies are matched by ``(worker, req)`` — every group-scoped
        command (adopt, release, handback) carries a unique request id
        that the worker echoes back, so two concurrent exchanges about
        the same group can never pick up each other's reply.
        """
        if handle.writer is None:
            raise ConnectionError(
                f"no control channel to worker {handle.worker_id}"
            )
        self._req_seq += 1
        req = self._req_seq
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        self._adopt_waiters[(handle.worker_id, req)] = waiter
        try:
            _send_line(handle.writer, dict(command, req=req))
            await handle.writer.drain()
            return await asyncio.wait_for(
                waiter, timeout=self.config.failover_timeout_s
            )
        finally:
            self._adopt_waiters.pop((handle.worker_id, req), None)

    # -- self-healing: restart, rejoin, hand-back ----------------------

    def _maybe_schedule_restart(self, worker_id: str) -> None:
        """Queue an automatic restart after a failover, if policy allows."""
        if self._closing or self.config.restart_max_attempts < 1:
            return
        handle = self.handles[worker_id]
        if handle.permanently_down or worker_id in self._restart_tasks:
            return
        task = asyncio.ensure_future(self._restart(worker_id))

        def _reap(t: asyncio.Task) -> None:
            self._restart_tasks.pop(worker_id, None)
            t.cancelled() or t.exception()

        task.add_done_callback(_reap)
        self._restart_tasks[worker_id] = task

    async def _restart(self, worker_id: str) -> None:
        """Respawn one dead worker under the deterministic backoff policy."""
        handle = self.handles[worker_id]
        while not self._closing:
            attempt = handle.restarts + 1
            if attempt > self.config.restart_max_attempts:
                handle.permanently_down = True
                return
            await asyncio.sleep(
                restart_backoff_s(
                    self.config.seed,
                    worker_id,
                    attempt,
                    self.config.restart_backoff_base_s,
                    self.config.restart_backoff_cap_s,
                )
            )
            if self._closing:
                return
            handle.process.join(timeout=0.1)
            if handle.metrics is not None:
                handle.prior_metrics.append(handle.metrics)
                handle.metrics = None
            handle.restarts = attempt
            handle.generation += 1
            handle.alive = False
            handle.port = None
            handle.writer = None
            handle.sessions = 0
            handle.verdicts = 0
            handle.ready = asyncio.Event()
            # Reborn with no groups: everything it owned was failed
            # over; the rejoin below hands its ring-home groups back.
            handle.process = self._spawn(
                self._worker_spec(worker_id, generation=handle.generation)
            )
            self.restarts += 1
            self._count("shard_worker_restarts_total")
            try:
                await asyncio.wait_for(
                    handle.ready.wait(), timeout=self.config.start_timeout_s
                )
            except asyncio.TimeoutError:
                # Stillborn: reap it and let the loop charge the next
                # attempt (or go permanent-down at the cap).
                if handle.process.is_alive():
                    handle.process.kill()
                continue
            await self._rejoin(worker_id)
            return

    async def _rejoin(self, worker_id: str) -> None:
        """Re-include a restarted worker and hand its groups back.

        The ring is a pure function of its node set, so re-adding the
        node restores the exact pre-crash placement; every group whose
        ring home is the rejoined worker but which currently lives on
        an adoptive survivor is migrated back via the release/handback
        exchange. A failed hand-back leaves the group on its survivor —
        placement stays merely suboptimal, never wrong.
        """
        handle = self.handles[worker_id]
        if worker_id not in self.ring:
            self.ring.add(worker_id)
        # Un-latch the single-flight failover so a *second* death of
        # this worker can fail over again.
        self._failover_tasks.pop(worker_id, None)
        self._gauge("shard_workers", self.live_workers)
        for name in sorted(self._specs):
            if self._closing or not handle.is_running():
                break
            if self.ring.owner(name) != worker_id:
                continue
            current = self.owners.get(name)
            if current is None or current == worker_id:
                continue
            try:
                await self._handback(name, current, worker_id)
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                RuntimeError,
            ):
                continue
        for listener in list(self.rejoin_listeners):
            listener(worker_id)

    async def _handback(self, name: str, from_id: str, to_id: str) -> None:
        """Migrate one group from its adoptive survivor to its ring home.

        Anti-entropy by construction: drain in-flight rounds, have the
        survivor release the group with a final authoritative snapshot,
        reconcile that against whatever generation is on disk
        (freshest ``rounds_verified`` wins, embedded metrics merge
        max-seq), and hand the winner to the rejoined worker — whose
        deterministic rebuild continues the verdict sequence
        bit-identically. On a refused hand-back the survivor re-adopts
        so the group is never left unhosted.
        """
        survivor = self.handles[from_id]
        target = self.handles[to_id]
        async with self._migration_lock:
            if self.owners.get(name) != from_id:
                # A failover re-homed the group while we waited for the
                # lock; this hand-back's premise is gone.
                raise RuntimeError(
                    f"group {name!r} re-homed before hand-back"
                )
            if not survivor.is_running() or not target.is_running():
                raise RuntimeError(
                    f"hand-back of {name!r} needs both endpoints live"
                )
            gate = asyncio.Event()
            self._migrations[name] = gate
            try:
                deadline = time.monotonic() + self.config.drain_timeout_s
                while (
                    self._inflight.get(name, 0) > 0
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.01)
                reply = await self._request(
                    survivor, name, {"type": "release", "group": name}
                )
                if reply.get("type") != "released":
                    raise RuntimeError(
                        f"worker {from_id} refused to release {name!r}: "
                        f"{reply.get('error')}"
                    )
                doc = reconcile_snapshots(
                    reply.get("snapshot"),
                    load_snapshot(
                        self.state_dir,
                        name,
                        on_corrupt=self._on_corrupt_snapshot,
                    ),
                )
                if doc is None:
                    doc = initial_snapshot(self._specs[name])
                back = await self._request(
                    target, name, {"type": "handback", "snapshot": doc}
                )
                if back.get("type") == "handed-back":
                    new_owner = to_id
                else:
                    # Put it back where it just came from; the survivor
                    # no longer hosts it after the release above.
                    back = await self._request(
                        survivor, name, {"type": "adopt", "snapshot": doc}
                    )
                    if back.get("type") != "adopted":
                        raise RuntimeError(
                            f"group {name!r} stranded mid-hand-back"
                        )
                    new_owner = from_id
                self.owners[name] = new_owner
                self.adoptions[name] = {
                    "rounds_verified": int(back["rounds_verified"]),
                    "last_verdict": back.get("last_verdict"),
                }
                if new_owner == to_id:
                    self.handbacks += 1
                    self._count("shard_handbacks_total")
            finally:
                gate.set()
                self._migrations.pop(name, None)

    async def stall_worker(self, worker_id: str, seconds: float) -> None:
        """Tell one worker to refuse new sessions for ``seconds``."""
        handle = self.handles[worker_id]
        if handle.writer is None:
            return
        _send_line(
            handle.writer, {"type": "stall", "seconds": float(seconds)}
        )
        await handle.writer.drain()

    # -- drills and teardown -------------------------------------------

    def kill_worker(self, worker_id: str) -> int:
        """SIGKILL one worker (the drill's hammer); returns its pid."""
        handle = self.handles[worker_id]
        pid = handle.pid
        if pid is not None and handle.process.is_alive():
            os.kill(pid, signal.SIGKILL)
        return pid or -1

    async def close(self) -> None:
        self._closing = True
        pending = list(self._restart_tasks.values()) + list(
            self._failover_tasks.values()
        )
        for task in pending:
            if not task.done():
                task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        # Unblock any gateway session parked on a migration gate.
        for gate in self._migrations.values():
            gate.set()
        self._migrations.clear()
        for handle in self.handles.values():
            if handle.writer is not None:
                try:
                    _send_line(handle.writer, {"type": "shutdown"})
                    await handle.writer.drain()
                except (ConnectionError, OSError):
                    pass
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline and any(
            h.process.is_alive() for h in self.handles.values()
        ):
            await asyncio.sleep(0.05)
        for handle in self.handles.values():
            if handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and any(
            h.process.is_alive() for h in self.handles.values()
        ):
            await asyncio.sleep(0.05)
        for handle in self.handles.values():
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=1.0)
            if handle.writer is not None:
                handle.writer.close()
        if self._control is not None:
            self._control.close()
            await self._control.wait_closed()
            self._control = None
