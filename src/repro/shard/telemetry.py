"""Live gateway telemetry: ``/metrics``, ``/healthz`` and ``/slo``.

A tiny asyncio HTTP/1.0 server colocated with the gateway that turns
the supervisor's cluster-observability surface into scrapeable
endpoints:

* ``/metrics`` — Prometheus text exposition of
  :meth:`~repro.shard.worker.WorkerSupervisor.cluster_registry`, i.e.
  the deterministic merge of every worker's registry snapshot plus the
  gateway/supervisor's own ``shard_*`` counters. Because every
  per-verdict group snapshot embeds the worker's registry copy in the
  same atomic write, a scrape after a campaign counts every
  delivered verdict exactly once — SIGKILLed workers included;
* ``/healthz`` — per-worker liveness as JSON; HTTP 503 when any worker
  is down (the post-kill drill state), 200 otherwise;
* ``/slo`` — round-latency quantiles (bucket-interpolated; the serving
  histograms retain no samples), UTRP deadline-budget consumption and
  the late-rejection count, all from the same merged registry.

The server intentionally speaks just enough HTTP for ``curl``,
Prometheus and the bundled :func:`http_get` client — request line plus
headers in, ``Connection: close`` response out. It shares the event
loop with the gateway, so a scrape observes a consistent supervisor
state between rounds.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..obs.agg import histogram_quantile
from ..obs.exporters import prometheus_text
from ..obs.metrics import Histogram, MetricsRegistry

__all__ = ["TelemetryServer", "slo_summary", "http_get"]

#: Upper bound on one request's header section; anything longer is not
#: a scraper we recognise.
_MAX_HEADER_BYTES = 16384

_STATUS_TEXT = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


def _family(registry: MetricsRegistry, name: str):
    for metric in registry.collect():
        if metric.name == name:
            return metric
    return None


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    metric = _family(registry, name)
    if metric is None:
        return 0.0
    return float(sum(series.value for _, series in metric.series()))


def _histogram_totals(metric: Histogram):
    """Pool a histogram family's series into one cumulative profile."""
    bounds = list(metric.buckets)
    cumulative = [0] * (len(bounds) + 1)
    count = 0
    total = 0.0
    for _, series in metric.series():
        for i, c in enumerate(series.cumulative_counts()):
            cumulative[i] += c
        count += series.count
        total += series.sum
    return bounds, cumulative, count, total


def _histogram_block(registry: MetricsRegistry, name: str) -> Dict[str, object]:
    metric = _family(registry, name)
    if metric is None:
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p99": 0.0}
    bounds, cumulative, count, total = _histogram_totals(metric)
    return {
        "count": count,
        "sum": round(total, 6),
        "p50": round(histogram_quantile(bounds, cumulative, 50.0), 6),
        "p99": round(histogram_quantile(bounds, cumulative, 99.0), 6),
    }


def slo_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """The ``/slo`` document for one (merged) registry.

    Quantiles are bucket-interpolated — the serving-path histograms are
    unbounded streams and retain no samples. ``deadline_budget`` adds
    ``within_budget`` / ``over_budget`` round counts split at ratio
    1.0, the Theorem-5 cliff; ``over_budget`` and
    ``late_rejections_total`` agree by construction (both count rounds
    whose reported air time exceeded the Alg. 5 timer).
    """
    latency = _histogram_block(registry, "serve_round_latency_us")
    budget = _histogram_block(registry, "serve_deadline_budget_ratio")
    metric = _family(registry, "serve_deadline_budget_ratio")
    within = over = 0
    if metric is not None:
        bounds, cumulative, count, _ = _histogram_totals(metric)
        if 1.0 in bounds:
            within = cumulative[bounds.index(1.0)]
            over = count - within
    budget["within_budget"] = within
    budget["over_budget"] = over
    return {
        "round_latency_us": latency,
        "deadline_budget": budget,
        "late_rejections_total": int(
            _counter_total(registry, "serve_late_rejections_total")
        ),
        "timeouts_total": int(_counter_total(registry, "serve_timeouts_total")),
        "verdicts_total": int(_counter_total(registry, "serve_verdicts_total")),
    }


class TelemetryServer:
    """Scrape endpoints over one supervisor (and optionally a gateway).

    Args:
        supervisor: the :class:`~repro.shard.worker.WorkerSupervisor`
            whose merged registry and health map back the endpoints.
        gateway: optional :class:`~repro.shard.gateway.ShardGateway`;
            when present ``/healthz`` includes its per-worker circuit
            breaker states.
        host / port: listen address; port 0 binds an ephemeral port
            (read it back from :attr:`port`).
    """

    def __init__(
        self, supervisor, gateway=None, host: str = "127.0.0.1", port: int = 0
    ):
        self.supervisor = supervisor
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self.scrapes = 0
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("telemetry server not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "TelemetryServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            consumed = len(request_line)
            while True:  # drain headers; we route on the request line only
                line = await reader.readline()
                consumed += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
                if consumed > _MAX_HEADER_BYTES:
                    return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            status, content_type, body = self._route(parts[0], parts[1])
            self.scrapes += 1
            payload = body.encode()
            head = (
                f"HTTP/1.0 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()
        except (ConnectionError, OSError, UnicodeDecodeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, target: str) -> Tuple[int, str, str]:
        if method != "GET":
            return 405, "text/plain", "only GET is served\n"
        path = target.split("?", 1)[0]
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4",
                prometheus_text(self.supervisor.cluster_registry()),
            )
        if path == "/healthz":
            health = self.supervisor.health()
            degraded = sorted(
                wid for wid, doc in health.items() if not doc["alive"]
            )
            doc = {
                "status": "degraded" if degraded else "ok",
                "down": degraded,
                "workers": health,
            }
            if self.gateway is not None:
                doc["breakers"] = self.gateway.breaker_states()
            body = json.dumps(doc, sort_keys=True, indent=2)
            return (503 if degraded else 200, "application/json", body + "\n")
        if path == "/slo":
            body = json.dumps(
                slo_summary(self.supervisor.cluster_registry()),
                sort_keys=True,
                indent=2,
            )
            return 200, "application/json", body + "\n"
        return 404, "text/plain", f"no such endpoint: {path}\n"


async def http_get(
    host: str, port: int, path: str, timeout_s: float = 10.0
) -> Tuple[int, str]:
    """Minimal async GET against :class:`TelemetryServer`.

    Returns ``(status, body)``. Exists so the drill, the CLI and the
    tests can scrape without an HTTP client dependency.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2:
        raise ValueError(f"malformed HTTP response: {head[:80]!r}")
    return int(status_line[1]), body.decode()
