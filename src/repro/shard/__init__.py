"""repro.shard — multi-process sharded serving with failover.

PR 5's :mod:`repro.serve` service is one asyncio process: one core,
one failure domain. This package scales the same wire protocol
horizontally without changing a byte of it:

* :mod:`repro.shard.ring` — a deterministic consistent-hash ring maps
  group ids onto workers with bounded movement on membership change;
* :mod:`repro.shard.worker` — a supervisor spawns N worker processes,
  each an ordinary :class:`~repro.serve.MonitoringService` owning a
  disjoint group shard, heartbeating over a control socket;
* :mod:`repro.shard.gateway` — an asyncio front speaking
  ``repro.serve/v1`` to readers and proxying each round to the owning
  worker, transparent to :class:`~repro.serve.ReaderClient`;
* :mod:`repro.shard.failover` — per-verdict group snapshots (built on
  ``server.state`` v2) plus a deterministic issuance replay, so a
  SIGKILLed worker's groups resume on survivors with the *same* RNG
  stream — a kill-a-worker drill loses zero verdicts and stays
  bit-identical to single-process serve;
* :mod:`repro.shard.telemetry` — live gateway telemetry: ``/metrics``
  (Prometheus text of the deterministically merged worker registries),
  ``/healthz`` (per-worker liveness) and ``/slo`` (round-latency
  quantiles, UTRP deadline-budget consumption, late rejections);
* :mod:`repro.shard.cluster` / :mod:`repro.shard.bench` — the pieces
  assembled: one object to start/stop, the drill, and the scaling
  benchmark behind ``BENCH_shard.json``;
* :mod:`repro.shard.chaos` — the self-healing acceptance test: a
  seeded fault schedule (kills, restarts, disk faults, upstream
  stalls) the cluster must survive with zero lost verdicts, every
  worker healthy at the end and per-group verdict digests identical
  to a fault-free run.
"""

from .bench import ShardBenchConfig, format_shard_bench, run_shard_bench
from .chaos import (
    ChaosResult,
    default_chaos_plan,
    format_chaos_result,
    run_chaos_drill,
)
from .cluster import DrillResult, ShardCluster, format_drill_result, run_drill
from .config import ShardConfig, ShardGroupSpec
from .failover import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    initial_snapshot,
    load_snapshot,
    restore_group,
    snapshot_path,
    write_snapshot,
)
from .gateway import CircuitBreaker, ShardGateway
from .ring import HashRing
from .telemetry import TelemetryServer, http_get, slo_summary
from .worker import (
    ShardWorkerService,
    WorkerSpec,
    WorkerSupervisor,
    restart_backoff_s,
    worker_spans_path,
)

__all__ = [
    "ChaosResult",
    "CircuitBreaker",
    "DrillResult",
    "HashRing",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "ShardBenchConfig",
    "ShardCluster",
    "ShardConfig",
    "ShardGateway",
    "ShardGroupSpec",
    "ShardWorkerService",
    "TelemetryServer",
    "WorkerSpec",
    "WorkerSupervisor",
    "default_chaos_plan",
    "format_chaos_result",
    "format_drill_result",
    "format_shard_bench",
    "http_get",
    "initial_snapshot",
    "load_snapshot",
    "restart_backoff_s",
    "restore_group",
    "run_chaos_drill",
    "run_drill",
    "run_shard_bench",
    "slo_summary",
    "snapshot_path",
    "worker_spans_path",
    "write_snapshot",
]
