"""The chaos drill: a seeded multi-fault schedule against a
self-healing cluster, with a bit-identity exit gate.

PR 5 pinned wire ≡ in-process; the kill drill pinned sharded-wire ≡
wire across one SIGKILL. This drill turns the screws all the way: a
:class:`~repro.faults.plan.FaultPlan` scripts *multiple* worker kills,
an upstream stall and a schedule of snapshot disk faults — all seeded,
so the same plan + seed replays the same carnage — and the cluster must
come out the other side with

* **zero lost verdicts** and zero protocol errors at the readers;
* **every worker healthy** at the end (auto-restart brought the killed
  workers back; none is permanently down) — the final ``/healthz``
  probe must answer HTTP 200;
* **per-group verdict digests identical to a fault-free run** — the
  observed verdict sequences hash to the same digest as the in-process
  reference for the same ``(seed, group, f, r)``, which *is* the
  fault-free ground truth.

The scheduler fires cluster-kind specs (``worker-kill``,
``upstream-stall``) by watching the gateway's delivered-verdict count
cross each spec's ``at_tick`` — a logical clock, so the incident
timeline is phrased in campaign progress, not wall seconds. Disk-fault
specs need no scheduler: the workers draw them write-by-write from the
same plan through their seeded
:class:`~repro.faults.inject.DiskFaultInjector`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults.plan import FaultPlan, FaultSpec
from ..obs.agg import parse_prometheus_text, sum_family
from ..obs.tracing import Tracer, merge_spans, span_tree_digest, write_spans_jsonl
from .cluster import ShardCluster, _reference_sequence
from .config import ShardConfig
from .telemetry import http_get

__all__ = [
    "ChaosResult",
    "default_chaos_plan",
    "run_chaos_drill",
    "format_chaos_result",
]


def default_chaos_plan(config: ShardConfig, rounds: int) -> FaultPlan:
    """The bundled chaos schedule: two kills, one stall, disk faults.

    Every trigger is phrased against the cluster-wide verdict count
    (``at_tick``) or a group's snapshot write index, so the schedule
    scales with the campaign size instead of hard-coding wall times.
    All four disk-fault modes are loud by construction — the snapshot
    writer catches torn and short writes at read-back verification and
    retries clean, exactly as it does for ENOSPC and fsync failures —
    so the snapshot on disk only ever moves forward and the zero-loss
    gate stays honest rather than lucky.
    """
    expected = config.groups * rounds
    names = [config.group_name(i) for i in range(config.groups)]
    first_kill = max(1, expected // 4)
    stall_tick = max(first_kill + 1, (2 * expected) // 5)
    second_kill = max(stall_tick + 1, (11 * expected) // 20)
    specs = [
        # Torn write on the first group's very first snapshot: caught
        # at read-back and retried clean, so the good file never goes
        # stale — write indexes restart per adoption, so this one
        # re-fires on every worker that ever hosts the group.
        FaultSpec("disk-fault", groups=names[:1], at_tick=0, mode="torn-write"),
        # ENOSPC and fsync failures take the same retry path: the
        # snapshot on disk never goes stale.
        FaultSpec("disk-fault", groups=names[1:2], at_tick=0, mode="enospc"),
        FaultSpec("disk-fault", probability=0.2, mode="fsync-fail"),
        FaultSpec("worker-kill", at_tick=first_kill),
        FaultSpec("upstream-stall", at_tick=stall_tick, duration_s=0.6),
        FaultSpec("worker-kill", at_tick=second_kill),
    ]
    if config.groups < 2:
        # A single-group config has no second name to scope; drop the
        # empty-scoped spec rather than carry a dead entry.
        specs = [s for s in specs if s.groups != ()]
    return FaultPlan(
        name="chaos-drill",
        description=(
            "Two seeded worker kills, one upstream stall and a "
            "schedule of snapshot disk faults; the self-healing "
            "cluster must finish bit-identical to fault-free."
        ),
        specs=specs,
    )


@dataclass
class ChaosResult:
    """What the chaos drill measured; ``ok`` is the exit gate."""

    groups: int
    rounds: int
    expected_verdicts: int
    verdicts_completed: int
    lost_verdicts: int
    protocol_errors: int
    mismatches: List[str] = field(default_factory=list)
    #: Workers SIGKILLed by the schedule, in firing order.
    kills: List[str] = field(default_factory=list)
    #: Workers told to refuse new sessions, in firing order.
    stalls: List[str] = field(default_factory=list)
    #: Successful supervisor restarts (kills recovered from).
    worker_restarts: int = 0
    #: Groups handed back to their rejoined home worker.
    handbacks: int = 0
    #: Disk faults the workers' seeded injectors actually inflicted.
    disk_faults: int = 0
    #: Corrupt snapshot reads survived during failover/hand-back.
    snapshots_corrupt: int = 0
    #: Gateway circuit-breaker open transitions.
    breaker_opens: int = 0
    failovers: int = 0
    #: Workers that exhausted their restart budget (must be empty).
    permanently_down: List[str] = field(default_factory=list)
    #: blake2b over the observed per-group verdict sequences.
    digest: str = ""
    #: Same hash over the in-process fault-free reference.
    reference_digest: str = ""
    #: HTTP status of the post-heal ``/healthz`` probe (200 required).
    health_status: int = 0
    #: ``serve_verdicts_total`` from the final ``/metrics`` scrape;
    #: -1 = not scraped.
    scraped_verdicts: int = -1
    trace_spans: int = 0
    trace_digest: str = ""
    wall_s: float = 0.0

    @property
    def digest_match(self) -> bool:
        return bool(self.digest) and self.digest == self.reference_digest

    @property
    def ok(self) -> bool:
        return (
            self.lost_verdicts == 0
            and self.protocol_errors == 0
            and not self.mismatches
            and self.digest_match
            and self.health_status == 200
            and not self.permanently_down
            # Scrape exactness survives restarts because each worker
            # incarnation snapshots under its own metrics source.
            and (
                self.scraped_verdicts < 0
                or self.scraped_verdicts == self.verdicts_completed
            )
        )

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["digest_match"] = self.digest_match
        doc["ok"] = self.ok
        return doc


def _sequence_digest(sequences: Dict[str, list]) -> str:
    payload = json.dumps(
        {name: [list(item) for item in sequences[name]] for name in sorted(sequences)},
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


async def _run_chaos_async(
    config: ShardConfig,
    plan: FaultPlan,
    rounds: int,
    concurrency: int,
    obs=None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    heal_timeout_s: float = 30.0,
    wire_version: int = 1,
    pipeline_depth: int = 1,
) -> ChaosResult:
    from ..fleet.remote import RemoteCampaignConfig, drive_remote_campaign_async

    expected = config.groups * rounds
    references = {
        spec.name: _reference_sequence(spec, rounds)
        for spec in config.group_specs()
    }
    reference_digest = _sequence_digest(references)

    reader_tracer = Tracer("reader")
    gateway_tracer = Tracer("gateway")
    kills: List[str] = []
    stalls: List[str] = []

    started = time.perf_counter()
    async with ShardCluster(
        config,
        obs=obs,
        tracer=gateway_tracer,
        telemetry_port=0,
        fault_plan=plan,
    ) as cluster:
        supervisor = cluster.supervisor
        gateway = cluster.gateway

        def busiest_live() -> Optional[str]:
            load: Dict[str, int] = {}
            for owner in supervisor.owners.values():
                load[owner] = load.get(owner, 0) + 1
            for wid in sorted(load, key=lambda w: (-load[w], w)):
                if supervisor.handles[wid].is_running():
                    return wid
            return None

        def pick(spec: FaultSpec) -> Optional[str]:
            if spec.workers:
                for wid in spec.workers:
                    if supervisor.handles[wid].is_running():
                        return wid
                return None
            return busiest_live()

        async def scheduler() -> None:
            events = sorted(
                (s for s in plan.specs if s.fault in ("worker-kill", "upstream-stall")),
                key=lambda s: (s.at_tick, s.fault),
            )
            for spec in events:
                while gateway.rounds_proxied < spec.at_tick:
                    await asyncio.sleep(0.005)
                target = pick(spec)
                if target is None:
                    continue
                if spec.fault == "worker-kill":
                    # Never take down the *last* running worker: a
                    # previous victim may still be mid-respawn, and a
                    # zero-live cluster is an outage, not chaos — the
                    # zero-loss gate would measure the wrong thing.
                    running = sum(
                        1
                        for handle in supervisor.handles.values()
                        if handle.is_running()
                    )
                    if running < 2:
                        continue
                    kills.append(target)
                    supervisor.kill_worker(target)
                else:
                    # Upstream connections are cached per reader
                    # session, so any session that has not yet dialled
                    # the target (and every post-stall reconnect) lands
                    # in the refusal window — the breaker engages
                    # without any cache surgery here.
                    stalls.append(target)
                    await supervisor.stall_worker(target, spec.duration_s)

        campaign_config = RemoteCampaignConfig(
            host="127.0.0.1",
            port=cluster.port,
            groups=config.groups,
            rounds=rounds,
            protocol="trp",
            population=config.population,
            tolerance=config.tolerance,
            confidence=config.confidence,
            seed=config.seed,
            counter_tags=False,
            group_prefix=config.group_prefix,
            concurrency=concurrency,
            wire_version=wire_version,
            pipeline_depth=pipeline_depth,
        )
        chaos_task = asyncio.ensure_future(scheduler())
        try:
            result = await drive_remote_campaign_async(
                campaign_config, tracer=reader_tracer
            )
        finally:
            chaos_task.cancel()
            outcome = await asyncio.gather(chaos_task, return_exceptions=True)
            # A scheduler crash means the drill did not run its plan —
            # surface it instead of reporting a vacuous PASS.
            if isinstance(outcome[0], Exception) and not isinstance(
                outcome[0], asyncio.CancelledError
            ):
                raise outcome[0]

        # Heal gate: wait for restarts and hand-backs to settle before
        # judging the end state — "the cluster recovered" includes the
        # recovery actually finishing.
        deadline = time.monotonic() + heal_timeout_s
        while time.monotonic() < deadline:
            restarting = any(
                not t.done() for t in supervisor._restart_tasks.values()
            )
            migrating = bool(supervisor._migrations)
            down = [
                wid
                for wid, doc in supervisor.health().items()
                if not doc["alive"]
            ]
            if not restarting and not migrating and not down:
                break
            await asyncio.sleep(0.05)

        scraped_verdicts = -1
        health_status = 0
        if cluster.telemetry is not None:
            port = cluster.telemetry.port
            status, body = await http_get("127.0.0.1", port, "/metrics")
            disk_faults = 0
            if status == 200:
                families = parse_prometheus_text(body)
                scraped_verdicts = int(
                    sum_family(families, "serve_verdicts_total")
                )
                disk_faults = int(
                    sum_family(families, "shard_snapshot_faults_total")
                )
            if metrics_out:
                with open(metrics_out, "w") as fh:
                    fh.write(body)
            health_status, _ = await http_get("127.0.0.1", port, "/healthz")
        else:
            disk_faults = 0

        spans = merge_spans(
            reader_tracer.spans, gateway_tracer.spans, cluster.worker_spans()
        )
        trace_digest = span_tree_digest(spans)
        if trace_out:
            write_spans_jsonl(spans, trace_out)

        observed = {
            name: [
                (r.verdict, r.frame_size, r.mismatched_slots)
                for r in result.per_group.get(name, [])
            ]
            for name in references
        }
        mismatches = [
            f"{name}: observed {observed[name]} != reference {references[name]}"
            for name in sorted(references)
            if observed[name] != references[name]
        ]

        return ChaosResult(
            groups=config.groups,
            rounds=rounds,
            expected_verdicts=expected,
            verdicts_completed=result.rounds_completed,
            lost_verdicts=expected - result.rounds_completed,
            protocol_errors=len(result.protocol_errors),
            mismatches=mismatches,
            kills=kills,
            stalls=stalls,
            worker_restarts=supervisor.restarts,
            handbacks=supervisor.handbacks,
            disk_faults=disk_faults,
            snapshots_corrupt=supervisor.snapshot_corrupt,
            breaker_opens=gateway.breaker_opens,
            failovers=supervisor.failovers,
            permanently_down=sorted(
                wid
                for wid, handle in supervisor.handles.items()
                if handle.permanently_down
            ),
            digest=_sequence_digest(observed),
            reference_digest=reference_digest,
            health_status=health_status,
            scraped_verdicts=scraped_verdicts,
            trace_spans=len(spans),
            trace_digest=trace_digest,
            wall_s=time.perf_counter() - started,
        )


def run_chaos_drill(
    config: Optional[ShardConfig] = None,
    plan: Optional[FaultPlan] = None,
    rounds: int = 6,
    concurrency: int = 8,
    obs=None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    heal_timeout_s: float = 30.0,
    wire_version: int = 1,
    pipeline_depth: int = 1,
) -> ChaosResult:
    """Run the chaos drill; see the module docstring.

    The drill forces stateless TRP groups (the bit-identity claim) and
    turns self-healing *on*: ``restart_max_attempts`` is raised to at
    least 2 so the scheduled kills are recoverable, and the retry
    budget is widened so a stall window costs latency, never a verdict.

    Args:
        plan: the fault schedule; ``None`` uses
            :func:`default_chaos_plan`. Only its cluster-kind and
            ``disk-fault`` specs matter here — air-interface specs
            would break the bit-identity gate and are rejected.
        trace_out / metrics_out: artifact paths (merged trace JSONL,
            final ``/metrics`` scrape body).
        heal_timeout_s: ceiling on the post-campaign settle wait.

    Raises:
        ValueError: on a nonsensical shape, or a plan carrying
            air-interface fault specs.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if wire_version not in (1, 2):
        raise ValueError(f"wire_version must be 1 or 2, got {wire_version!r}")
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    if pipeline_depth > 1 and wire_version < 2:
        raise ValueError("pipeline_depth > 1 requires wire_version 2")
    if not heal_timeout_s > 0:
        raise ValueError("heal_timeout_s must be > 0")
    cfg = config if config is not None else ShardConfig()
    overrides = {}
    if cfg.counter_tags:
        overrides["counter_tags"] = False
    if cfg.restart_max_attempts < 2:
        overrides["restart_max_attempts"] = 2
    if cfg.max_round_retries < 12:
        overrides["max_round_retries"] = 12
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)
    chaos_plan = plan if plan is not None else default_chaos_plan(cfg, rounds)
    air = [
        s.fault
        for s in chaos_plan.specs
        if s.fault not in ("worker-kill", "upstream-stall", "disk-fault")
    ]
    if air:
        raise ValueError(
            "chaos drill plans must not carry air-interface faults "
            f"(got {', '.join(sorted(set(air)))}); they would break the "
            "bit-identity gate — use repro.fleet campaigns for those"
        )
    return asyncio.run(
        _run_chaos_async(
            cfg,
            chaos_plan,
            rounds,
            concurrency,
            obs=obs,
            trace_out=trace_out,
            metrics_out=metrics_out,
            heal_timeout_s=heal_timeout_s,
            wire_version=wire_version,
            pipeline_depth=pipeline_depth,
        )
    )


def format_chaos_result(result: ChaosResult) -> str:
    """Human-readable chaos report; CI greps the gate lines."""
    return "\n".join(
        [
            f"groups                 : {result.groups}",
            f"rounds per group       : {result.rounds}",
            f"verdicts expected      : {result.expected_verdicts}",
            f"verdicts completed     : {result.verdicts_completed}",
            f"lost verdicts          : {result.lost_verdicts}",
            f"protocol errors        : {result.protocol_errors}",
            f"verdict mismatches     : {len(result.mismatches)}",
            f"workers killed         : "
            + (", ".join(result.kills) if result.kills else "none"),
            f"worker restarts        : {result.worker_restarts}",
            f"hand-backs             : {result.handbacks}",
            f"upstream stalls        : "
            + (", ".join(result.stalls) if result.stalls else "none"),
            f"disk faults injected   : {result.disk_faults}",
            f"snapshots corrupted    : {result.snapshots_corrupt}",
            f"breaker opens          : {result.breaker_opens}",
            f"failovers              : {result.failovers}",
            f"permanently down       : "
            + (", ".join(result.permanently_down) or "none"),
            f"digest match           : {'yes' if result.digest_match else 'NO'}",
            f"final health           : "
            + (
                f"HTTP {result.health_status}"
                if result.health_status
                else "not probed"
            ),
            f"telemetry verdicts     : "
            + (
                str(result.scraped_verdicts)
                if result.scraped_verdicts >= 0
                else "not scraped"
            ),
            f"trace spans            : {result.trace_spans}",
            f"trace digest           : {result.trace_digest[:16] or 'n/a'}",
            f"wall time              : {result.wall_s:.3f} s",
            f"chaos                  : {'PASS' if result.ok else 'FAIL'}",
        ]
        + [f"  mismatch: {m}" for m in result.mismatches[:5]]
    )
