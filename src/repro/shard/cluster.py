"""The pieces assembled: one object to run a sharded deployment,
plus the kill-a-worker drill that proves the failover claim.

The drill is the subsystem's acceptance test made executable: run a
full campaign against the gateway, SIGKILL the busiest worker once a
fraction of the verdicts are in, and then demand

* **zero lost verdicts** — every expected round produced a VERDICT
  frame at the reader;
* **zero protocol errors** — no session saw anything but the ordinary
  alternation;
* **bit-identical verdicts** — every group's verdict sequence (verdict,
  frame size, mismatched-slot count) equals the single-process
  in-process reference for the same ``(seed, group, f, r)``, killed
  worker or not.

The third property is why the drill pins groups to counter-free TRP:
a stateless group re-scanned after failover yields the identical
bitstring, so even the round that was mid-flight when the SIGKILL
landed verifies identically on the adopting worker. (Counter-tag
state migration is exercised by the ``server.state`` roundtrip tests
instead — a re-*scan* of a counter group is a different proof, not a
bit-identical one.)
"""

from __future__ import annotations

import asyncio
import dataclasses
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.monitor import MonitoringServer
from ..core.parameters import MonitorRequirement
from ..rfid.channel import SlottedChannel
from ..rfid.population import TagPopulation
from .config import ShardConfig, ShardGroupSpec
from .gateway import ShardGateway
from .worker import WorkerSupervisor

__all__ = ["ShardCluster", "DrillResult", "run_drill", "format_drill_result"]


class ShardCluster:
    """Supervisor + gateway + a snapshot directory, as one lifecycle."""

    def __init__(self, config: Optional[ShardConfig] = None, obs=None):
        self.config = config if config is not None else ShardConfig()
        self._own_state_dir = self.config.state_dir is None
        self.state_dir = (
            self.config.state_dir
            if self.config.state_dir is not None
            else tempfile.mkdtemp(prefix="repro-shard-")
        )
        self.supervisor = WorkerSupervisor(
            self.config, state_dir=self.state_dir, obs=obs
        )
        self.gateway = ShardGateway(self.supervisor, self.config, obs=obs)

    async def start(self) -> None:
        await self.supervisor.start()
        await self.gateway.start()

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def verdicts_delivered(self) -> int:
        return self.gateway.rounds_proxied

    async def close(self) -> None:
        await self.gateway.close()
        await self.supervisor.close()
        if self._own_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)

    async def __aenter__(self) -> "ShardCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


# ----------------------------------------------------------------------
# the kill-a-worker drill
# ----------------------------------------------------------------------


@dataclass
class DrillResult:
    """What the drill measured; ``ok`` is the zero-loss verdict."""

    groups: int
    rounds: int
    expected_verdicts: int
    verdicts_completed: int
    lost_verdicts: int
    protocol_errors: int
    mismatches: List[str] = field(default_factory=list)
    killed_worker: str = ""
    killed_pid: int = -1
    kill_after_verdicts: int = 0
    groups_resharded: int = 0
    failovers: int = 0
    failover_latency_s: float = 0.0
    cached_verdicts: int = 0
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.lost_verdicts == 0
            and self.protocol_errors == 0
            and not self.mismatches
        )


def _reference_sequence(
    spec: ShardGroupSpec, rounds: int
) -> List[Tuple[str, int, int]]:
    """The in-process verdict sequence for one group — the ground truth
    sharded serving must reproduce bit-for-bit (PR 5 pinned wire ≡
    in-process; this drill pins sharded-wire ≡ wire)."""
    requirement = MonitorRequirement(
        spec.population, spec.tolerance, spec.confidence
    )
    monitor = MonitoringServer(
        requirement,
        rng=np.random.default_rng(spec.seed + 1),
        counter_tags=spec.counter_tags,
        comm_budget=spec.comm_budget,
    )
    tags = TagPopulation.create(
        spec.population,
        uses_counter=spec.counter_tags,
        rng=np.random.default_rng(spec.seed),
    )
    monitor.register(tags.ids.tolist())
    channel = SlottedChannel(tags.tags)
    sequence = []
    for _ in range(rounds):
        report = monitor.check_trp(channel)
        sequence.append(
            (
                report.result.verdict.value,
                int(report.result.frame_size),
                len(report.result.mismatched_slots),
            )
        )
    return sequence


async def _run_drill_async(
    config: ShardConfig,
    rounds: int,
    kill_fraction: float,
    concurrency: int,
    obs=None,
) -> DrillResult:
    from ..fleet.remote import RemoteCampaignConfig, drive_remote_campaign_async

    expected = config.groups * rounds
    kill_after = max(1, int(expected * kill_fraction))
    references = {
        spec.name: _reference_sequence(spec, rounds)
        for spec in config.group_specs()
    }

    started = time.perf_counter()
    async with ShardCluster(config, obs=obs) as cluster:
        supervisor = cluster.supervisor

        killed: Dict[str, int] = {}

        async def killer() -> None:
            while cluster.gateway.rounds_proxied < kill_after:
                await asyncio.sleep(0.005)
            # The busiest victim: the live worker owning the most
            # groups maximises the re-shard the drill must survive.
            load: Dict[str, int] = {}
            for owner in supervisor.owners.values():
                load[owner] = load.get(owner, 0) + 1
            candidates = [
                wid
                for wid in sorted(load, key=lambda w: (-load[w], w))
                if supervisor.handles[wid].is_running()
            ]
            if not candidates:
                return
            victim = candidates[0]
            killed["worker"] = victim
            killed["pid"] = supervisor.kill_worker(victim)

        campaign_config = RemoteCampaignConfig(
            host="127.0.0.1",
            port=cluster.port,
            groups=config.groups,
            rounds=rounds,
            protocol="trp",
            population=config.population,
            tolerance=config.tolerance,
            confidence=config.confidence,
            seed=config.seed,
            counter_tags=False,
            group_prefix=config.group_prefix,
            concurrency=concurrency,
        )
        kill_task = asyncio.ensure_future(killer())
        try:
            result = await drive_remote_campaign_async(campaign_config)
        finally:
            kill_task.cancel()
            await asyncio.gather(kill_task, return_exceptions=True)

        mismatches: List[str] = []
        for name, reference in sorted(references.items()):
            observed = [
                (r.verdict, r.frame_size, r.mismatched_slots)
                for r in result.per_group.get(name, [])
            ]
            if observed != reference:
                mismatches.append(
                    f"{name}: observed {observed} != reference {reference}"
                )

        latencies = supervisor.failover_latencies
        return DrillResult(
            groups=config.groups,
            rounds=rounds,
            expected_verdicts=expected,
            verdicts_completed=result.rounds_completed,
            lost_verdicts=expected - result.rounds_completed,
            protocol_errors=len(result.protocol_errors),
            mismatches=mismatches,
            killed_worker=killed.get("worker", ""),
            killed_pid=killed.get("pid", -1),
            kill_after_verdicts=kill_after,
            groups_resharded=supervisor.reshards,
            failovers=supervisor.failovers,
            failover_latency_s=max(latencies) if latencies else 0.0,
            cached_verdicts=cluster.gateway.cached_verdicts_served,
            wall_s=time.perf_counter() - started,
        )


def run_drill(
    config: Optional[ShardConfig] = None,
    rounds: int = 3,
    kill_fraction: float = 0.25,
    concurrency: int = 8,
    obs=None,
) -> DrillResult:
    """Run the kill-a-worker drill; see the module docstring.

    The drill needs stateless groups for its bit-identity claim, so
    ``counter_tags`` is forced off whatever the config says.

    Raises:
        ValueError: on a nonsensical kill fraction or round count.
    """
    if not 0.0 < kill_fraction < 1.0:
        raise ValueError("kill_fraction must be in (0, 1)")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    cfg = config if config is not None else ShardConfig()
    if cfg.counter_tags:
        cfg = dataclasses.replace(cfg, counter_tags=False)
    return asyncio.run(
        _run_drill_async(cfg, rounds, kill_fraction, concurrency, obs=obs)
    )


def format_drill_result(result: DrillResult) -> str:
    """Human-readable drill report; CI greps the zero lines."""
    return "\n".join(
        [
            f"groups                 : {result.groups}",
            f"rounds per group       : {result.rounds}",
            f"verdicts expected      : {result.expected_verdicts}",
            f"verdicts completed     : {result.verdicts_completed}",
            f"lost verdicts          : {result.lost_verdicts}",
            f"protocol errors        : {result.protocol_errors}",
            f"verdict mismatches     : {len(result.mismatches)}",
            f"killed worker          : {result.killed_worker or 'none'}"
            + (
                f" (pid {result.killed_pid}) after "
                f"{result.kill_after_verdicts} verdicts"
                if result.killed_worker
                else ""
            ),
            f"groups re-sharded      : {result.groups_resharded}",
            f"failovers              : {result.failovers}",
            f"failover latency       : {result.failover_latency_s:.3f} s",
            f"cached verdicts served : {result.cached_verdicts}",
            f"wall time              : {result.wall_s:.3f} s",
            f"drill                  : {'PASS' if result.ok else 'FAIL'}",
        ]
        + [f"  mismatch: {m}" for m in result.mismatches[:5]]
    )
