"""The pieces assembled: one object to run a sharded deployment,
plus the kill-a-worker drill that proves the failover claim.

The drill is the subsystem's acceptance test made executable: run a
full campaign against the gateway, SIGKILL the busiest worker once a
fraction of the verdicts are in, and then demand

* **zero lost verdicts** — every expected round produced a VERDICT
  frame at the reader;
* **zero protocol errors** — no session saw anything but the ordinary
  alternation;
* **bit-identical verdicts** — every group's verdict sequence (verdict,
  frame size, mismatched-slot count) equals the single-process
  in-process reference for the same ``(seed, group, f, r)``, killed
  worker or not.

The third property is why the drill pins groups to counter-free TRP:
a stateless group re-scanned after failover yields the identical
bitstring, so even the round that was mid-flight when the SIGKILL
landed verifies identically on the adopting worker. (Counter-tag
state migration is exercised by the ``server.state`` roundtrip tests
instead — a re-*scan* of a counter group is a different proof, not a
bit-identical one.)
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.monitor import MonitoringServer
from ..core.parameters import MonitorRequirement
from ..obs.agg import parse_prometheus_text, sum_family
from ..obs.tracing import (
    Tracer,
    load_span_files,
    merge_spans,
    span_tree_digest,
    write_spans_jsonl,
)
from ..rfid.channel import SlottedChannel
from ..rfid.population import TagPopulation
from .config import ShardConfig, ShardGroupSpec
from .gateway import ShardGateway
from .telemetry import TelemetryServer, http_get
from .worker import WorkerSupervisor, worker_spans_path

__all__ = ["ShardCluster", "DrillResult", "run_drill", "format_drill_result"]


class ShardCluster:
    """Supervisor + gateway + a snapshot directory, as one lifecycle.

    Args:
        config: the cluster's shape.
        obs: optional :class:`~repro.obs.ObsContext` shared by the
            supervisor and gateway (the ``shard_*`` counter side of the
            merged ``/metrics`` view).
        tracer: optional :class:`~repro.obs.tracing.Tracer` for the
            gateway's ``gateway.round`` spans.
        telemetry_port: when not ``None``, serve ``/metrics``,
            ``/healthz`` and ``/slo`` on this port (0 = ephemeral; read
            :attr:`telemetry`'s ``port`` back after :meth:`start`).
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`
            forwarded to the workers (chaos drills; workers draw their
            disk faults from it, the chaos scheduler drives the
            kill/stall specs from outside).
    """

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        obs=None,
        tracer=None,
        telemetry_port: Optional[int] = None,
        fault_plan=None,
    ):
        self.config = config if config is not None else ShardConfig()
        self._own_state_dir = self.config.state_dir is None
        self.state_dir = (
            self.config.state_dir
            if self.config.state_dir is not None
            else tempfile.mkdtemp(prefix="repro-shard-")
        )
        self.supervisor = WorkerSupervisor(
            self.config, state_dir=self.state_dir, obs=obs, fault_plan=fault_plan
        )
        self.gateway = ShardGateway(
            self.supervisor, self.config, obs=obs, tracer=tracer
        )
        self.telemetry: Optional[TelemetryServer] = (
            TelemetryServer(
                self.supervisor, gateway=self.gateway, port=telemetry_port
            )
            if telemetry_port is not None
            else None
        )

    async def start(self) -> None:
        await self.supervisor.start()
        await self.gateway.start()
        if self.telemetry is not None:
            await self.telemetry.start()

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def verdicts_delivered(self) -> int:
        return self.gateway.rounds_proxied

    def worker_spans(self) -> List:
        """Every span the workers have flushed to their JSONL files.

        Call *before* :meth:`close` when the cluster owns its state
        directory — close removes it along with the span files.
        """
        return load_span_files(
            worker_spans_path(self.state_dir, worker_id)
            for worker_id in self.config.worker_ids()
        )

    async def close(self) -> None:
        if self.telemetry is not None:
            await self.telemetry.close()
        await self.gateway.close()
        await self.supervisor.close()
        if self._own_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)

    async def __aenter__(self) -> "ShardCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


# ----------------------------------------------------------------------
# the kill-a-worker drill
# ----------------------------------------------------------------------


@dataclass
class DrillResult:
    """What the drill measured; ``ok`` is the zero-loss verdict."""

    groups: int
    rounds: int
    expected_verdicts: int
    verdicts_completed: int
    lost_verdicts: int
    protocol_errors: int
    mismatches: List[str] = field(default_factory=list)
    killed_worker: str = ""
    killed_pid: int = -1
    kill_after_verdicts: int = 0
    groups_resharded: int = 0
    failovers: int = 0
    failover_latency_s: float = 0.0
    cached_verdicts: int = 0
    wall_s: float = 0.0
    #: Verdict count a live scrape of the gateway's ``/metrics``
    #: reported (sum over ``serve_verdicts_total``); -1 = not scraped.
    scraped_verdicts: int = -1
    #: HTTP status of the post-kill ``/healthz`` probe (503 = degraded,
    #: the expected answer once a worker has been killed); 0 = not
    #: probed.
    health_status: int = 0
    #: Late rejections the ``/slo`` endpoint reported; -1 = not probed.
    slo_late_rejections: int = -1
    #: Spans in the merged reader+gateway+worker trace.
    trace_spans: int = 0
    #: Span-tree digest of that merged trace — invariant across worker
    #: counts and ``--jobs`` for the same seeded scenario.
    trace_digest: str = ""
    #: Wire version the drill's readers offered (the gateway<->worker
    #: hop negotiates independently from :attr:`ShardConfig.
    #: wire_versions`).
    wire_version: int = 1
    #: Client-side round overlap per reader session.
    pipeline_depth: int = 1

    @property
    def ok(self) -> bool:
        return (
            self.lost_verdicts == 0
            and self.protocol_errors == 0
            and not self.mismatches
            # A scrape, when taken, must account for every verdict: the
            # registry copies embedded in the per-verdict group
            # snapshots make the aggregated counters exact even across
            # the SIGKILL.
            and (
                self.scraped_verdicts < 0
                or self.scraped_verdicts == self.verdicts_completed
            )
        )


def _reference_sequence(
    spec: ShardGroupSpec, rounds: int
) -> List[Tuple[str, int, int]]:
    """The in-process verdict sequence for one group — the ground truth
    sharded serving must reproduce bit-for-bit (PR 5 pinned wire ≡
    in-process; this drill pins sharded-wire ≡ wire)."""
    requirement = MonitorRequirement(
        spec.population, spec.tolerance, spec.confidence
    )
    monitor = MonitoringServer(
        requirement,
        rng=np.random.default_rng(spec.seed + 1),
        counter_tags=spec.counter_tags,
        comm_budget=spec.comm_budget,
    )
    tags = TagPopulation.create(
        spec.population,
        uses_counter=spec.counter_tags,
        rng=np.random.default_rng(spec.seed),
    )
    monitor.register(tags.ids.tolist())
    channel = SlottedChannel(tags.tags)
    sequence = []
    for _ in range(rounds):
        report = monitor.check_trp(channel)
        sequence.append(
            (
                report.result.verdict.value,
                int(report.result.frame_size),
                len(report.result.mismatched_slots),
            )
        )
    return sequence


async def _run_drill_async(
    config: ShardConfig,
    rounds: int,
    kill_fraction: float,
    concurrency: int,
    obs=None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    telemetry_port: Optional[int] = 0,
    wire_version: int = 1,
    pipeline_depth: int = 1,
) -> DrillResult:
    from ..fleet.remote import RemoteCampaignConfig, drive_remote_campaign_async

    expected = config.groups * rounds
    kill_after = max(1, int(expected * kill_fraction))
    references = {
        spec.name: _reference_sequence(spec, rounds)
        for spec in config.group_specs()
    }

    # The drill is always traced: the reader and gateway tracers live
    # here, the workers flush theirs to the cluster's state dir, and
    # the three merge into one causal trace after the campaign.
    reader_tracer = Tracer("reader")
    gateway_tracer = Tracer("gateway")

    started = time.perf_counter()
    async with ShardCluster(
        config, obs=obs, tracer=gateway_tracer, telemetry_port=telemetry_port
    ) as cluster:
        supervisor = cluster.supervisor

        killed: Dict[str, int] = {}

        async def killer() -> None:
            while cluster.gateway.rounds_proxied < kill_after:
                await asyncio.sleep(0.005)
            # The busiest victim: the live worker owning the most
            # groups maximises the re-shard the drill must survive.
            load: Dict[str, int] = {}
            for owner in supervisor.owners.values():
                load[owner] = load.get(owner, 0) + 1
            candidates = [
                wid
                for wid in sorted(load, key=lambda w: (-load[w], w))
                if supervisor.handles[wid].is_running()
            ]
            if not candidates:
                return
            victim = candidates[0]
            killed["worker"] = victim
            killed["pid"] = supervisor.kill_worker(victim)

        campaign_config = RemoteCampaignConfig(
            host="127.0.0.1",
            port=cluster.port,
            groups=config.groups,
            rounds=rounds,
            protocol="trp",
            population=config.population,
            tolerance=config.tolerance,
            confidence=config.confidence,
            seed=config.seed,
            counter_tags=False,
            group_prefix=config.group_prefix,
            concurrency=concurrency,
            wire_version=wire_version,
            pipeline_depth=pipeline_depth,
        )
        kill_task = asyncio.ensure_future(killer())
        try:
            result = await drive_remote_campaign_async(
                campaign_config, tracer=reader_tracer
            )
        finally:
            kill_task.cancel()
            await asyncio.gather(kill_task, return_exceptions=True)

        # Scrape the live telemetry endpoints while the cluster is
        # still up: the aggregated verdict counters must account for
        # every delivered verdict, killed worker included.
        scraped_verdicts = -1
        health_status = 0
        slo_late = -1
        if cluster.telemetry is not None:
            port = cluster.telemetry.port
            status, body = await http_get("127.0.0.1", port, "/metrics")
            if status == 200:
                scraped_verdicts = int(
                    sum_family(
                        parse_prometheus_text(body), "serve_verdicts_total"
                    )
                )
            if metrics_out:
                with open(metrics_out, "w") as fh:
                    fh.write(body)
            health_status, _ = await http_get("127.0.0.1", port, "/healthz")
            status, body = await http_get("127.0.0.1", port, "/slo")
            if status == 200:
                slo_late = int(json.loads(body)["late_rejections_total"])

        # Merge the three tracers' spans before close() deletes the
        # worker span files along with the state dir.
        spans = merge_spans(
            reader_tracer.spans, gateway_tracer.spans, cluster.worker_spans()
        )
        trace_digest = span_tree_digest(spans)
        if trace_out:
            write_spans_jsonl(spans, trace_out)

        mismatches: List[str] = []
        for name, reference in sorted(references.items()):
            observed = [
                (r.verdict, r.frame_size, r.mismatched_slots)
                for r in result.per_group.get(name, [])
            ]
            if observed != reference:
                mismatches.append(
                    f"{name}: observed {observed} != reference {reference}"
                )

        latencies = supervisor.failover_latencies
        return DrillResult(
            groups=config.groups,
            rounds=rounds,
            expected_verdicts=expected,
            verdicts_completed=result.rounds_completed,
            lost_verdicts=expected - result.rounds_completed,
            protocol_errors=len(result.protocol_errors),
            mismatches=mismatches,
            killed_worker=killed.get("worker", ""),
            killed_pid=killed.get("pid", -1),
            kill_after_verdicts=kill_after,
            groups_resharded=supervisor.reshards,
            failovers=supervisor.failovers,
            failover_latency_s=max(latencies) if latencies else 0.0,
            cached_verdicts=cluster.gateway.cached_verdicts_served,
            wall_s=time.perf_counter() - started,
            scraped_verdicts=scraped_verdicts,
            health_status=health_status,
            slo_late_rejections=slo_late,
            trace_spans=len(spans),
            trace_digest=trace_digest,
            wire_version=wire_version,
            pipeline_depth=pipeline_depth,
        )


def run_drill(
    config: Optional[ShardConfig] = None,
    rounds: int = 3,
    kill_fraction: float = 0.25,
    concurrency: int = 8,
    obs=None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    telemetry_port: Optional[int] = 0,
    wire_version: int = 1,
    pipeline_depth: int = 1,
) -> DrillResult:
    """Run the kill-a-worker drill; see the module docstring.

    The drill needs stateless groups for its bit-identity claim, so
    ``counter_tags`` is forced off whatever the config says.

    Args:
        trace_out: write the merged reader+gateway+worker trace here
            as span JSONL (the CI artifact).
        metrics_out: write the final ``/metrics`` scrape body here.
        telemetry_port: port for the live telemetry endpoints during
            the drill (0 = ephemeral, the default; ``None`` disables
            telemetry and the scrape assertions with it).
        wire_version: framing the drill's readers offer the gateway
            (2 = negotiate the binary framing; the verdict sequence
            must stay bit-identical either way).
        pipeline_depth: reader-side round overlap; > 1 requires
            ``wire_version`` 2.

    Raises:
        ValueError: on a nonsensical kill fraction, round count or
            wire shape.
    """
    if not 0.0 < kill_fraction < 1.0:
        raise ValueError("kill_fraction must be in (0, 1)")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if wire_version not in (1, 2):
        raise ValueError(f"wire_version must be 1 or 2, got {wire_version!r}")
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    if pipeline_depth > 1 and wire_version < 2:
        raise ValueError("pipeline_depth > 1 requires wire_version 2")
    cfg = config if config is not None else ShardConfig()
    if cfg.counter_tags:
        cfg = dataclasses.replace(cfg, counter_tags=False)
    return asyncio.run(
        _run_drill_async(
            cfg,
            rounds,
            kill_fraction,
            concurrency,
            obs=obs,
            trace_out=trace_out,
            metrics_out=metrics_out,
            telemetry_port=telemetry_port,
            wire_version=wire_version,
            pipeline_depth=pipeline_depth,
        )
    )


def format_drill_result(result: DrillResult) -> str:
    """Human-readable drill report; CI greps the zero lines."""
    return "\n".join(
        [
            f"groups                 : {result.groups}",
            f"rounds per group       : {result.rounds}",
            f"reader wire            : v{result.wire_version}, "
            f"pipeline depth {result.pipeline_depth}",
            f"verdicts expected      : {result.expected_verdicts}",
            f"verdicts completed     : {result.verdicts_completed}",
            f"lost verdicts          : {result.lost_verdicts}",
            f"protocol errors        : {result.protocol_errors}",
            f"verdict mismatches     : {len(result.mismatches)}",
            f"killed worker          : {result.killed_worker or 'none'}"
            + (
                f" (pid {result.killed_pid}) after "
                f"{result.kill_after_verdicts} verdicts"
                if result.killed_worker
                else ""
            ),
            f"groups re-sharded      : {result.groups_resharded}",
            f"failovers              : {result.failovers}",
            f"failover latency       : {result.failover_latency_s:.3f} s",
            f"cached verdicts served : {result.cached_verdicts}",
            f"telemetry verdicts     : "
            + (
                str(result.scraped_verdicts)
                if result.scraped_verdicts >= 0
                else "not scraped"
            ),
            f"health after kill      : "
            + (
                f"HTTP {result.health_status}"
                if result.health_status
                else "not probed"
            ),
            f"trace spans            : {result.trace_spans}",
            f"trace digest           : {result.trace_digest[:16] or 'n/a'}",
            f"wall time              : {result.wall_s:.3f} s",
            f"drill                  : {'PASS' if result.ok else 'FAIL'}",
        ]
        + [f"  mismatch: {m}" for m in result.mismatches[:5]]
    )
