"""The sharded-serving scaling benchmark behind ``BENCH_shard.json``.

Measures round throughput of a 1-worker cluster and an N-worker
cluster under the identical load (the serve loadgen in null-reader
mode, so the measured work is the *server side*: challenge issuance,
bitstring verification, per-verdict snapshot durability and the wire),
and records both plus their ratio as a ``repro.obs.bench/v1`` document.

The ratio is gated in CI by ``benchmarks/check_shard_scaling.py``,
which scales its expectation by the host's core count — a 4-worker
cluster cannot beat 1 worker on a 1-core container, and the gate must
hold on any hardware (the ``check_batched_speedup`` philosophy).
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs.bench import make_bench_record
from ..serve.loadgen import LoadgenConfig, LoadgenResult, _run_loadgen_async
from .cluster import ShardCluster
from .config import DEFAULT_SEED, ShardConfig

__all__ = ["ShardBenchConfig", "ShardBenchResult", "run_shard_bench", "format_shard_bench"]


@dataclass(frozen=True)
class ShardBenchConfig:
    """Shape of one scaling measurement.

    Raises:
        ValueError: on non-positive shape values.
    """

    workers: int = 4
    baseline_workers: int = 1
    groups: int = 40
    rounds: int = 5
    concurrency: int = 16
    population: int = 1200
    tolerance: int = 4
    confidence: float = 0.9
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        for name in (
            "workers",
            "baseline_workers",
            "groups",
            "rounds",
            "concurrency",
            "population",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.baseline_workers >= self.workers:
            raise ValueError("workers must exceed baseline_workers")


@dataclass
class ShardBenchResult:
    """Both measurements plus the scaling ratio, schema-valid."""

    throughput_baseline_rps: float
    throughput_sharded_rps: float
    speedup: float
    cpu_count: int
    workers: int
    baseline_workers: int
    protocol_errors: int
    #: Gateway circuit-breaker opens across both runs — a clean load
    #: must never trip a breaker, so the gate is simply zero.
    breaker_opens: int = 0
    record: dict = field(default_factory=dict)


async def _campaign(
    bench: ShardBenchConfig, workers: int, obs=None
):
    shard_config = ShardConfig(
        workers=workers,
        groups=bench.groups,
        population=bench.population,
        tolerance=bench.tolerance,
        confidence=bench.confidence,
        seed=bench.seed,
        counter_tags=False,
    )
    load = LoadgenConfig(
        groups=bench.groups,
        rounds=bench.rounds,
        concurrency=bench.concurrency,
        population=bench.population,
        tolerance=bench.tolerance,
        confidence=bench.confidence,
        protocol="trp",
        seed=bench.seed,
        group_prefix=shard_config.group_prefix,
        counter_tags=False,
        reader="null",
    )
    async with ShardCluster(shard_config, obs=obs) as cluster:
        result = await _run_loadgen_async(load, "127.0.0.1", cluster.port)
        return result, cluster.gateway.breaker_opens


def _loadgen_timing(name: str, workers: int, result: LoadgenResult) -> dict:
    return {
        "name": name,
        "kind": "shard-loadgen",
        "reps": max(1, result.rounds_completed),
        "wall_s_total": result.wall_s_total,
        "wall_s_mean": result.wall_s_total / max(1, result.rounds_completed),
        "wall_s_min": result.wall_s_total,
        "wall_s_max": result.wall_s_total,
        "sim_air_us_total": 0.0,
        "workers": workers,
        "throughput_rps": result.throughput_rps,
        "rounds": result.rounds_completed,
        "protocol_errors": result.protocol_errors,
        "latency_p95_ms": result.latency_p95_ms,
    }


async def _run_shard_bench_async(
    bench: ShardBenchConfig, obs=None
) -> ShardBenchResult:
    started = time.perf_counter()
    baseline, baseline_breaker_opens = await _campaign(
        bench, bench.baseline_workers, obs=obs
    )
    sharded, sharded_breaker_opens = await _campaign(
        bench, bench.workers, obs=obs
    )
    breaker_opens = baseline_breaker_opens + sharded_breaker_opens
    wall = time.perf_counter() - started

    speedup = (
        sharded.throughput_rps / baseline.throughput_rps
        if baseline.throughput_rps > 0
        else 0.0
    )
    cpu_count = os.cpu_count() or 1
    timings = [
        _loadgen_timing(
            f"shard.loadgen.workers{bench.baseline_workers}",
            bench.baseline_workers,
            baseline,
        ),
        _loadgen_timing(
            f"shard.loadgen.workers{bench.workers}", bench.workers, sharded
        ),
        {
            "name": "shard.scaling",
            "kind": "shard-scaling",
            "reps": 1,
            "wall_s_total": wall,
            "wall_s_mean": wall,
            "wall_s_min": wall,
            "wall_s_max": wall,
            "sim_air_us_total": 0.0,
            "workers": bench.workers,
            "baseline_workers": bench.baseline_workers,
            "cpu_count": cpu_count,
            "groups": bench.groups,
            "rounds_per_group": bench.rounds,
            "population": bench.population,
            "throughput_baseline_rps": baseline.throughput_rps,
            "throughput_sharded_rps": sharded.throughput_rps,
            "speedup": speedup,
            "protocol_errors": baseline.protocol_errors
            + sharded.protocol_errors,
            "breaker_opens": breaker_opens,
        },
    ]
    record = make_bench_record(timings, quick=False, label="shard-scaling")
    return ShardBenchResult(
        throughput_baseline_rps=baseline.throughput_rps,
        throughput_sharded_rps=sharded.throughput_rps,
        speedup=speedup,
        cpu_count=cpu_count,
        workers=bench.workers,
        baseline_workers=bench.baseline_workers,
        protocol_errors=baseline.protocol_errors + sharded.protocol_errors,
        breaker_opens=breaker_opens,
        record=record,
    )


def run_shard_bench(
    config: Optional[ShardBenchConfig] = None, obs=None
) -> ShardBenchResult:
    """Measure 1-worker vs N-worker throughput under identical load."""
    bench = config if config is not None else ShardBenchConfig()
    return asyncio.run(_run_shard_bench_async(bench, obs=obs))


def format_shard_bench(result: ShardBenchResult) -> str:
    """Human-readable scaling summary for the CLI."""
    return "\n".join(
        [
            f"baseline ({result.baseline_workers} worker) : "
            f"{result.throughput_baseline_rps:.1f} rounds/s",
            f"sharded  ({result.workers} workers): "
            f"{result.throughput_sharded_rps:.1f} rounds/s",
            f"speedup          : {result.speedup:.2f}x",
            f"host cores       : {result.cpu_count}",
            f"protocol errors  : {result.protocol_errors}",
            f"breaker opens    : {result.breaker_opens}",
        ]
    )
