"""Group snapshots and deterministic restore — the failover substrate.

Zero-verdict-loss failover needs two things from a snapshot:

1. **durability** — the snapshot a worker writes *before* flushing a
   VERDICT frame must contain everything a survivor needs to carry the
   group on (``server.state`` v2 covers counters, labels and issued
   seeds; this module adds the round history and the verdict itself);
2. **determinism** — the restored group must issue the *same* future
   challenges the dead worker would have. ``import_state`` alone cannot
   give that (a restored issuer draws fresh randomness); instead the
   survivor rebuilds the group from its spec — same ``create_group``
   seeds, hence the same issuer RNG stream — and *replays* the recorded
   per-round issuance to fast-forward that stream to the crash point.
   The next challenge out of the restored group is bit-identical to the
   one the dead worker issued (or would have issued), which is what
   lets the gateway transparently retry an in-flight round.

The snapshot file is one JSON document per group, written atomically
(tmp + rename) into the cluster's state directory, so a half-written
snapshot can never be adopted.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

import numpy as np

from ..server.state import export_state, import_resync, import_state
from .config import ShardGroupSpec

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "snapshot_path",
    "snapshot_doc",
    "initial_snapshot",
    "write_snapshot",
    "load_snapshot",
    "restore_group",
]

SNAPSHOT_FORMAT = "repro-rfid-shard-snapshot"
SNAPSHOT_VERSION = 1


def snapshot_path(state_dir: str, group: str) -> str:
    """Where ``group``'s snapshot lives under ``state_dir``."""
    return os.path.join(state_dir, f"{group}.snapshot.json")


def snapshot_doc(
    spec: ShardGroupSpec,
    monitor=None,
    protocol_history: Optional[List[str]] = None,
    last_verdict: Optional[dict] = None,
    resync=None,
    metrics: Optional[dict] = None,
) -> dict:
    """Build a snapshot document for one group.

    Args:
        spec: the deterministic rebuild recipe.
        monitor: the live :class:`~repro.core.monitor.MonitoringServer`;
            ``None`` for a pre-first-round snapshot (spec only).
        protocol_history: ``"trp"``/``"utrp"`` per issued round, in
            order — the replay script.
        last_verdict: the VERDICT payload of the most recent round,
            verbatim; re-sent when a worker died after verifying but
            before the frame reached the reader.
        resync: in-flight counter recovery, forwarded to
            ``server.state``.
        metrics: registry snapshots by source worker
            (:func:`repro.obs.agg.snapshot_registry` docs). Embedded in
            the *same* atomic write as the verdict state on purpose: a
            SIGKILL can never separate "this round's verdict is
            servable from the snapshot" from "this round is counted in
            a persisted registry" — the scrape-exactness requirement.
    """
    history = list(protocol_history or [])
    doc = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "group": spec.name,
        "spec": spec.to_dict(),
        "protocol_history": history,
        "rounds_verified": len(history),
        "last_verdict": last_verdict,
        "state": None,
    }
    if metrics:
        doc["metrics"] = metrics
    if monitor is not None:
        doc["state"] = export_state(
            monitor.database, monitor.issuer, resync=resync
        )
    return doc


def initial_snapshot(spec: ShardGroupSpec) -> dict:
    """A snapshot for a group that has not run a round yet."""
    return snapshot_doc(spec)


def write_snapshot(state_dir: str, doc: dict) -> str:
    """Atomically persist ``doc``; returns the final path."""
    os.makedirs(state_dir, exist_ok=True)
    path = snapshot_path(state_dir, doc["group"])
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh)
    os.replace(tmp, path)
    return path


def load_snapshot(state_dir: str, group: str) -> Optional[dict]:
    """The group's persisted snapshot, or ``None`` if never written.

    Raises:
        ValueError: on a file that is not a shard snapshot.
    """
    path = snapshot_path(state_dir, group)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        doc = json.load(fh)
    _validate(doc)
    return doc


def _validate(doc: dict) -> None:
    if doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError("not a shard snapshot document")
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {doc.get('version')!r}"
        )
    if not isinstance(doc.get("protocol_history"), list):
        raise ValueError("malformed snapshot: missing protocol_history")
    for proto in doc["protocol_history"]:
        if proto not in ("trp", "utrp"):
            raise ValueError(f"malformed snapshot: bad protocol {proto!r}")


def restore_group(
    service, doc: dict
) -> Tuple[ShardGroupSpec, int, Optional[dict]]:
    """Rebuild a snapshotted group onto ``service``, RNG-exact.

    The sequence is load-bearing:

    1. ``create_group`` from the spec — same seeds as the original, so
       tag IDs and the issuer stream match the dead worker's at birth;
    2. replay issuance per ``protocol_history`` — each recorded round
       consumes exactly the challenge the original round consumed
       (sizes and timers are pure functions of the requirement), so
       the RNG stream fast-forwards to the crash point;
    3. overlay persisted counters / issued seeds / resync — verification
       state the replay cannot reconstruct (counters advance on
       *verify*, not on issue).

    Returns:
        ``(spec, rounds_verified, last_verdict)``.

    Raises:
        ValueError: on a malformed snapshot or one whose persisted tag
            IDs disagree with the deterministic rebuild (a snapshot
            from a different seed or a corrupted file).
    """
    _validate(doc)
    spec = ShardGroupSpec.from_dict(doc.get("spec") or {})
    group = service.create_group(
        spec.name,
        spec.population,
        spec.tolerance,
        spec.confidence,
        seed=spec.seed,
        counter_tags=spec.counter_tags,
        comm_budget=spec.comm_budget,
    )
    monitor = group.monitor

    history = list(doc["protocol_history"])
    for proto in history:
        if proto == "trp":
            monitor.issuer.trp_challenge(group.trp_frame_size)
        else:
            frame_size, timer_us = group.utrp_plan()
            monitor.issuer.utrp_challenge(frame_size, timer_us)

    state = doc.get("state")
    if state is not None:
        database, issuer = import_state(state)
        if database.ids.tolist() != monitor.database.ids.tolist():
            raise ValueError(
                f"snapshot for {spec.name!r} does not match its spec: "
                "persisted tag IDs disagree with the deterministic rebuild"
            )
        monitor.database.set_counters(np.asarray(database.counters))
        # Union, not replace: the replay above already re-marked the
        # replayed seeds, and the persisted set additionally covers
        # pre-snapshot history (e.g. a round verified on a previous
        # owner whose issuance this owner also replayed).
        monitor.issuer._issued.update(issuer._issued)
        resync = import_resync(state)
        if resync is not None:
            group.pending_resync = resync

    # The monitor's round counter feeds report indexing; the group's
    # feeds the wire `round` field. Both resume where the history ends.
    monitor._rounds = len(history)
    group.rounds_issued = len(history)
    rounds_verified = int(doc.get("rounds_verified", len(history)))
    return spec, rounds_verified, doc.get("last_verdict")
