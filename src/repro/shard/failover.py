"""Group snapshots and deterministic restore — the failover substrate.

Zero-verdict-loss failover needs two things from a snapshot:

1. **durability** — the snapshot a worker writes *before* flushing a
   VERDICT frame must contain everything a survivor needs to carry the
   group on (``server.state`` v2 covers counters, labels and issued
   seeds; this module adds the round history and the verdict itself);
2. **determinism** — the restored group must issue the *same* future
   challenges the dead worker would have. ``import_state`` alone cannot
   give that (a restored issuer draws fresh randomness); instead the
   survivor rebuilds the group from its spec — same ``create_group``
   seeds, hence the same issuer RNG stream — and *replays* the recorded
   per-round issuance to fast-forward that stream to the crash point.
   The next challenge out of the restored group is bit-identical to the
   one the dead worker issued (or would have issued), which is what
   lets the gateway transparently retry an in-flight round.

The snapshot file is one JSON document per group, written atomically
(tmp + rename) into the cluster's state directory, so a half-written
snapshot can never be adopted.
"""

from __future__ import annotations

import errno
import json
import os
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..faults.models import DISK_FAULT_KINDS, DiskFaultModel
from ..server.state import export_state, import_resync, import_state
from .config import ShardGroupSpec

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "snapshot_path",
    "snapshot_doc",
    "initial_snapshot",
    "write_snapshot",
    "load_snapshot",
    "reconcile_snapshots",
    "restore_group",
]

SNAPSHOT_FORMAT = "repro-rfid-shard-snapshot"
SNAPSHOT_VERSION = 1


def snapshot_path(state_dir: str, group: str) -> str:
    """Where ``group``'s snapshot lives under ``state_dir``."""
    return os.path.join(state_dir, f"{group}.snapshot.json")


def snapshot_doc(
    spec: ShardGroupSpec,
    monitor=None,
    protocol_history: Optional[List[str]] = None,
    last_verdict: Optional[dict] = None,
    resync=None,
    metrics: Optional[dict] = None,
) -> dict:
    """Build a snapshot document for one group.

    A churned group additionally carries its ``population_epoch`` and
    the full ``membership_log`` (both read off the monitor). The log is
    the replay script for membership: each entry records which round
    count it landed at, so :func:`restore_group` can interleave deltas
    with challenge replay and reproduce every frame size the original
    owner used. Never-churned groups omit both keys, keeping their
    snapshots byte-identical to pre-churn builds.

    Args:
        spec: the deterministic rebuild recipe.
        monitor: the live :class:`~repro.core.monitor.MonitoringServer`;
            ``None`` for a pre-first-round snapshot (spec only).
        protocol_history: ``"trp"``/``"utrp"`` per issued round, in
            order — the replay script.
        last_verdict: the VERDICT payload of the most recent round,
            verbatim; re-sent when a worker died after verifying but
            before the frame reached the reader.
        resync: in-flight counter recovery, forwarded to
            ``server.state``.
        metrics: registry snapshots by source worker
            (:func:`repro.obs.agg.snapshot_registry` docs). Embedded in
            the *same* atomic write as the verdict state on purpose: a
            SIGKILL can never separate "this round's verdict is
            servable from the snapshot" from "this round is counted in
            a persisted registry" — the scrape-exactness requirement.
    """
    history = list(protocol_history or [])
    doc = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "group": spec.name,
        "spec": spec.to_dict(),
        "protocol_history": history,
        "rounds_verified": len(history),
        "last_verdict": last_verdict,
        "state": None,
    }
    if metrics:
        doc["metrics"] = metrics
    if monitor is not None:
        doc["state"] = export_state(
            monitor.database,
            monitor.issuer,
            resync=resync,
            population_epoch=getattr(monitor, "population_epoch", 0),
        )
        log = getattr(monitor, "membership_log", None)
        if log:
            doc["population_epoch"] = int(monitor.population_epoch)
            doc["membership_log"] = [dict(entry) for entry in log]
    return doc


def initial_snapshot(spec: ShardGroupSpec) -> dict:
    """A snapshot for a group that has not run a round yet."""
    return snapshot_doc(spec)


def write_snapshot(state_dir: str, doc: dict, fault: Optional[str] = None) -> str:
    """Atomically persist ``doc``; returns the final path.

    The write is read-back verified: the temp file is re-parsed before
    the atomic rename, so a torn or short write never replaces the
    previous good snapshot — it is detected, the temp file is
    discarded, and :class:`OSError` surfaces for the caller to retry.
    The snapshot on disk therefore only ever moves forward; the only
    way to corrupt it is behind the writer's back (which
    :func:`load_snapshot` survives at read time).

    Args:
        fault: a :data:`~repro.faults.models.DISK_FAULT_KINDS` entry to
            inflict on this write (chaos drills only; ``None`` = the
            honest path). Every kind raises :class:`OSError` and leaves
            the previous snapshot intact — ``enospc`` before a byte
            lands, ``fsync-fail`` after the temp write, ``torn-write``
            / ``short-write`` at read-back verification.

    Raises:
        OSError: for every injected fault mode (and for any real
            filesystem failure).
        ValueError: on an unknown fault kind.
    """
    if fault is not None and fault not in DISK_FAULT_KINDS:
        raise ValueError(f"unknown disk-fault kind {fault!r}")
    os.makedirs(state_dir, exist_ok=True)
    path = snapshot_path(state_dir, doc["group"])
    tmp = f"{path}.tmp"
    if fault == "enospc":
        # The write fails before a byte lands; no temp file to clean.
        raise OSError(errno.ENOSPC, "injected: no space left on device", tmp)
    payload = json.dumps(doc)
    if fault == "torn-write":
        payload = payload[: DiskFaultModel.torn_prefix(len(payload))]
    elif fault == "short-write":
        payload = payload[: DiskFaultModel.short_prefix(len(payload))]
    with open(tmp, "w") as fh:
        fh.write(payload)
    if fault == "fsync-fail":
        # Data written, flush failed: discard the temp file, keep the
        # previous snapshot — what a correct writer does on EIO.
        os.unlink(tmp)
        raise OSError(errno.EIO, "injected: fsync failed", tmp)
    try:
        with open(tmp) as fh:
            if json.load(fh) != doc:
                raise ValueError("read-back does not match document")
    except ValueError as error:
        os.unlink(tmp)
        raise OSError(
            errno.EIO, f"torn write caught at read-back ({error})", tmp
        ) from error
    os.replace(tmp, path)
    return path


def load_snapshot(
    state_dir: str,
    group: str,
    on_corrupt: Optional[Callable[[str, Exception], None]] = None,
) -> Optional[dict]:
    """The group's persisted snapshot, or ``None``.

    ``None`` means *no usable snapshot*: never written, or the file on
    disk is torn / truncated / garbage. Corruption is survivable by
    design — the caller falls back to ``initial_snapshot`` and the
    group replays from round zero, deterministically — so it must
    never raise out of a failover path. ``on_corrupt(group, error)``
    fires exactly once per corrupt read so the supervisor can count
    ``shard_snapshot_corrupt_total``.
    """
    path = snapshot_path(state_dir, group)
    try:
        with open(path) as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(
                f"snapshot for {group!r} is not a JSON object"
            )
        _validate(doc)
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as error:
        # json.JSONDecodeError subclasses ValueError: torn writes,
        # empty files and foreign documents all land here.
        if on_corrupt is not None:
            on_corrupt(group, error)
        return None
    return doc


def reconcile_snapshots(
    primary: Optional[dict], secondary: Optional[dict]
) -> Optional[dict]:
    """Merge two snapshot generations of one group, freshest wins.

    The anti-entropy step of a hand-back: the releasing survivor's
    final document and whatever the rejoined worker still has on disk
    may disagree (the disk copy predates the failover, or a torn write
    ate one of them). The longer verdict history wins outright, with
    the population epoch breaking ties (a membership delta between two
    rounds advances the epoch without advancing ``rounds_verified``,
    and serving the pre-delta set would silently undo the churn);
    embedded metrics are merged per source with max-``seq`` semantics
    (via dict union — each source's snapshot is already internally
    consistent, and a higher ``rounds_verified`` implies
    same-or-newer ``seq`` for every family that source owns).
    """
    if primary is None:
        return secondary
    if secondary is None:
        return primary

    def freshness(doc: dict) -> Tuple[int, int]:
        return (
            int(doc.get("rounds_verified", 0)),
            int(doc.get("population_epoch", 0)),
        )

    newer, older = primary, secondary
    if freshness(older) > freshness(newer):
        newer, older = older, newer
    merged = dict(newer)
    metrics = dict(older.get("metrics") or {})
    for source, snap in (newer.get("metrics") or {}).items():
        have = metrics.get(source)
        if have is None or _metrics_seq(snap) >= _metrics_seq(have):
            metrics[source] = snap
    if metrics:
        merged["metrics"] = metrics
    return merged


def _metrics_seq(snap: dict) -> int:
    try:
        return int(snap.get("seq", 0))
    except (AttributeError, TypeError, ValueError):
        return 0


def _validate(doc: dict) -> None:
    if doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError("not a shard snapshot document")
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {doc.get('version')!r}"
        )
    if not isinstance(doc.get("protocol_history"), list):
        raise ValueError("malformed snapshot: missing protocol_history")
    for proto in doc["protocol_history"]:
        if proto not in ("trp", "utrp"):
            raise ValueError(f"malformed snapshot: bad protocol {proto!r}")
    log = doc.get("membership_log")
    if log is not None:
        if not isinstance(log, list) or not all(
            isinstance(entry, dict) for entry in log
        ):
            raise ValueError("malformed snapshot: bad membership_log")
        epoch = doc.get("population_epoch", len(log))
        if epoch != len(log):
            raise ValueError(
                f"malformed snapshot: population_epoch {epoch!r} disagrees "
                f"with a membership_log of {len(log)} entries"
            )


def restore_group(
    service, doc: dict
) -> Tuple[ShardGroupSpec, int, Optional[dict]]:
    """Rebuild a snapshotted group onto ``service``, RNG-exact.

    The sequence is load-bearing:

    1. ``create_group`` from the spec — same seeds as the original, so
       tag IDs and the issuer stream match the dead worker's at birth;
    2. replay issuance per ``protocol_history``, interleaved with the
       ``membership_log``: every delta whose ``at_round`` the history
       has reached is applied *before* that round's challenge is
       issued, so each replayed round sees the same ``(n, m)`` — hence
       the same frame size and timer — the original round used, and
       the RNG stream fast-forwards to the crash point at the latest
       population epoch;
    3. overlay persisted counters / issued seeds / resync — verification
       state the replay cannot reconstruct (counters advance on
       *verify*, not on issue).

    Returns:
        ``(spec, rounds_verified, last_verdict)``.

    Raises:
        ValueError: on a malformed snapshot or one whose persisted tag
            IDs disagree with the deterministic rebuild (a snapshot
            from a different seed or a corrupted file).
    """
    _validate(doc)
    spec = ShardGroupSpec.from_dict(doc.get("spec") or {})
    group = service.create_group(
        spec.name,
        spec.population,
        spec.tolerance,
        spec.confidence,
        seed=spec.seed,
        counter_tags=spec.counter_tags,
        comm_budget=spec.comm_budget,
    )
    monitor = group.monitor

    history = list(doc["protocol_history"])
    log = [dict(entry) for entry in doc.get("membership_log") or []]

    def replay_membership(entry: dict) -> None:
        monitor.apply_membership(
            entry["op"],
            entry["tag_ids"],
            replacement_ids=entry.get("replacement_ids") or None,
            labels=entry.get("labels") or None,
        )

    applied = 0
    for index, proto in enumerate(history):
        while applied < len(log) and int(log[applied]["at_round"]) <= index:
            replay_membership(log[applied])
            applied += 1
        if proto == "trp":
            monitor.issuer.trp_challenge(group.trp_frame_size)
        else:
            frame_size, timer_us = group.utrp_plan()
            monitor.issuer.utrp_challenge(frame_size, timer_us)
    while applied < len(log):
        replay_membership(log[applied])
        applied += 1
    # Replaying re-derives epoch and database membership; the recorded
    # log (with its original `at_round` stamps) replaces the replay's
    # so the *next* snapshot round-trips identically.
    monitor.membership_log = log

    state = doc.get("state")
    if state is not None:
        database, issuer = import_state(state)
        if database.ids.tolist() != monitor.database.ids.tolist():
            raise ValueError(
                f"snapshot for {spec.name!r} does not match its spec: "
                "persisted tag IDs disagree with the deterministic rebuild"
            )
        monitor.database.set_counters(np.asarray(database.counters))
        # Union, not replace: the replay above already re-marked the
        # replayed seeds, and the persisted set additionally covers
        # pre-snapshot history (e.g. a round verified on a previous
        # owner whose issuance this owner also replayed).
        monitor.issuer._issued.update(issuer._issued)
        resync = import_resync(state)
        if resync is not None:
            group.pending_resync = resync

    # The monitor's round counter feeds report indexing; the group's
    # feeds the wire `round` field. Both resume where the history ends.
    monitor._rounds = len(history)
    group.rounds_issued = len(history)
    rounds_verified = int(doc.get("rounds_verified", len(history)))
    return spec, rounds_verified, doc.get("last_verdict")
