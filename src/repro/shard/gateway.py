"""The sharded front door: one listener, N workers, zero new frames.

The gateway speaks unmodified ``repro.serve/v1`` to readers — a
:class:`~repro.serve.ReaderClient` cannot tell it from a single
:class:`~repro.serve.MonitoringService`. Internally each round is
proxied to the worker owning the round's group (per the supervisor's
ring) over a per-session upstream connection.

The interesting part is what happens when a worker dies mid-round.
The proxy loop holds the round's state (the relayed CHALLENGE, the
client's BITSTRING once received) and retries against the group's new
owner after failover:

* the restored group *re-issues the identical challenge* (snapshot
  replay fast-forwards its RNG — see :mod:`repro.shard.failover`), so
  the gateway verifies the re-issued CHALLENGE matches the one the
  reader already holds and simply does not relay it twice;
* if the dead worker had already verified the round (snapshot written)
  but the VERDICT frame died in its socket buffer, re-running the round
  would double-issue — instead the gateway serves the snapshot's cached
  ``last_verdict``, consuming the client's pending BITSTRING first.

Either way the reader sees an ordinary, gap-free round sequence: the
drill's "zero lost verdicts" is this module plus the snapshot ordering
in :class:`~repro.shard.worker.ShardWorkerService`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional

from ..obs.tracing import SpanContext, derive_span_id
from ..serve import protocol, wire
from ..serve.protocol import Frame, ProtocolError
from .config import ShardConfig

__all__ = ["CircuitBreaker", "ShardGateway"]

#: Transport failures that mean "this upstream is unusable", as opposed
#: to protocol-level trouble the worker itself reports via ERROR.
_UPSTREAM_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError)


class _SessionAborted(Exception):
    """Internal: the client connection is unusable; end the session."""


class CircuitBreaker:
    """Per-worker closed → open → half-open breaker.

    ``threshold`` consecutive failures open the breaker; while open,
    :meth:`allow` rejects attempts without touching the worker at all
    (a dead or stalling upstream stops costing a connect-and-timeout
    per retry). After ``open_s`` the next :meth:`allow` transitions to
    half-open and lets probes through: one success closes the breaker,
    one failure re-opens it and the clock restarts.

    The clock is injectable for tests; state changes are synchronous
    and only ever made from the event loop thread.
    """

    def __init__(
        self,
        threshold: int,
        open_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not open_s > 0.0:
            raise ValueError(f"open_s must be > 0, got {open_s}")
        self.threshold = threshold
        self.open_s = open_s
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self.opens = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Whether an attempt may proceed right now."""
        if self.state == "open":
            if self._clock() - self._opened_at >= self.open_s:
                self.state = "half-open"
                return True
            return False
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            if self.state != "open":
                self.opens += 1
            self.state = "open"
            self._opened_at = self._clock()
            self.failures = 0

    def reset(self) -> None:
        """Back to closed with a clean slate (worker rejoined)."""
        self.state = "closed"
        self.failures = 0


#: Numeric encoding of breaker states for the ``shard_breaker_state``
#: gauge: 0 closed, 1 open, 2 half-open.
_BREAKER_STATE_CODE = {"closed": 0, "open": 1, "half-open": 2}


class _FrameStream:
    """At-most-one outstanding ``read_frame`` over a StreamReader.

    The proxy must be able to wait on "client frame OR worker frame"
    and later resume waiting on whichever did not arrive — without ever
    having two reads racing on one stream (frames would interleave).

    ``idle_timeout_s`` is the mid-frame stall guard: reads forward it
    to the codec, which raises ``ProtocolError("idle-read")`` when the
    peer goes silent *inside* a frame. The gateway sets it on its
    worker-facing streams so a dribbling worker cannot wedge a relay.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        idle_timeout_s: Optional[float] = None,
    ):
        self._reader = reader
        self.idle_timeout_s = idle_timeout_s
        self._task: Optional[asyncio.Task] = None
        # Mutable: a HELLO negotiation switches this hop's framing. The
        # at-most-one-read invariant guarantees no read started under
        # the old codec is still pending when the switch happens.
        self.codec = wire.WireV1

    def pending(self) -> asyncio.Task:
        """The outstanding read task, created on first demand."""
        if self._task is None:
            self._task = asyncio.ensure_future(
                self.codec.read(
                    self._reader, idle_timeout_s=self.idle_timeout_s
                )
            )
        return self._task

    async def next(self) -> Optional[Frame]:
        task = self.pending()
        try:
            return await task
        except asyncio.CancelledError:
            # Cancellation (e.g. a wait_for timeout) must not leave an
            # orphaned read racing future readers of this stream.
            task.cancel()
            raise
        finally:
            self._task = None

    def take(self) -> Optional[Frame]:
        """Consume a completed pending read (after ``asyncio.wait``)."""
        task = self._task
        self._task = None
        return task.result()

    def cancel(self) -> None:
        if self._task is not None and not self._task.done():
            self._task.cancel()
        self._task = None


class _Upstream:
    def __init__(
        self,
        worker_id: str,
        reader,
        writer,
        idle_timeout_s: Optional[float] = None,
    ):
        self.worker_id = worker_id
        self.stream = _FrameStream(reader, idle_timeout_s=idle_timeout_s)
        self.writer = writer

    async def send(self, frame: Frame) -> None:
        self.writer.write(self.stream.codec.encode(frame))
        await self.writer.drain()

    def close(self) -> None:
        self.stream.cancel()
        self.writer.close()


def _same_challenge(first: Frame, second: Frame) -> bool:
    return (
        first["round"] == second["round"]
        and first["frame_size"] == second["frame_size"]
        and list(first["seeds"]) == list(second["seeds"])
        and first.get("timer_us") == second.get("timer_us")
    )


class ShardGateway:
    """Routes ``repro.serve/v1`` sessions across the worker fleet."""

    def __init__(self, supervisor, config: ShardConfig, obs=None, tracer=None):
        self.supervisor = supervisor
        self.config = config
        self.obs = obs
        self.tracer = tracer
        self.sessions_served = 0
        self.rounds_proxied = 0
        self.round_retries = 0
        self.cached_verdicts_served = 0
        self.relay_errors = 0
        self.breaker_opens = 0
        #: Per-worker circuit breakers, shared across every session
        #: this gateway serves (consecutive failures accumulate
        #: gateway-wide, which is the point).
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._session_tasks: set = set()
        # Pre-register so snapshots expose the family even at zero.
        for name in (
            "shard_sessions_total",
            "shard_rounds_proxied_total",
            "shard_round_retries_total",
            "shard_cached_verdicts_total",
            "shard_relay_errors_total",
            "shard_breaker_opens_total",
        ):
            self._count(name, 0)
        for worker_id in config.worker_ids():
            self._gauge("shard_breaker_state", 0, worker=worker_id)
        # A rejoined worker deserves a clean slate: reset its breaker
        # the moment the supervisor confirms the hand-back pass ended
        # (duck-typed so bare fakes without the hook still work).
        listeners = getattr(supervisor, "rejoin_listeners", None)
        if listeners is not None:
            listeners.append(self._on_worker_rejoined)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.obs is None:
            return
        self.obs.registry.counter(name, name.replace("_", " ")).inc(amount)

    def _gauge(self, name: str, value: float, **labels) -> None:
        if self.obs is None:
            return
        gauge = self.obs.registry.gauge(
            name,
            name.replace("_", " "),
            labelnames=tuple(sorted(labels)) if labels else (),
        )
        (gauge.labels(**labels) if labels else gauge).set(value)

    # -- circuit breakers ----------------------------------------------

    def breaker(self, worker_id: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one worker."""
        breaker = self.breakers.get(worker_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_failure_threshold,
                self.config.breaker_open_s,
            )
            self.breakers[worker_id] = breaker
        return breaker

    def breaker_allow(self, worker_id: str) -> bool:
        """Breaker admission for one attempt (syncs the state gauge)."""
        breaker = self.breaker(worker_id)
        allowed = breaker.allow()
        self._sync_breaker_gauge(worker_id, breaker)
        return allowed

    def record_breaker(self, worker_id: str, ok: bool) -> None:
        """Feed one attempt's outcome into the worker's breaker."""
        breaker = self.breaker(worker_id)
        was_open = breaker.opens
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()
        if breaker.opens > was_open:
            self.breaker_opens += breaker.opens - was_open
            self._count("shard_breaker_opens_total", breaker.opens - was_open)
        self._sync_breaker_gauge(worker_id, breaker)

    def breaker_states(self) -> Dict[str, str]:
        """worker id -> breaker state, for ``/healthz``."""
        return {
            worker_id: self.breakers[worker_id].state
            for worker_id in sorted(self.breakers)
        }

    def _sync_breaker_gauge(self, worker_id: str, breaker: CircuitBreaker) -> None:
        self._gauge(
            "shard_breaker_state",
            _BREAKER_STATE_CODE[breaker.state],
            worker=worker_id,
        )

    def _on_worker_rejoined(self, worker_id: str) -> None:
        breaker = self.breakers.get(worker_id)
        if breaker is not None:
            breaker.reset()
            self._sync_breaker_gauge(worker_id, breaker)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> None:
        self._server = await asyncio.start_server(
            self._accept,
            host=self.config.host if host is None else host,
            port=self.config.port if port is None else port,
        )

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._session_tasks):
            task.cancel()
        if self._session_tasks:
            await asyncio.gather(*self._session_tasks, return_exceptions=True)

    async def _accept(self, reader, writer) -> None:
        self.sessions_served += 1
        self._count("shard_sessions_total")
        task = asyncio.current_task()
        if task is not None:
            self._session_tasks.add(task)
            task.add_done_callback(self._session_tasks.discard)
        session = _ProxySession(self, reader, writer)
        try:
            await session.run()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # async context manager sugar (mirrors MonitoringService)
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "ShardGateway":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class _ProxySession:
    """One reader connection proxied across however many workers."""

    def __init__(self, gateway: ShardGateway, reader, writer):
        self.gateway = gateway
        self.supervisor = gateway.supervisor
        self.config = gateway.config
        self.client = _FrameStream(reader)
        self.writer = writer
        self.upstreams: Dict[str, _Upstream] = {}

    async def _send_client(self, frame: Frame) -> None:
        self.writer.write(self.client.codec.encode(frame))
        await self.writer.drain()

    async def _negotiate_client(self, offer: Frame) -> None:
        """Downstream HELLO: same contract as a serve session's."""
        chosen = protocol.choose_wire_version(
            offer["versions"], self.config.wire_versions
        )
        if chosen is None:
            await self._send_client(
                protocol.error_frame(
                    "unsupported-version",
                    f"no common wire version in {offer['versions']}; "
                    f"gateway speaks {list(self.config.wire_versions)}",
                )
            )
            return
        await self._send_client(protocol.hello_frame([chosen]))
        self.client.codec = wire.codec_for(chosen)

    # -- upstream plumbing ---------------------------------------------

    async def _upstream(self, handle) -> _Upstream:
        existing = self.upstreams.get(handle.worker_id)
        if existing is not None:
            return existing
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", handle.port
        )
        upstream = _Upstream(
            handle.worker_id,
            reader,
            writer,
            idle_timeout_s=self.config.frame_idle_timeout_s,
        )
        if max(self.config.wire_versions) >= 2:
            await self._negotiate_upstream(upstream, handle.port)
        self.upstreams[handle.worker_id] = upstream
        return upstream

    async def _negotiate_upstream(self, upstream: _Upstream, port: int) -> None:
        """Offer v2 on a fresh gateway->worker hop; fall back to v1.

        Negotiation is per-hop: whatever framing the *reader* speaks,
        the upstream leg runs the best framing the worker agrees to —
        frame semantics are identical, so the translation is free.
        """
        await upstream.send(protocol.hello_frame(self.config.wire_versions))
        try:
            reply = await asyncio.wait_for(
                upstream.stream.next(), self.config.upstream_timeout_s
            )
        except _UPSTREAM_ERRORS + (ProtocolError,):
            reply = None
        if reply is not None and reply.type == "HELLO":
            versions = reply["versions"]
            if len(versions) == 1 and versions[0] in self.config.wire_versions:
                upstream.stream.codec = wire.codec_for(versions[0])
            return
        if reply is not None and reply.type == "ERROR":
            return  # worker refused; this hop stays v1
        # Hang-up or nonsense: reconnect plainly and never re-offer.
        upstream.stream.cancel()
        upstream.writer.close()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        upstream.stream = _FrameStream(
            reader, idle_timeout_s=self.config.frame_idle_timeout_s
        )
        upstream.writer = writer

    async def _worker_trouble(self, worker_id: str) -> None:
        """Discard the upstream and let the supervisor triage."""
        upstream = self.upstreams.pop(worker_id, None)
        if upstream is not None:
            upstream.close()
        self.gateway.round_retries += 1
        self.gateway._count("shard_round_retries_total")
        try:
            await self.supervisor.worker_failed(worker_id)
        except RuntimeError:
            # Failover couldn't complete right now (e.g. every adoptive
            # target is itself mid-restart). That's this *attempt*
            # failing, not the session: the retry loop keeps trying
            # until the deadline, and a later trouble report re-runs
            # the failover once a worker is back.
            pass

    # -- the conversation ----------------------------------------------

    async def run(self) -> None:
        try:
            while True:
                try:
                    frame = await self.client.next()
                except ProtocolError as exc:
                    # Length-prefix damage: mirror the serve session —
                    # report once, then hang up (stream is desynced).
                    try:
                        await self._send_client(
                            protocol.error_frame(exc.code, exc.detail)
                        )
                    except (ConnectionError, OSError):
                        pass
                    break
                if frame is None:
                    break
                if frame.type == "ERROR":
                    continue  # peer-side complaint; carry on
                if frame.type == "HELLO":
                    await self._negotiate_client(frame)
                    continue
                if frame.type == "MEMBERSHIP":
                    await self._proxy_membership(frame)
                    continue
                if frame.type != "RESEED":
                    await self._send_client(
                        protocol.error_frame(
                            "unexpected-frame",
                            f"{frame.type} is not valid while awaiting "
                            "a request",
                        )
                    )
                    continue
                await self._proxy_round(frame)
        except _SessionAborted:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            self.client.cancel()
            for upstream in self.upstreams.values():
                upstream.close()
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _trace_setup(self, reseed: Frame):
        """``(parent context, upstream RESEED)`` for one round.

        When the reader sent a trace envelope, the gateway interposes
        its own span: the upstream RESEED carries the *gateway's* span
        as parent (hop+1), computed deterministically up front so
        worker spans parent correctly even though the gateway span is
        only recorded once the round ends. Untraced rounds forward the
        RESEED untouched.
        """
        envelope = reseed.get("trace")
        if envelope is None:
            return None, reseed
        parent = SpanContext.from_wire(envelope)
        own_id = derive_span_id(parent.trace_id, "gateway.round", parent.span_id)
        child = SpanContext(parent.trace_id, own_id, parent.hop + 1)
        return parent, protocol.with_trace(
            Frame(
                "RESEED",
                {k: v for k, v in reseed.payload.items() if k != "trace"},
            ),
            child.to_wire(),
        )

    def _finish_span(
        self,
        parent: Optional[SpanContext],
        group: str,
        verdict: Frame,
        worker_id: str = "",
        cached: bool = False,
    ) -> None:
        """Record ``gateway.round`` once the verdict reached the client.

        Digest-relevant fields are the verdict's seed-derived facts;
        *how* the round was served — which worker, whether the cached
        verdict stood in for a dead worker's lost frame — legitimately
        differs across worker counts and failover timing, so it rides
        in ``host_fields``.
        """
        if self.gateway.tracer is None or parent is None:
            return
        if verdict.type != "VERDICT":
            return
        self.gateway.tracer.span(
            "gateway.round",
            group,
            int(verdict["round"]),
            parent=parent,
            verdict=verdict["verdict"],
            frame_size=int(verdict["frame_size"]),
            host_fields={"worker": worker_id, "cached": cached},
        )

    async def _proxy_round(self, reseed: Frame) -> None:
        # A hand-back migration must not race this round: the gate
        # blocks while the group is mid-move and registers the round
        # in flight so the migration's drain can wait for it in turn.
        group = reseed["group"]
        gate = getattr(self.supervisor, "round_gate", None)
        if gate is not None:
            await gate(group)
        try:
            await self._proxy_round_gated(reseed)
        finally:
            done = getattr(self.supervisor, "round_done", None)
            if done is not None:
                done(group)

    async def _proxy_round_gated(self, reseed: Frame) -> None:
        group = reseed["group"]
        # The client's seq for this round: every frame relayed back to
        # the client must echo it, whether the serving worker saw it
        # (v2 upstream hop) or not (v1 upstream hop strips it, cached
        # verdicts never had it).
        seq = reseed.get("seq")
        trace_parent, upstream_reseed = self._trace_setup(reseed)
        challenge: Optional[Frame] = None  # as relayed to the client
        bits: Optional[Frame] = None  # the client's proof, once seen
        # The round's total retry budget: attempts are bounded AND the
        # deadline propagates into every upstream wait, so the worst
        # case is round_deadline_s — not retries x upstream_timeout_s.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.round_deadline_s
        attempts = 0
        while attempts < self.config.max_round_retries:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                handle = await self.supervisor.worker_for(group)
            except (RuntimeError, LookupError):
                # No live owner *right now* — e.g. the whole fleet is
                # mid-restart. Spend a sliver of the deadline, not an
                # attempt; a respawned worker changes the answer.
                if getattr(self.supervisor, "_closing", False):
                    break
                await asyncio.sleep(min(0.05, remaining))
                continue
            if challenge is not None and await self._try_cached_verdict(
                group, challenge, bits, trace_parent, seq=seq
            ):
                return

            if not self.gateway.breaker_allow(handle.worker_id):
                # Open breaker: spend a sliver of the deadline, not an
                # attempt — the worker may be mid-restart, and failover
                # or recovery will change the routing underneath us.
                await asyncio.sleep(min(0.05, remaining))
                continue
            attempts += 1
            timeout = min(self.config.upstream_timeout_s, remaining)
            try:
                upstream = await asyncio.wait_for(
                    self._upstream(handle), timeout
                )
                await upstream.send(upstream_reseed)
                reply = await asyncio.wait_for(upstream.stream.next(), timeout)
            except _UPSTREAM_ERRORS + (ProtocolError,):
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            if reply is None:
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            if reply.type == "ERROR":
                # The worker's own protocol-level answer (unknown
                # group, bad field, ...) — relay and reset the round.
                self.gateway.record_breaker(handle.worker_id, ok=True)
                await self._send_client(self._stamp(reply, seq))
                return
            if reply.type != "CHALLENGE":
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            self.gateway.record_breaker(handle.worker_id, ok=True)

            if challenge is None:
                challenge = reply
                await self._send_client(self._stamp(reply, seq))
            elif not _same_challenge(challenge, reply):
                # The restored group disagrees with the challenge the
                # reader already holds — snapshot and spec have
                # diverged. Unrecoverable for this round; say so.
                self.gateway.relay_errors += 1
                self.gateway._count("shard_relay_errors_total")
                await self._send_client(
                    protocol.with_seq(
                        protocol.error_frame(
                            "reshard-mismatch",
                            f"group {group!r} re-issued a different challenge "
                            f"for round {challenge['round']} after failover",
                        ),
                        seq,
                    )
                )
                return

            if bits is None:
                outcome = await self._await_proof(
                    upstream, group, trace_parent, seq
                )
                if outcome is _RETRY:
                    continue
                if outcome is _DONE:
                    return
                bits = outcome

            try:
                await upstream.send(bits)
                verdict = await asyncio.wait_for(
                    upstream.stream.next(),
                    min(
                        self.config.upstream_timeout_s,
                        max(0.05, deadline - loop.time()),
                    ),
                )
            except _UPSTREAM_ERRORS + (ProtocolError,):
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            if verdict is None:
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            self.gateway.record_breaker(handle.worker_id, ok=True)
            await self._send_client(self._stamp(verdict, seq))
            if verdict.type == "VERDICT":
                self.gateway.rounds_proxied += 1
                self.gateway._count("shard_rounds_proxied_total")
            self._finish_span(
                trace_parent, group, verdict, worker_id=handle.worker_id
            )
            return
        self.gateway.relay_errors += 1
        await self._send_client(
            protocol.with_seq(
                protocol.error_frame(
                    "shard-unavailable",
                    f"round on group {group!r} kept failing across re-shards",
                ),
                seq,
            )
        )

    async def _proxy_membership(self, request: Frame) -> None:
        """Relay one MEMBERSHIP exchange to the group's owning worker.

        Routed and gated exactly like a round (a delta must not race a
        hand-back migration), but the exchange is one request/reply.
        The delta is *not* blindly retried across a failover: the
        owning worker snapshots the new epoch before its ack flushes,
        so a retry against the restored group fails the epoch check
        (``stale-epoch``) instead of double-applying — the sender
        re-reads the epoch and decides, which is the whole point of the
        optimistic-concurrency scheme.
        """
        group = request["group"]
        gate = getattr(self.supervisor, "round_gate", None)
        if gate is not None:
            await gate(group)
        try:
            await self._proxy_membership_gated(request)
        finally:
            done = getattr(self.supervisor, "round_done", None)
            if done is not None:
                done(group)

    async def _proxy_membership_gated(self, request: Frame) -> None:
        group = request["group"]
        seq = request.get("seq")
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.round_deadline_s
        attempts = 0
        while attempts < self.config.max_round_retries:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                handle = await self.supervisor.worker_for(group)
            except (RuntimeError, LookupError):
                if getattr(self.supervisor, "_closing", False):
                    break
                await asyncio.sleep(min(0.05, remaining))
                continue
            if not self.gateway.breaker_allow(handle.worker_id):
                await asyncio.sleep(min(0.05, remaining))
                continue
            attempts += 1
            timeout = min(self.config.upstream_timeout_s, remaining)
            try:
                upstream = await asyncio.wait_for(
                    self._upstream(handle), timeout
                )
                await upstream.send(request)
                reply = await asyncio.wait_for(upstream.stream.next(), timeout)
            except _UPSTREAM_ERRORS + (ProtocolError,):
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            if reply is None:
                self.gateway.record_breaker(handle.worker_id, ok=False)
                await self._worker_trouble(handle.worker_id)
                continue
            if reply.type in ("MEMBERSHIP", "ERROR"):
                self.gateway.record_breaker(handle.worker_id, ok=True)
                await self._send_client(self._stamp(reply, seq))
                return
            self.gateway.record_breaker(handle.worker_id, ok=False)
            await self._worker_trouble(handle.worker_id)
        self.gateway.relay_errors += 1
        await self._send_client(
            protocol.with_seq(
                protocol.error_frame(
                    "shard-unavailable",
                    f"membership update on group {group!r} kept failing "
                    "across re-shards",
                ),
                seq,
            )
        )

    @staticmethod
    def _stamp(frame: Frame, seq) -> Frame:
        """Echo the client's round seq on a relayed reply.

        A v2 upstream hop already carried the seq through, in which
        case the frame keeps the worker's (identical) echo; a v1 hop
        stripped it, so the gateway restores it here.
        """
        if seq is None or frame.get("seq") is not None:
            return frame
        return protocol.with_seq(frame, seq)

    async def _await_proof(
        self, upstream: _Upstream, group, trace_parent, seq=None
    ):
        """Wait for the client's BITSTRING *or* the worker's unprompted
        deadline VERDICT, whichever lands first.

        Returns the BITSTRING frame, ``_DONE`` (round finished: the
        worker's unprompted frame was relayed), or ``_RETRY`` (the
        worker died while we waited). The client's pending read, if
        unconsumed, survives for the retry iteration.
        """
        client_read = self.client.pending()
        worker_read = upstream.stream.pending()
        await asyncio.wait(
            {client_read, worker_read}, return_when=asyncio.FIRST_COMPLETED
        )
        if worker_read.done():
            try:
                frame = upstream.stream.take()
            except _UPSTREAM_ERRORS + (ProtocolError,):
                self.gateway.record_breaker(upstream.worker_id, ok=False)
                await self._worker_trouble(upstream.worker_id)
                return _RETRY
            if frame is None:
                self.gateway.record_breaker(upstream.worker_id, ok=False)
                await self._worker_trouble(upstream.worker_id)
                return _RETRY
            # Deadline VERDICT (or a worker-side ERROR): relay as-is.
            await self._send_client(self._stamp(frame, seq))
            if frame.type == "VERDICT":
                self.gateway.rounds_proxied += 1
                self.gateway._count("shard_rounds_proxied_total")
            self._finish_span(
                trace_parent, group, frame, worker_id=upstream.worker_id
            )
            return _DONE
        try:
            frame = self.client.take()
        except ProtocolError as exc:
            try:
                await self._send_client(
                    protocol.error_frame(exc.code, exc.detail)
                )
            except (ConnectionError, OSError):
                pass
            raise _SessionAborted()
        if frame is None:
            raise _SessionAborted()
        return frame

    async def _try_cached_verdict(
        self,
        group: str,
        challenge: Frame,
        bits: Optional[Frame],
        trace_parent: Optional[SpanContext] = None,
        seq=None,
    ) -> bool:
        """Serve the snapshot's verdict when the round already verified.

        True when the dead worker persisted this round's verdict before
        dying (``rounds_verified`` is one past the in-flight round):
        re-running the round would double-issue, so the cached VERDICT
        payload — byte-for-byte what the worker would have sent — goes
        to the client instead.
        """
        adoption = self.supervisor.adoptions.get(group)
        if adoption is None:
            return False
        cached = adoption.get("last_verdict")
        if (
            adoption.get("rounds_verified") != challenge["round"] + 1
            or not cached
            or cached.get("round") != challenge["round"]
        ):
            return False
        if bits is None:
            # The client still owes its proof for the relayed
            # challenge; consume it so the session stays in step.
            frame = await self.client.next()
            if frame is None:
                raise _SessionAborted()
        verdict = Frame("VERDICT", dict(cached))
        await self._send_client(self._stamp(verdict, seq))
        self.gateway.rounds_proxied += 1
        self.gateway.cached_verdicts_served += 1
        self.gateway._count("shard_rounds_proxied_total")
        self.gateway._count("shard_cached_verdicts_total")
        self._finish_span(trace_parent, group, verdict, cached=True)
        return True


#: Sentinels for :meth:`_ProxySession._await_proof`.
_RETRY = object()
_DONE = object()
