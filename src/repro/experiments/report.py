"""Plain-text rendering of experiment results.

Everything prints as monospace tables (and simple bar strips for the
detection-probability figures) so the benches can ``tee`` output that
reads like the paper's figures without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_bar", "render_series"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header.

    Floats render with 4 decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bar(value: float, lo: float, hi: float, width: int = 40) -> str:
    """One horizontal bar scaled into ``[lo, hi]`` (clipped)."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    frac = (min(max(value, lo), hi) - lo) / (hi - lo)
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def render_series(
    labels: Sequence[object],
    values: Sequence[float],
    lo: float,
    hi: float,
    title: str = "",
    width: int = 40,
) -> str:
    """A labelled bar strip — the text analogue of one figure panel."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max((len(str(l)) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = render_bar(value, lo, hi, width)
        lines.append(f"{str(label).rjust(label_w)} |{bar}| {value:.4f}")
    return "\n".join(lines)
