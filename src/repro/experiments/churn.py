"""Churn experiment: monitoring quality under a live tag population.

The paper plans its frame sizes for a *static* set ``T*``; the
``repro.population`` layer relaxes that with epoch-versioned
commission/decommission/replace. This experiment quantifies what is at
stake: a server whose membership view tracks the population (the
*maintained* view, re-planning via
:class:`~repro.population.maintain.PlanMaintainer`) against one whose
view froze at epoch 0 (the *stale* view — exactly what a deployment
without membership propagation degrades into after its first churn
event).

Per ``(op mix, churn rate)`` cell the population evolves for a fixed
number of monitoring rounds, applying ``rate`` membership events per
round (an accumulator, so fractional rates interleave deterministically).
Each round measures, on a loss-free channel:

* **detection** — ``m + 1`` currently-present tags are stolen; the
  round detects when at least one expected slot goes silent (the
  paper's strict rule, the event Eq. 2 sizes for). Reported for both
  views: the maintained view must hold ``>= alpha`` at every churn
  rate, while the stale view loses exactly the thefts that hit tags it
  never learned about (commission-heavy mixes).
* **false alarms** — nothing is stolen; an alarm is a page for a
  population that is fully present. The maintained view's rate is
  identically 0 here (clean channel, exact expectation); the stale
  view pages whenever a tag it still expects has been decommissioned —
  reported under the strict rule (any silent slot) and the tolerant
  threshold rule (estimated missing ``> m``), the latter showing the
  grace margin ``m`` buys before a stale view pages permanently.

The cell also reports the maintainer's plan-cache behaviour: deltas
applied vs full re-plans, the incremental-maintenance claim in numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.estimation import estimate_missing_count
from ..population.maintain import PlanMaintainer
from ..population.registry import MEMBERSHIP_OPS
from ..rfid.hashing import slots_for_tags
from ..rfid.ids import random_tag_ids
from ..simulation.rng import derive_seed

__all__ = [
    "ChurnStudyConfig",
    "ChurnPoint",
    "ChurnStudyResult",
    "run_churn_study",
    "format_churn_result",
]

_SEED_SPACE = 1 << 62
#: Seed-space dimension for membership churn (figures use their figure
#: numbers, the fleet uses 99, faults 7, chaos 41).
_CHURN_DIMENSION = 53


@dataclass(frozen=True)
class ChurnStudyConfig:
    """The sweep's operating point.

    Attributes:
        population: initial registered ``n``.
        tolerance: the deployment's ``m``.
        confidence: Eq. 2 planning confidence ``alpha``.
        churn_rates: membership events per monitoring round to sweep
            (0 = the paper's static set, the control column).
        mixes: op mixes to sweep; each of
            :data:`~repro.population.registry.MEMBERSHIP_OPS` applies
            only that op, ``"mixed"`` cycles through all three.
        rounds: monitoring rounds (= measurement trials) per cell.
        master_seed: root of every generator this experiment touches.
    """

    population: int = 1200
    tolerance: int = 4
    confidence: float = 0.95
    churn_rates: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)
    mixes: Tuple[str, ...] = MEMBERSHIP_OPS + ("mixed",)
    rounds: int = 200
    master_seed: int = 20080617

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 0 <= self.tolerance < self.population:
            raise ValueError("tolerance must be within [0, n)")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be within (0, 1)")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        for rate in self.churn_rates:
            if rate < 0:
                raise ValueError("churn rates must be >= 0")
        for mix in self.mixes:
            if mix != "mixed" and mix not in MEMBERSHIP_OPS:
                raise ValueError(f"unknown op mix {mix!r}")


@dataclass
class ChurnPoint:
    """One ``(mix, churn rate)`` cell's measured rates."""

    mix: str
    churn_rate: float
    events_applied: int
    final_population: int
    detection_maintained: float
    detection_stale: float
    false_alarm_stale_strict: float
    false_alarm_stale_threshold: float
    deltas_applied: int
    replans: int
    plan_reuses: int


@dataclass
class ChurnStudyResult:
    """The full sweep plus its planning context."""

    config: ChurnStudyConfig
    base_frame_size: int
    points: List[ChurnPoint] = field(default_factory=list)


class _Roster:
    """The evolving physical population of one cell."""

    def __init__(self, ids: np.ndarray, rng: np.random.Generator):
        self.ids = ids
        self.rng = rng
        self.events = 0

    def apply(self, op: str) -> None:
        if op in ("decommission", "replace"):
            victim = int(self.rng.integers(0, self.ids.size))
            self.ids = np.delete(self.ids, victim)
        if op in ("commission", "replace"):
            while True:
                fresh = random_tag_ids(1, self.rng)
                if fresh[0] not in self.ids:
                    break
            self.ids = np.concatenate([self.ids, fresh])
        self.events += 1


def _mismatches(
    view_ids: np.ndarray,
    physical_ids: np.ndarray,
    frame_size: int,
    seed: int,
) -> int:
    """Expected-but-silent slots for one loss-free TRP round."""
    expected = np.zeros(frame_size, dtype=bool)
    expected[slots_for_tags(view_ids, seed, frame_size)] = True
    observed = np.zeros(frame_size, dtype=bool)
    if physical_ids.size:
        observed[slots_for_tags(physical_ids, seed, frame_size)] = True
    return int(np.count_nonzero(expected & ~observed))


def _ops_for(mix: str, index: int) -> str:
    if mix == "mixed":
        return MEMBERSHIP_OPS[index % len(MEMBERSHIP_OPS)]
    return mix


def run_churn_study(config: ChurnStudyConfig = ChurnStudyConfig()) -> ChurnStudyResult:
    """Run the churn sweep.

    Raises:
        ValueError: when decommission-only churn would push ``n`` to or
            below ``m`` within the configured rounds (the cell is
            infeasible; shrink the rate or grow the population).
    """
    cfg = config
    maintainer_probe = PlanMaintainer(cfg.tolerance, cfg.confidence)
    base_frame = maintainer_probe.plan_for(cfg.population).trp_frame_size
    result = ChurnStudyResult(config=cfg, base_frame_size=base_frame)

    for mix_index, mix in enumerate(cfg.mixes):
        for rate_index, rate in enumerate(cfg.churn_rates):
            roster_rng = np.random.default_rng(
                derive_seed(cfg.master_seed, _CHURN_DIMENSION, mix_index, rate_index)
            )
            round_rng = np.random.default_rng(
                derive_seed(
                    cfg.master_seed, _CHURN_DIMENSION, mix_index, rate_index, 1
                )
            )
            roster = _Roster(
                random_tag_ids(cfg.population, roster_rng), roster_rng
            )
            stale_view = roster.ids.copy()
            stale_frame = base_frame
            maintainer = PlanMaintainer(cfg.tolerance, cfg.confidence)
            maintainer.plan_for(roster.ids.size)

            det_maint = det_stale = fa_strict = fa_thresh = 0
            acc = 0.0
            for _ in range(cfg.rounds):
                acc += rate
                while acc >= 1.0:
                    acc -= 1.0
                    op = _ops_for(mix, roster.events)
                    if (
                        op == "decommission"
                        and roster.ids.size <= cfg.tolerance + 2
                    ):
                        raise ValueError(
                            f"cell ({mix}, {rate}) exhausts the population: "
                            "decommission churn would drop n below m + 2"
                        )
                    roster.apply(op)
                    maintainer.apply_delta(op, 1, roster.ids.size)
                plan = maintainer.current
                frame = plan.trp_frame_size

                # Detection condition: steal m + 1 present tags.
                steal = cfg.tolerance + 1
                stolen = round_rng.choice(
                    roster.ids.size, size=steal, replace=False
                )
                keep = np.ones(roster.ids.size, dtype=bool)
                keep[stolen] = False
                physical = roster.ids[keep]
                seed = int(round_rng.integers(0, _SEED_SPACE))
                if _mismatches(roster.ids, physical, frame, seed) > 0:
                    det_maint += 1
                if (
                    _mismatches(stale_view, physical, stale_frame, seed) > 0
                ):
                    det_stale += 1

                # False-alarm condition: the population is intact.
                seed = int(round_rng.integers(0, _SEED_SPACE))
                stale_miss = _mismatches(
                    stale_view, roster.ids, stale_frame, seed
                )
                if stale_miss > 0:
                    fa_strict += 1
                if (
                    estimate_missing_count(
                        stale_miss, stale_view.size, stale_frame
                    )
                    > cfg.tolerance
                ):
                    fa_thresh += 1

            rounds = cfg.rounds
            result.points.append(
                ChurnPoint(
                    mix=mix,
                    churn_rate=rate,
                    events_applied=roster.events,
                    final_population=int(roster.ids.size),
                    detection_maintained=det_maint / rounds,
                    detection_stale=det_stale / rounds,
                    false_alarm_stale_strict=fa_strict / rounds,
                    false_alarm_stale_threshold=fa_thresh / rounds,
                    deltas_applied=maintainer.stats["deltas_applied"],
                    replans=maintainer.stats["replans"],
                    plan_reuses=maintainer.stats["plan_reuses"],
                )
            )
    return result


def format_churn_result(result: ChurnStudyResult) -> str:
    """The operator-facing sweep table."""
    cfg = result.config
    lines = [
        "churn: detection confidence and false-alarm rate vs membership "
        "churn rate",
        f"n={cfg.population}, m={cfg.tolerance}, alpha={cfg.confidence}, "
        f"base f={result.base_frame_size}; {cfg.rounds} rounds per cell; "
        "loss-free channel",
        "maintained view re-plans per epoch; stale view froze at epoch 0",
        "",
        "mix           rate  events  n_end  det_maint  det_stale  "
        "FA_strict  FA_thresh  replans  reuses",
        "------------  ----  ------  -----  ---------  ---------  "
        "---------  ---------  -------  ------",
    ]
    for p in result.points:
        lines.append(
            f"{p.mix:<12s}  {p.churn_rate:4.1f}  {p.events_applied:6d}  "
            f"{p.final_population:5d}  {p.detection_maintained:9.4f}  "
            f"{p.detection_stale:9.4f}  {p.false_alarm_stale_strict:9.4f}  "
            f"{p.false_alarm_stale_threshold:9.4f}  {p.replans:7d}  "
            f"{p.plan_reuses:6d}"
        )
    floor = min(p.detection_maintained for p in result.points)
    worst_stale = min(p.detection_stale for p in result.points)
    lines.append("")
    lines.append(
        f"maintained detection floor: {floor:.4f} (planned alpha "
        f"{cfg.confidence}); worst stale detection: {worst_stale:.4f}"
    )
    return "\n".join(lines)
