"""Ablation experiments (DESIGN.md Abl. A-E).

These go beyond the paper's four data figures and quantify the design
remarks its evaluation makes in passing:

* **A — wall-clock**: Sec. 6 notes collect-all's real cost is worse
  than its slot count because tags ship 96-bit IDs while TRP tags ship
  a short burst. We convert both protocols' channel usage into air
  time under an EPC-Gen2-flavoured link model.
* **B — alpha sensitivity**: how Eq. 2's frame grows with the required
  confidence.
* **C — communication budget**: how Eq. 3's frame grows with the
  collusion budget ``c`` the timer permits.
* **D — attack matrix**: measured detection rates of replay and
  collusion against TRP and UTRP, including the no-timer (unlimited
  budget) case that motivates the timer.
* **E — approximation quality**: the paper's ``e^{-(n-x)/f}`` occupancy
  approximation and a Poisson variant versus the exact binomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..aloha.frame import hash_frame
from ..core.analysis import (
    detection_probability,
    detection_probability_poisson,
    optimal_trp_frame_size,
)
from ..core.utrp_analysis import optimal_utrp_frame_size
from ..rfid.channel import ChannelStats
from ..rfid.ids import random_tag_ids
from ..rfid.timing import GEN2_TYPICAL, LinkTiming
from ..core.estimation import StrictAlarmPolicy, ThresholdAlarmPolicy
from ..simulation.fastpath import (
    trp_detection_trials,
    trp_false_alarm_trials,
    trp_mismatch_count_trials,
    utrp_collusion_detection_trials,
)
from ..simulation.metrics import summarize_detections
from ..simulation.rng import derive_seed
from .grid import ExperimentGrid
from .report import render_table

__all__ = [
    "run_wallclock",
    "run_alpha_sweep",
    "run_comm_budget_sweep",
    "run_attack_matrix",
    "run_gfunc_approximation",
    "run_alarm_policy_study",
    "run_unreliable_channel_study",
]

_SEED_SPACE = 1 << 62


# ----------------------------------------------------------------------
# Abl. A — wall-clock time under a real link model
# ----------------------------------------------------------------------

def _collect_all_stats(
    n: int, tolerance: int, rng: np.random.Generator
) -> Tuple[int, ChannelStats]:
    """Collect-all slot count plus the air-interface counters needed to
    price it (IDs transmitted, slot mix), via the vectorised rounds."""
    ids = random_tag_ids(n, rng)
    stats = ChannelStats()
    outstanding = ids
    collected = 0
    target = n - tolerance
    total_slots = 0
    while collected < target:
        frame_size = max(n - collected, 1)
        seed = int(rng.integers(0, _SEED_SPACE))
        outcome = hash_frame(outstanding, frame_size, seed)
        total_slots += frame_size
        stats.seed_broadcasts += 1
        stats.slots_polled += frame_size
        stats.empty_slots += outcome.empty_slots
        stats.singleton_slots += outcome.singleton_slots
        stats.collision_slots += outcome.collision_slots
        stats.id_transmissions += int(len(outstanding))  # every active tag replies
        resolved = outcome.singleton_ids
        collected += len(resolved)
        outstanding = outstanding[~np.isin(outstanding, resolved)]
    return total_slots, stats


def _trp_stats(n: int, frame_size: int, rng: np.random.Generator) -> ChannelStats:
    """TRP air-interface counters for one scan of an intact set."""
    ids = random_tag_ids(n, rng)
    outcome = hash_frame(ids, frame_size, int(rng.integers(0, _SEED_SPACE)))
    occupied = outcome.singleton_slots + outcome.collision_slots
    return ChannelStats(
        seed_broadcasts=1,
        slots_polled=frame_size,
        empty_slots=outcome.empty_slots,
        singleton_slots=outcome.singleton_slots,
        collision_slots=outcome.collision_slots,
        reply_payload_bits=16 * occupied,
        id_transmissions=0,
    )


@dataclass(frozen=True)
class WallclockRow:
    population: int
    tolerance: int
    collect_all_ms: float
    trp_ms: float

    @property
    def speedup(self) -> float:
        return self.collect_all_ms / self.trp_ms


def run_wallclock(
    grid: ExperimentGrid, timing: LinkTiming = GEN2_TYPICAL
) -> List[WallclockRow]:
    """Abl. A: price both protocols in milliseconds of air time."""
    rows: List[WallclockRow] = []
    for m in grid.tolerances:
        for n in grid.populations:
            rng = np.random.default_rng(derive_seed(grid.master_seed, 100, n, m))
            ca_us = []
            trp_us = []
            f = optimal_trp_frame_size(n, m, grid.alpha)
            for _ in range(grid.cost_trials):
                _slots, stats = _collect_all_stats(n, m, rng)
                ca_us.append(timing.session_us(stats))
                trp_us.append(timing.session_us(_trp_stats(n, f, rng)))
            rows.append(
                WallclockRow(
                    population=n,
                    tolerance=m,
                    collect_all_ms=float(np.mean(ca_us)) / 1000.0,
                    trp_ms=float(np.mean(trp_us)) / 1000.0,
                )
            )
    return rows


def format_wallclock(rows: Sequence[WallclockRow]) -> str:
    return render_table(
        ["n", "m", "collect-all ms", "TRP ms", "TRP advantage"],
        [
            (r.population, r.tolerance, round(r.collect_all_ms, 1),
             round(r.trp_ms, 1), f"{r.speedup:.2f}x")
            for r in rows
        ],
        title="Abl. A: air time under the Gen2-flavoured link model "
        "(IDs cost collect-all dearly)",
    )


# ----------------------------------------------------------------------
# Abl. B — alpha sensitivity of Eq. 2
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AlphaRow:
    population: int
    tolerance: int
    alpha: float
    frame_size: int


def run_alpha_sweep(
    populations: Sequence[int] = (500, 1000, 2000),
    tolerances: Sequence[int] = (5, 20),
    alphas: Sequence[float] = (0.90, 0.95, 0.99, 0.999),
) -> List[AlphaRow]:
    """Abl. B: Eq. 2's frame size as confidence tightens."""
    return [
        AlphaRow(n, m, a, optimal_trp_frame_size(n, m, a))
        for n in populations
        for m in tolerances
        for a in alphas
    ]


def format_alpha_sweep(rows: Sequence[AlphaRow]) -> str:
    return render_table(
        ["n", "m", "alpha", "TRP frame"],
        [(r.population, r.tolerance, r.alpha, r.frame_size) for r in rows],
        title="Abl. B: frame size vs required confidence",
    )


# ----------------------------------------------------------------------
# Abl. C — collusion budget sensitivity of Eq. 3
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BudgetRow:
    population: int
    tolerance: int
    budget: int
    utrp_frame: int
    trp_frame: int

    @property
    def overhead_slots(self) -> int:
        return self.utrp_frame - self.trp_frame


def run_comm_budget_sweep(
    populations: Sequence[int] = (500, 1000, 2000),
    tolerance: int = 10,
    alpha: float = 0.95,
    budgets: Sequence[int] = (0, 10, 20, 50, 100),
) -> List[BudgetRow]:
    """Abl. C: the slot price of tolerating chattier colluders."""
    rows: List[BudgetRow] = []
    for n in populations:
        trp = optimal_trp_frame_size(n, tolerance, alpha)
        for c in budgets:
            rows.append(
                BudgetRow(
                    population=n,
                    tolerance=tolerance,
                    budget=c,
                    utrp_frame=optimal_utrp_frame_size(n, tolerance, alpha, c),
                    trp_frame=trp,
                )
            )
    return rows


def format_comm_budget_sweep(rows: Sequence[BudgetRow]) -> str:
    return render_table(
        ["n", "m", "c", "UTRP frame", "TRP frame", "overhead"],
        [
            (r.population, r.tolerance, r.budget, r.utrp_frame, r.trp_frame,
             r.overhead_slots)
            for r in rows
        ],
        title="Abl. C: UTRP frame size vs collusion budget c",
    )


# ----------------------------------------------------------------------
# Abl. D — attack matrix
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AttackRow:
    scenario: str
    detection_rate: float
    trials: int


def run_attack_matrix(
    n: int = 500,
    tolerance: int = 10,
    alpha: float = 0.95,
    budget: int = 20,
    trials: int = 200,
    master_seed: int = 20080617,
) -> List[AttackRow]:
    """Abl. D: measured detection rates per attack scenario.

    Scenarios: plain theft vs TRP; colluding readers vs TRP (Alg. 4 —
    always evades); colluding readers vs UTRP with the timer's budget;
    colluding readers vs UTRP *without* a timer (unlimited budget —
    always evades, motivating the timer).
    """
    stolen = tolerance + 1
    f_trp = optimal_trp_frame_size(n, tolerance, alpha)
    f_utrp = optimal_utrp_frame_size(n, tolerance, alpha, budget)
    rows: List[AttackRow] = []

    rng = np.random.default_rng(derive_seed(master_seed, 200, 1))
    theft = trp_detection_trials(n, stolen, f_trp, trials, rng)
    rows.append(AttackRow("theft vs TRP", summarize_detections(theft).rate, trials))

    # Alg. 4 collusion against TRP is exact: the OR of the halves equals
    # the intact bitstring for every seed, so detection is identically 0
    # (asserted, not sampled — see tests/test_collusion.py).
    rows.append(AttackRow("collusion vs TRP (no re-seeding)", 0.0, trials))

    rng = np.random.default_rng(derive_seed(master_seed, 200, 2))
    collusion = utrp_collusion_detection_trials(
        n, stolen, f_utrp, budget, trials, rng
    )
    rows.append(
        AttackRow(
            f"collusion vs UTRP (c={budget})",
            summarize_detections(collusion).rate,
            trials,
        )
    )

    rng = np.random.default_rng(derive_seed(master_seed, 200, 3))
    unlimited = utrp_collusion_detection_trials(
        n, stolen, f_utrp, f_utrp, trials, rng
    )
    rows.append(
        AttackRow(
            "collusion vs UTRP (no timer, c=f)",
            summarize_detections(unlimited).rate,
            trials,
        )
    )
    return rows


def format_attack_matrix(rows: Sequence[AttackRow]) -> str:
    return render_table(
        ["scenario", "detection rate", "trials"],
        [(r.scenario, r.detection_rate, r.trials) for r in rows],
        title="Abl. D: who catches what",
    )


# ----------------------------------------------------------------------
# Abl. E — occupancy approximation quality
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ApproxRow:
    population: int
    missing: int
    frame_size: int
    g_paper: float
    g_exact_occupancy: float
    g_poisson: float

    @property
    def paper_error(self) -> float:
        return abs(self.g_paper - self.g_exact_occupancy)

    @property
    def poisson_error(self) -> float:
        return abs(self.g_poisson - self.g_exact_occupancy)


def run_gfunc_approximation(
    populations: Sequence[int] = (100, 500, 1000, 2000),
    tolerance: int = 10,
    alpha: float = 0.95,
) -> List[ApproxRow]:
    """Abl. E: Theorem 1 under three occupancy models at Eq. 2's f."""
    rows: List[ApproxRow] = []
    x = tolerance + 1
    for n in populations:
        f = optimal_trp_frame_size(n, tolerance, alpha)
        rows.append(
            ApproxRow(
                population=n,
                missing=x,
                frame_size=f,
                g_paper=detection_probability(n, x, f),
                g_exact_occupancy=detection_probability(
                    n, x, f, exact_occupancy=True
                ),
                g_poisson=detection_probability_poisson(n, x, f),
            )
        )
    return rows


def format_gfunc_approximation(rows: Sequence[ApproxRow]) -> str:
    return render_table(
        ["n", "x", "f", "g (paper)", "g (exact occ.)", "g (Poisson)",
         "paper err", "Poisson err"],
        [
            (r.population, r.missing, r.frame_size, r.g_paper,
             r.g_exact_occupancy, r.g_poisson,
             f"{r.paper_error:.2e}", f"{r.poisson_error:.2e}")
            for r in rows
        ],
        title="Abl. E: occupancy-model error in Theorem 1",
    )


# ----------------------------------------------------------------------
# Abl. F — alarm-policy operating characteristics
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AlarmPolicyRow:
    """Page probabilities for one true missing count ``x``.

    ``strict`` is the paper's any-mismatch rule; ``threshold`` pages
    only when the estimated missing count exceeds ``m``.
    """

    missing: int
    strict_page_rate: float
    threshold_page_rate: float


def run_alarm_policy_study(
    n: int = 1000,
    tolerance: int = 10,
    alpha: float = 0.95,
    trials: int = 400,
    master_seed: int = 20080617,
) -> List[AlarmPolicyRow]:
    """Abl. F: how often each alarm policy pages, by true loss size.

    The interesting contrast: for sub-threshold losses (``x <= m``) the
    strict rule pages often — the behaviour the introduction calls
    impractical — while the threshold rule stays near-silent; at and
    beyond the threshold the strict rule keeps the paper's guarantee
    while the threshold rule pays for its silence with a soft ramp-up
    around ``x = m + 1``.
    """
    from ..core.analysis import optimal_trp_frame_size as _f_opt

    f = _f_opt(n, tolerance, alpha)
    strict = StrictAlarmPolicy()
    threshold = ThresholdAlarmPolicy(tolerance=tolerance)
    rows: List[AlarmPolicyRow] = []
    xs = sorted({1, max(1, tolerance // 2), tolerance, tolerance + 1,
                 2 * (tolerance + 1), 4 * (tolerance + 1)})
    for x in xs:
        rng = np.random.default_rng(derive_seed(master_seed, 300, x))
        counts = trp_mismatch_count_trials(n, x, f, trials, rng)
        rows.append(
            AlarmPolicyRow(
                missing=x,
                strict_page_rate=float(
                    np.mean([strict.should_alarm(int(c), n, f) for c in counts])
                ),
                threshold_page_rate=float(
                    np.mean([threshold.should_alarm(int(c), n, f) for c in counts])
                ),
            )
        )
    return rows


def format_alarm_policy_study(
    rows: Sequence[AlarmPolicyRow], tolerance: int = 10
) -> str:
    return render_table(
        ["true missing x", "P(page) strict", "P(page) threshold"],
        [(r.missing, r.strict_page_rate, r.threshold_page_rate) for r in rows],
        title=(
            f"Abl. F: alarm policies (m={tolerance}; strict = paper's rule, "
            "threshold = estimate-based extension)"
        ),
    )


# ----------------------------------------------------------------------
# Abl. G — unreliable channel: false alarms on an intact set
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UnreliableChannelRow:
    """False-page rates on an intact set at one reply-loss rate."""

    miss_rate: float
    mean_mismatches: float
    strict_false_page_rate: float
    threshold_false_page_rate: float


def run_unreliable_channel_study(
    n: int = 1000,
    tolerance: int = 10,
    alpha: float = 0.95,
    miss_rates: Sequence[float] = (0.0, 0.001, 0.005, 0.01, 0.02),
    trials: int = 300,
    master_seed: int = 20080617,
) -> List[UnreliableChannelRow]:
    """Abl. G: benign reply loss versus the two alarm policies.

    Quantifies the introduction's motivation for a tolerance: with even
    a fraction of a percent of replies lost to blocking/fading, the
    strict rule pages on essentially every scan of a *fully intact*
    set, while the threshold rule absorbs losses whose estimate stays
    within ``m``.
    """
    from ..core.analysis import optimal_trp_frame_size as _f_opt

    f = _f_opt(n, tolerance, alpha)
    strict = StrictAlarmPolicy()
    threshold = ThresholdAlarmPolicy(tolerance=tolerance)
    rows: List[UnreliableChannelRow] = []
    for i, eps in enumerate(miss_rates):
        rng = np.random.default_rng(derive_seed(master_seed, 400, i))
        counts = trp_false_alarm_trials(n, f, eps, trials, rng)
        rows.append(
            UnreliableChannelRow(
                miss_rate=eps,
                mean_mismatches=float(counts.mean()),
                strict_false_page_rate=float(
                    np.mean([strict.should_alarm(int(c), n, f) for c in counts])
                ),
                threshold_false_page_rate=float(
                    np.mean([threshold.should_alarm(int(c), n, f) for c in counts])
                ),
            )
        )
    return rows


def format_unreliable_channel_study(rows: Sequence[UnreliableChannelRow]) -> str:
    return render_table(
        ["reply loss rate", "mean mismatches", "false pages (strict)",
         "false pages (threshold)"],
        [
            (r.miss_rate, r.mean_mismatches, r.strict_false_page_rate,
             r.threshold_false_page_rate)
            for r in rows
        ],
        title="Abl. G: intact set over a lossy channel (false-alarm behaviour)",
    )


# ----------------------------------------------------------------------
# Abl. H — timer design: how fast a collusion link has to be
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimerDesignRow:
    """Collusion budget and cost implied by one adversary link latency.

    Attributes:
        comm_latency_us: per-synchronisation round-trip between the
            colluding readers.
        budget: ``c = (STmax - STmin) / tcomm`` (Sec. 5.4) — how many
            syncs fit inside the timer slack.
        utrp_frame: Eq. 3 frame defending against that budget.
        trp_frame: Eq. 2 baseline for the overhead comparison.
    """

    comm_latency_us: float
    budget: int
    utrp_frame: int
    trp_frame: int

    @property
    def overhead_slots(self) -> int:
        return self.utrp_frame - self.trp_frame


def run_timer_design(
    n: int = 1000,
    tolerance: int = 10,
    alpha: float = 0.95,
    comm_latencies_us: Sequence[float] = (100.0, 1_000.0, 10_000.0, 100_000.0),
    timing=None,
) -> List[TimerDesignRow]:
    """Abl. H: sweep the colluders' link latency.

    The server must set its timer to STmax (honest readers may hit the
    worst case), which leaves ``STmax - STmin`` of slack an adversary
    can spend on synchronisation. Fast links (small ``tcomm``) buy many
    syncs and force larger Eq. 3 frames; slow links collapse the budget
    to nearly zero and UTRP costs almost nothing over TRP. The frame is
    solved as a fixed point since the budget depends on the frame's own
    STmin/STmax envelope.
    """
    from ..core.utrp import estimate_scan_time_bounds
    from ..rfid.timing import GEN2_TYPICAL

    link = timing if timing is not None else GEN2_TYPICAL
    trp_frame = optimal_trp_frame_size(n, tolerance, alpha)
    rows: List[TimerDesignRow] = []
    for tcomm in comm_latencies_us:
        if tcomm <= 0:
            raise ValueError("comm latency must be positive")
        f = trp_frame
        budget = 0
        for _ in range(8):  # fixed point: budget(f) -> f(budget)
            st_min, st_max = estimate_scan_time_bounds(f, n, link)
            budget = int((st_max - st_min) / tcomm)
            new_f = optimal_utrp_frame_size(n, tolerance, alpha, budget)
            if new_f == f:
                break
            f = new_f
        rows.append(
            TimerDesignRow(
                comm_latency_us=tcomm,
                budget=budget,
                utrp_frame=f,
                trp_frame=trp_frame,
            )
        )
    return rows


def format_timer_design(rows: Sequence[TimerDesignRow]) -> str:
    return render_table(
        ["adversary link (us/sync)", "budget c", "UTRP frame", "TRP frame",
         "overhead"],
        [
            (f"{r.comm_latency_us:,.0f}", r.budget, r.utrp_frame,
             r.trp_frame, r.overhead_slots)
            for r in rows
        ],
        title="Abl. H: timer design — collusion budget vs link latency",
    )


# ----------------------------------------------------------------------
# Abl. I — collusion strategy comparison (is the paper's optimal?)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StrategyRow:
    """Detection rate against one synchronisation strategy."""

    strategy: str
    detection_rate: float
    mean_comms_used: float
    trials: int


def run_strategy_comparison(
    n: int = 500,
    tolerance: int = 10,
    alpha: float = 0.95,
    budget: int = 20,
    trials: int = 200,
    master_seed: int = 20080617,
) -> List[StrategyRow]:
    """Abl. I: play several budget-spending strategies against UTRP.

    Sec. 5.4 claims eager spending (the first ``c`` empty slots) is the
    colluders' best play. We measure the detection rate each strategy
    suffers at the Eq. 3 frame; lower is better for the adversary, so
    the claim holds if eager's rate is the minimum.
    """
    from ..adversary.strategies import (
        EagerStrategy,
        RandomStrategy,
        ReserveStrategy,
        SpreadStrategy,
        simulate_strategy_collusion,
    )
    from ..rfid.ids import random_tag_ids as _rand_ids
    from ..server.verifier import expected_utrp_bitstring as _expected

    f = optimal_utrp_frame_size(n, tolerance, alpha, budget)
    stolen = tolerance + 1

    def strategies(rng):
        return [
            EagerStrategy(),
            SpreadStrategy(period=4),
            ReserveStrategy(start_fraction=0.5),
            RandomStrategy(probability=0.25, rng=rng),
        ]

    names = [s.name for s in strategies(np.random.default_rng(0))]
    detections = {name: 0 for name in names}
    comms = {name: 0.0 for name in names}
    for t in range(trials):
        rng = np.random.default_rng(derive_seed(master_seed, 600, t))
        ids = _rand_ids(n, rng)
        counters = np.zeros(n, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        mask[rng.choice(n, stolen, replace=False)] = True
        seeds = rng.integers(0, _SEED_SPACE, size=f).tolist()
        prediction = _expected(ids, counters, f, seeds)
        for strategy in strategies(rng):
            forged = simulate_strategy_collusion(
                ids, counters, mask, f, seeds, budget, strategy
            )
            detections[strategy.name] += not np.array_equal(
                forged.bitstring, prediction.bitstring
            )
            comms[strategy.name] += forged.comms_used
    return [
        StrategyRow(
            strategy=name,
            detection_rate=detections[name] / trials,
            mean_comms_used=comms[name] / trials,
            trials=trials,
        )
        for name in names
    ]


def format_strategy_comparison(rows: Sequence[StrategyRow]) -> str:
    return render_table(
        ["strategy", "detection rate", "mean syncs spent", "trials"],
        [
            (r.strategy, r.detection_rate, round(r.mean_comms_used, 1), r.trials)
            for r in rows
        ],
        title="Abl. I: collusion sync strategies (lower detection = better "
        "for the adversary; the paper claims eager wins)",
    )


# ----------------------------------------------------------------------
# Abl. J — repeat small frames or run one big one?
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoundsRow:
    """Cost of reaching the same confidence with r independent rounds."""

    population: int
    tolerance: int
    rounds: int
    frame_size: int
    total_slots: int
    vs_single: float  # total slots relative to the 1-round plan


def run_rounds_tradeoff(
    populations: Sequence[int] = (500, 1000, 2000),
    tolerance: int = 10,
    alpha: float = 0.95,
    max_rounds: int = 4,
) -> List[RoundsRow]:
    """Abl. J: multi-round TRP plans at equal worst-case confidence.

    Because ``g`` saturates in ``f``, one Eq. 2 frame always beats
    splitting the same confidence across smaller rounds in total slots;
    the table quantifies by how much (the operational reasons to split
    anyway — bounded per-scan downtime — are a deployment concern, not
    a cost win).
    """
    from ..core.rounds import plan_rounds

    rows: List[RoundsRow] = []
    for n in populations:
        plans = plan_rounds(n, tolerance, alpha, max_rounds=max_rounds)
        single = plans[0].total_slots
        for plan in plans:
            rows.append(
                RoundsRow(
                    population=n,
                    tolerance=tolerance,
                    rounds=plan.rounds,
                    frame_size=plan.frame_size,
                    total_slots=plan.total_slots,
                    vs_single=plan.total_slots / single,
                )
            )
    return rows


def format_rounds_tradeoff(rows: Sequence[RoundsRow]) -> str:
    return render_table(
        ["n", "m", "rounds", "frame/round", "total slots", "vs 1 round"],
        [
            (r.population, r.tolerance, r.rounds, r.frame_size, r.total_slots,
             f"{r.vs_single:.2f}x")
            for r in rows
        ],
        title="Abl. J: multi-round TRP plans at equal confidence",
    )


# ----------------------------------------------------------------------
# Abl. K — identification: how many rounds to name the missing tags
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IdentificationRow:
    """Identification coverage after a number of extra TRP rounds."""

    rounds: int
    planned_coverage: float
    measured_coverage: float
    false_positives: int


def run_identification_study(
    n: int = 500,
    missing: int = 11,
    alpha: float = 0.95,
    tolerance: int = 10,
    trials: int = 60,
    master_seed: int = 20080617,
) -> List[IdentificationRow]:
    """Abl. K: confirmed-missing coverage vs extra rounds.

    After a detection alarm, the operator replays TRP rounds to *name*
    the missing tags (``repro.core.identification``). Coverage is the
    fraction of truly-missing tags confirmed; soundness requires zero
    false positives at every point.
    """
    from ..core.identification import (
        MissingTagIdentifier,
        identification_probability,
    )
    from ..rfid.hashing import slots_for_tags as _slots
    from ..rfid.ids import random_tag_ids as _rand_ids

    f = optimal_trp_frame_size(n, tolerance, alpha)
    max_rounds = 8
    covered = np.zeros(max_rounds + 1)
    false_pos = 0
    for t in range(trials):
        rng = np.random.default_rng(derive_seed(master_seed, 800, t))
        ids = _rand_ids(n, rng)
        present = np.ones(n, dtype=bool)
        present[rng.choice(n, missing, replace=False)] = False
        truly_missing = set(int(i) for i in ids[~present])
        identifier = MissingTagIdentifier(ids.tolist())
        for r in range(1, max_rounds + 1):
            seed = int(rng.integers(0, _SEED_SPACE))
            slots = _slots(ids, seed, f)
            observed = np.zeros(f, dtype=np.uint8)
            observed[np.unique(slots[present])] = 1
            identifier.ingest(f, seed, observed)
            confirmed = identifier.confirmed_missing
            false_pos += len(confirmed - truly_missing)
            covered[r] += len(confirmed & truly_missing) / missing
    return [
        IdentificationRow(
            rounds=r,
            planned_coverage=identification_probability(n, missing, f, r),
            measured_coverage=float(covered[r] / trials),
            false_positives=false_pos if r == max_rounds else 0,
        )
        for r in range(1, max_rounds + 1)
    ]


def format_identification_study(rows: Sequence[IdentificationRow]) -> str:
    return render_table(
        ["extra rounds", "planned coverage", "measured coverage",
         "false positives"],
        [
            (r.rounds, r.planned_coverage, r.measured_coverage,
             r.false_positives)
            for r in rows
        ],
        title="Abl. K: naming the missing tags after an alarm",
    )
