"""Publish figure-sweep results into an obs context.

The figure modules stay pure computations; this adapter turns any of
their results (anything following the ``rows`` convention
:func:`repro.experiments.export.figure_rows` relies on) into obs
events and metrics. Rows are published on the caller's thread in row
order — row order is grid order, which is seed-independent — so the
resulting trace digest is deterministic whatever ``--jobs`` the sweep
ran with.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass

__all__ = ["publish_figure_result"]


def publish_figure_result(obs, experiment_id: str, result) -> None:
    """Emit one ``experiment.row`` event per result row.

    Also increments ``repro_experiment_rows_total{experiment=...}`` and
    emits a closing ``experiment.complete`` event carrying the grid
    parameters, so a trace alone identifies what was swept.

    Raises:
        TypeError: if the result carries no ``rows``.
    """
    rows = getattr(result, "rows", None)
    if rows is None:
        raise TypeError(f"{type(result).__name__} has no publishable rows")
    scope = f"experiment/{experiment_id}"
    counter = obs.registry.counter(
        "repro_experiment_rows_total",
        "figure/ablation result rows published",
        labelnames=("experiment",),
    ).labels(experiment=experiment_id)
    for row in rows:
        fields = asdict(row) if is_dataclass(row) else dict(row)
        obs.bus.emit("experiment.row", scope=scope, **fields)
        counter.inc()
    grid = getattr(result, "grid", None)
    grid_fields = {}
    if grid is not None and is_dataclass(grid):
        grid_fields = {
            k: v for k, v in asdict(grid).items()
            if isinstance(v, (int, float, str, bool, list, tuple))
        }
    obs.bus.emit(
        "experiment.complete",
        scope=scope,
        experiment=experiment_id,
        rows=len(rows),
        **grid_fields,
    )
