"""Experiment grids: the paper's evaluation parameters, sizeable down.

Sec. 6 fixes the evaluation design: ``n`` from 100 to 2000 in steps of
100, ``m in {5, 10, 20, 30}``, ``alpha = 0.95``, 1000 trials, and
``c = 20`` for UTRP. That full grid takes a while on the UTRP side, so
experiments run on a reduced-but-same-shape grid by default and honour
two environment variables:

* ``REPRO_FULL=1`` — use the paper's exact grid;
* ``REPRO_TRIALS=<k>`` — override the trial count only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Tuple

from ..simulation.batched import DEFAULT_BATCH_SIZE

__all__ = ["ExperimentGrid", "paper_grid", "quick_grid", "grid_from_env"]

#: Default master seed: the paper's publication date, so runs are
#: reproducible but obviously arbitrary.
DEFAULT_SEED = 20080617


@dataclass(frozen=True)
class ExperimentGrid:
    """One evaluation sweep's parameters.

    Attributes:
        populations: the ``n`` values to sweep.
        tolerances: the ``m`` values to sweep.
        alpha: confidence level (paper: 0.95).
        trials: Monte Carlo trials per grid cell (paper: 1000).
        cost_trials: trials for cost (slot-count) measurements, whose
            variance is far smaller than detection-rate variance.
        comm_budget: UTRP's collusion budget ``c`` (paper: 20).
        master_seed: experiment-level seed for reproducibility.
        batch_size: trials per chunk in the batched Monte Carlo
            kernels — a memory/throughput knob only; results are
            bit-identical for any value.
    """

    populations: Tuple[int, ...]
    tolerances: Tuple[int, ...] = (5, 10, 20, 30)
    alpha: float = 0.95
    trials: int = 1000
    cost_trials: int = 20
    comm_budget: int = 20
    master_seed: int = DEFAULT_SEED
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if not self.populations:
            raise ValueError("populations must be non-empty")
        if not self.tolerances:
            raise ValueError("tolerances must be non-empty")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.trials <= 0 or self.cost_trials <= 0:
            raise ValueError("trial counts must be positive")
        if self.comm_budget < 0:
            raise ValueError("comm_budget must be >= 0")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for n in self.populations:
            for m in self.tolerances:
                if m + 1 >= n:
                    raise ValueError(
                        f"grid cell n={n}, m={m} is degenerate (m+1 >= n)"
                    )

    @property
    def cells(self):
        """All ``(n, m)`` combinations, n-major (the paper's layout)."""
        return [(n, m) for m in self.tolerances for n in self.populations]


def paper_grid() -> ExperimentGrid:
    """Sec. 6's exact evaluation grid."""
    return ExperimentGrid(
        populations=tuple(range(100, 2001, 100)),
        tolerances=(5, 10, 20, 30),
        alpha=0.95,
        trials=1000,
        cost_trials=50,
        comm_budget=20,
    )


def quick_grid() -> ExperimentGrid:
    """Same shape, reduced density — CI-friendly (~seconds per figure)."""
    return ExperimentGrid(
        populations=(100, 500, 1000, 2000),
        tolerances=(5, 10, 20, 30),
        alpha=0.95,
        trials=150,
        cost_trials=8,
        comm_budget=20,
    )


def grid_from_env() -> ExperimentGrid:
    """Pick the grid from ``REPRO_FULL`` / ``REPRO_TRIALS``."""
    grid = paper_grid() if os.environ.get("REPRO_FULL") == "1" else quick_grid()
    trials_override = os.environ.get("REPRO_TRIALS")
    if trials_override:
        grid = replace(grid, trials=max(1, int(trials_override)))
    return grid
