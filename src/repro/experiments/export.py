"""CSV export of experiment results.

Figure results render as text tables for humans; downstream analysis
(plotting the curves against the paper's, regression-tracking across
library versions) wants machine-readable rows. Every figure result
type exports through one generic row protocol.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

__all__ = ["rows_to_csv", "write_csv", "figure_rows"]


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an RFC-4180 CSV string.

    Raises:
        ValueError: if any row's width differs from the header's.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        writer.writerow(list(row))
    return buf.getvalue()


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Write :func:`rows_to_csv` output to ``path``."""
    text = rows_to_csv(headers, rows)
    with open(path, "w") as fh:
        fh.write(text)


def figure_rows(result) -> "tuple[List[str], List[List[object]]]":
    """Flatten any fig4/fig5/fig6/fig7 result into (headers, rows).

    Dispatches on the result's row structure rather than its type so
    future figure modules export for free as long as they keep the
    ``rows`` convention.

    Raises:
        TypeError: if the object carries no recognisable rows.
    """
    rows = getattr(result, "rows", None)
    if not rows:
        raise TypeError(f"{type(result).__name__} has no exportable rows")
    sample = rows[0]
    if hasattr(sample, "collect_all_slots"):  # Fig. 4
        return (
            ["n", "m", "collect_all_slots", "collect_all_busy_slots",
             "trp_slots", "speedup", "busy_speedup"],
            [
                [r.population, r.tolerance, r.collect_all_slots,
                 r.collect_all_busy_slots, r.trp_slots, r.speedup,
                 r.busy_speedup]
                for r in rows
            ],
        )
    if hasattr(sample, "utrp_slots"):  # Fig. 6
        return (
            ["n", "m", "trp_slots", "utrp_slots", "overhead_slots",
             "overhead_fraction"],
            [
                [r.population, r.tolerance, r.trp_slots, r.utrp_slots,
                 r.overhead_slots, r.overhead_fraction]
                for r in rows
            ],
        )
    if hasattr(sample, "detection"):  # Figs. 5 and 7
        return (
            ["n", "m", "frame_size", "detection_rate", "ci_low", "ci_high",
             "trials"],
            [
                [r.population, r.tolerance, r.frame_size, r.detection.rate,
                 r.detection.ci_low, r.detection.ci_high, r.detection.trials]
                for r in rows
            ],
        )
    raise TypeError(f"unrecognised row type {type(sample).__name__}")
