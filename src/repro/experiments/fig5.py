"""Fig. 5 — TRP detection accuracy at the worst-case theft.

For every ``(n, m)`` cell the server sizes the frame with Eq. 2, an
adversary steals exactly ``m + 1`` random tags, and we measure the
fraction of trials in which the returned bitstring differs from the
prediction. The paper's claim: every bar clears the ``alpha = 0.95``
line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.analysis import optimal_trp_frame_size
from ..simulation.batched import trp_detection_trials_batched
from ..simulation.metrics import ProportionSummary, summarize_detections
from ..simulation.rng import derive_seed
from .grid import ExperimentGrid
from .report import render_series, render_table

__all__ = ["Fig5Row", "Fig5Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig5Row:
    """One bar of Fig. 5.

    Attributes:
        population: ``n``.
        tolerance: ``m`` (the theft is ``m + 1``).
        frame_size: Eq. 2 frame the run used.
        detection: measured detection-rate summary.
    """

    population: int
    tolerance: int
    frame_size: int
    detection: ProportionSummary

    def clears(self, alpha: float) -> bool:
        return self.detection.exceeds(alpha)


@dataclass
class Fig5Result:
    grid: ExperimentGrid
    rows: List[Fig5Row]

    def panel(self, tolerance: int) -> List[Fig5Row]:
        return [r for r in self.rows if r.tolerance == tolerance]

    def cells_clearing_alpha(self) -> int:
        return sum(1 for r in self.rows if r.clears(self.grid.alpha))


def _cell(grid: ExperimentGrid, n: int, m: int) -> Fig5Row:
    """One (n, m) cell, seeded independently so cells parallelise."""
    f = optimal_trp_frame_size(n, m, grid.alpha)
    detections = trp_detection_trials_batched(
        n,
        m + 1,
        f,
        grid.trials,
        derive_seed(grid.master_seed, 5, n, m),
        batch_size=grid.batch_size,
    )
    return Fig5Row(
        population=n,
        tolerance=m,
        frame_size=f,
        detection=summarize_detections(detections),
    )


def run(grid: ExperimentGrid, jobs: int = 1) -> Fig5Result:
    """Regenerate Fig. 5's data over ``grid``, ``jobs`` cells at a time."""
    from ..fleet.executor import ParallelExecutor

    rows = ParallelExecutor(jobs).map(
        lambda cell: _cell(grid, *cell), grid.cells
    )
    return Fig5Result(grid=grid, rows=rows)


def format_result(result: Fig5Result) -> str:
    """Panels as bar strips around the alpha line, plus a summary table."""
    alpha = result.grid.alpha
    blocks = []
    for m in result.grid.tolerances:
        panel = result.panel(m)
        blocks.append(
            render_series(
                [r.population for r in panel],
                [r.detection.rate for r in panel],
                lo=0.90,
                hi=1.00,
                title=(
                    f"Fig. 5 panel: adversary steals m+1={m + 1} tags "
                    f"(alpha={alpha}, {result.grid.trials} trials)"
                ),
            )
        )
    summary_rows = [
        (r.population, r.tolerance, r.frame_size, r.detection.rate,
         f"[{r.detection.ci_low:.3f}, {r.detection.ci_high:.3f}]",
         "yes" if r.clears(alpha) else "NO")
        for r in result.rows
    ]
    blocks.append(
        render_table(
            ["n", "m", "f", "detect rate", "95% CI", f"> {alpha}?"],
            summary_rows,
            title="Fig. 5 summary",
        )
    )
    return "\n\n".join(blocks)
