"""Evaluation harness: one module per paper figure, plus ablations."""

from . import ablations, fig4, fig5, fig6, fig7
from .grid import ExperimentGrid, grid_from_env, paper_grid, quick_grid
from .manifest import EXPERIMENTS, Experiment, all_experiment_ids, experiment
from .report import render_bar, render_series, render_table

__all__ = [
    "ablations",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ExperimentGrid",
    "grid_from_env",
    "paper_grid",
    "quick_grid",
    "EXPERIMENTS",
    "Experiment",
    "all_experiment_ids",
    "experiment",
    "render_bar",
    "render_series",
    "render_table",
]
