"""Fig. 4 — *collect all* versus TRP, in slots.

The paper's efficiency headline: for every tolerance ``m`` the cost of
both approaches grows linearly in ``n``, TRP needs fewer slots, and the
gap widens with the set size. Collect-all follows Lee et al.'s sizing
(first frame ``f = n``, then ``f`` = tags still outstanding) and stops
once ``n - m`` IDs are in hand; TRP's cost is the Eq. 2 frame size.

Expected reproduction notes (see EXPERIMENTS.md): the analytic TRP
curve matches the paper directly; our collect-all follows the e*n
asymptotic of dynamic framed ALOHA, so the *shape* (linear; TRP wins;
gap grows) is the reproduced claim, not the baseline's absolute slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.analysis import optimal_trp_frame_size
from ..simulation.rng import derive_seed
from .grid import ExperimentGrid
from .report import render_table

__all__ = ["Fig4Row", "Fig4Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig4Row:
    """One grid cell of Fig. 4.

    Attributes:
        population: ``n``.
        tolerance: ``m``.
        collect_all_slots: mean slots used by the baseline inventory
            (full frames — the accounting the paper describes).
        collect_all_busy_slots: mean *occupied* slots only. Dynamic
            framed ALOHA keeps ``~63.2%`` of each optimally-sized frame
            busy, so this column runs at ``~0.632 e n ~ 1.72 n`` —
            which matches the slope the paper's Fig. 4 actually draws
            (see EXPERIMENTS.md); readers that skip empty slots fast
            experience this cost.
        trp_slots: Eq. 2's optimal TRP frame size.
    """

    population: int
    tolerance: int
    collect_all_slots: float
    collect_all_busy_slots: float
    trp_slots: int

    @property
    def speedup(self) -> float:
        """How many times cheaper TRP is for this cell."""
        return self.collect_all_slots / self.trp_slots

    @property
    def busy_speedup(self) -> float:
        """TRP advantage under the occupied-slots-only accounting."""
        return self.collect_all_busy_slots / self.trp_slots


@dataclass
class Fig4Result:
    """All four panels (one per ``m``)."""

    grid: ExperimentGrid
    rows: List[Fig4Row]

    def panel(self, tolerance: int) -> List[Fig4Row]:
        return [r for r in self.rows if r.tolerance == tolerance]


def _cell(grid: ExperimentGrid, n: int, m: int) -> Fig4Row:
    """One (n, m) cell, seeded independently so cells parallelise."""
    from .ablations import _collect_all_stats

    rng = np.random.default_rng(derive_seed(grid.master_seed, 4, n, m))
    totals = []
    busies = []
    for _ in range(grid.cost_trials):
        total, stats = _collect_all_stats(n, m, rng)
        totals.append(total)
        busies.append(stats.singleton_slots + stats.collision_slots)
    return Fig4Row(
        population=n,
        tolerance=m,
        collect_all_slots=float(np.mean(totals)),
        collect_all_busy_slots=float(np.mean(busies)),
        trp_slots=optimal_trp_frame_size(n, m, grid.alpha),
    )


def run(grid: ExperimentGrid, jobs: int = 1) -> Fig4Result:
    """Regenerate Fig. 4's data over ``grid``, ``jobs`` cells at a time."""
    from ..fleet.executor import ParallelExecutor

    rows = ParallelExecutor(jobs).map(
        lambda cell: _cell(grid, *cell), grid.cells
    )
    return Fig4Result(grid=grid, rows=rows)


def format_result(result: Fig4Result) -> str:
    """The paper's four panels as text tables."""
    blocks = []
    for m in result.grid.tolerances:
        rows = [
            (r.population, round(r.collect_all_slots, 1),
             round(r.collect_all_busy_slots, 1), r.trp_slots,
             f"{r.speedup:.2f}x")
            for r in result.panel(m)
        ]
        blocks.append(
            render_table(
                ["n", "collect-all slots", "busy slots only", "TRP slots",
                 "TRP advantage"],
                rows,
                title=f"Fig. 4 panel: tolerate m={m} missing tags "
                f"(alpha={result.grid.alpha})",
            )
        )
    blocks.append(
        "note: 'busy slots only' discounts empty slots "
        "(~0.632 of each frame is busy); its ~1.72n slope matches the "
        "collect-all curve the paper's Fig. 4 draws."
    )
    return "\n\n".join(blocks)
