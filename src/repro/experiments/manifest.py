"""Experiment manifest: one registry of everything reproducible.

DESIGN.md promises an index from experiment id (figure / ablation) to
the code that regenerates it; this module *is* that index, executable.
The CLI, the benches and the completeness tests all enumerate the same
registry, so a figure can't silently lose its bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["Experiment", "EXPERIMENTS", "experiment", "all_experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment.

    Attributes:
        experiment_id: short id ("fig4", "abl-F", ...).
        title: what it shows.
        paper_source: the paper section/figure it reproduces, or
            "extension" for studies beyond the paper.
        bench: path (repo-relative) of the bench that regenerates it.
        runner: callable producing the result rows (grid-based runners
            take an ExperimentGrid; parameterised ones take kwargs).
        grid_based: whether ``runner`` expects an ExperimentGrid.
    """

    experiment_id: str
    title: str
    paper_source: str
    bench: str
    runner: Callable
    grid_based: bool = False


def _registry() -> Dict[str, Experiment]:
    from . import ablations, fig4, fig5, fig6, fig7

    entries = [
        Experiment(
            "fig4", "collect-all vs TRP slot counts", "Fig. 4",
            "benchmarks/test_fig4_collect_all_vs_trp.py", fig4.run, True,
        ),
        Experiment(
            "fig5", "TRP detection accuracy, worst-case theft", "Fig. 5",
            "benchmarks/test_fig5_trp_accuracy.py", fig5.run, True,
        ),
        Experiment(
            "fig6", "TRP vs UTRP frame sizes (c=20)", "Fig. 6",
            "benchmarks/test_fig6_trp_vs_utrp.py", fig6.run, True,
        ),
        Experiment(
            "fig7", "UTRP detection accuracy under collusion", "Fig. 7",
            "benchmarks/test_fig7_utrp_accuracy.py", fig7.run, True,
        ),
        Experiment(
            "abl-A", "wall-clock air time under a Gen2 link model",
            "Sec. 6 remark", "benchmarks/test_ablation_wallclock.py",
            ablations.run_wallclock, True,
        ),
        Experiment(
            "abl-B", "frame size vs required confidence", "extension",
            "benchmarks/test_ablation_alpha_sweep.py",
            ablations.run_alpha_sweep,
        ),
        Experiment(
            "abl-C", "UTRP frame vs collusion budget", "extension",
            "benchmarks/test_ablation_comm_budget.py",
            ablations.run_comm_budget_sweep,
        ),
        Experiment(
            "abl-D", "attack matrix: who catches what", "Secs. 5.1/5.4",
            "benchmarks/test_ablation_attacks.py",
            ablations.run_attack_matrix,
        ),
        Experiment(
            "abl-E", "Theorem 1 occupancy-approximation error",
            "Theorem 1 proof", "benchmarks/test_ablation_gfunc_approx.py",
            ablations.run_gfunc_approximation,
        ),
        Experiment(
            "abl-F", "alarm-policy operating characteristics", "extension",
            "benchmarks/test_ablation_alarm_policies.py",
            ablations.run_alarm_policy_study,
        ),
        Experiment(
            "abl-G", "false alarms over a lossy channel", "Sec. 1 motivation",
            "benchmarks/test_ablation_unreliable_channel.py",
            ablations.run_unreliable_channel_study,
        ),
        Experiment(
            "abl-H", "timer design: budget vs link latency", "Sec. 5.4",
            "benchmarks/test_ablation_timer_design.py",
            ablations.run_timer_design,
        ),
        Experiment(
            "abl-I", "collusion sync strategies", "Sec. 5.4 claim",
            "benchmarks/test_ablation_strategies.py",
            ablations.run_strategy_comparison,
        ),
        Experiment(
            "abl-J", "multi-round plans at equal confidence", "extension",
            "benchmarks/test_ablation_rounds.py",
            ablations.run_rounds_tradeoff,
        ),
        Experiment(
            "abl-K", "naming the missing tags after an alarm", "extension",
            "benchmarks/test_ablation_identification.py",
            ablations.run_identification_study,
        ),
    ]
    return {e.experiment_id: e for e in entries}


#: The canonical registry, id -> Experiment.
EXPERIMENTS: Dict[str, Experiment] = _registry()


def experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id.

    Raises:
        KeyError: on unknown ids (message lists what exists).
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)
